# Convenience targets for the PEI reproduction.

.PHONY: install test lint flow flow-mutants race race-mutants sanitize verify determinism telemetry bench bench-smoke perf-smoke sweep-smoke dashboard experiments quick clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# Static analysis: the in-tree simulator linter, the whole-program
# dataflow analyzer and the concurrency analyzer always run; ruff/mypy
# run only where installed (the offline test container does not ship
# them).
lint:
	PYTHONPATH=src python -m repro.analysis lint src/repro
	PYTHONPATH=src python -m repro.analysis flow src/repro
	PYTHONPATH=src python -m repro.analysis race src/repro
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests; \
	else echo "ruff not installed; skipping"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy src/repro; \
	else echo "mypy not installed; skipping"; fi

# Whole-program dataflow analysis alone: cache-key (fingerprint) soundness,
# unit/dimension taint, hot-path purity (see docs/analysis.md).  Reads
# ./flow-baseline.json when present; --update-baseline regenerates it.
flow:
	PYTHONPATH=src python -m repro.analysis flow src/repro

# Seeded-defect self-validation: each flow pass must catch every mutant
# planted for its codes, or the target fails (~30 s).
flow-mutants:
	PYTHONPATH=src python -m repro.analysis flow-mutants src/repro

# Static concurrency & process-safety analysis alone: payload
# picklability, durable-write discipline, fork/worker hygiene, ordering
# soundness on the parallel frontier (see docs/analysis.md).  Reads
# ./race-baseline.json when present; --update-baseline regenerates it.
race:
	PYTHONPATH=src python -m repro.analysis race src/repro

# Seeded concurrency-defect self-validation: each race pass must catch
# every mutant planted for its codes, or the target fails (~30 s).
race-mutants:
	PYTHONPATH=src python -m repro.analysis race-mutants src/repro

# Run the PEI protocol sanitizer over a fig10-sized sweep (~1 min).
sanitize:
	PYTHONPATH=src python -m repro.analysis sanitize

# Bounded protocol verification: exhaustive interleaving exploration,
# differential check against the golden model, full-machine coherence pass,
# and the seeded-mutant self-validation (~45 s; see docs/verification.md).
verify:
	PYTHONPATH=src python -m repro.verify all

# Replay fidelity: run small experiments twice, require bit-identical
# stats and event streams.
determinism:
	PYTHONPATH=src python -m repro.analysis determinism

# Telemetry smoke: run a small benchmark with full observability and
# schema-check the bundles it wrote (see docs/observability.md).
telemetry:
	REPRO_BENCH_OPS=1500 PYTHONPATH=src \
		python -m repro.bench run fig10 --telemetry telemetry-out
	PYTHONPATH=src python -m repro.analysis telemetry telemetry-out

# Regenerate every table and figure (writes benchmarks/results/).
bench:
	pytest benchmarks/ --benchmark-only

# Runner smoke check: cold run simulates and fills the disk cache, warm run
# must be served entirely from it (asserted via the BENCH_*.json trajectory
# records in bench-history/; see docs/benchmarks.md).  Both runs record the
# run ledger, which is then schema-checked (see docs/observability.md).
bench-smoke:
	rm -rf .bench_cache bench-history
	PYTHONPATH=src python -m repro.bench run smoke --jobs 2 --events
	PYTHONPATH=src python -m repro.bench run smoke --jobs 2 --events
	PYTHONPATH=src python -m repro.bench history --assert-warm
	PYTHONPATH=src python -m repro.analysis telemetry bench-history/EVENTS_*.jsonl

# Render the sweep dashboard (stat tiles, timing bars, cache breakdown,
# latency histogram, throughput sparkline) from bench-history/.
dashboard:
	PYTHONPATH=src python -m repro.obs dashboard bench-history

# Engine-throughput gate: two runs each embed an engine microbenchmark
# reading in their trajectory record; --compare fails on a >20% drop
# against the best earlier record (see docs/performance.md).
perf-smoke:
	rm -rf bench-history
	PYTHONPATH=src python -m repro.bench run smoke --jobs 2
	PYTHONPATH=src python -m repro.bench run smoke --jobs 2
	PYTHONPATH=src python -m repro.bench history --compare

# Adaptive-sweep smoke check: a cold sweep simulates and checkpoints, a
# --fresh warm sweep must replay entirely from the disk cache (zero
# simulations, certified by --assert-warm), and --compare prints the
# sweep-throughput block next to the engine gate (see "Sweeping at
# scale" in docs/benchmarks.md).
sweep-smoke:
	rm -rf .bench_cache bench-history
	PYTHONPATH=src python -m repro.bench sweep fig8-crossover \
		--points 256 --jobs 2
	PYTHONPATH=src python -m repro.bench sweep fig8-crossover \
		--points 256 --jobs 2 --fresh
	PYTHONPATH=src python -m repro.bench history --assert-warm --compare
	PYTHONPATH=src python -m repro.obs dashboard bench-history

# Same, via the CLI (no pytest-benchmark timing around it).
experiments:
	python -m repro.bench run all --out benchmarks/results

# Fast sanity pass: unit tests plus one cheap experiment.
quick:
	pytest tests/ -q
	python -m repro.bench run fig10

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
