# Convenience targets for the PEI reproduction.

.PHONY: install test bench experiments quick clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# Regenerate every table and figure (writes benchmarks/results/).
bench:
	pytest benchmarks/ --benchmark-only

# Same, via the CLI (no pytest-benchmark timing around it).
experiments:
	python -m repro.bench run all --out benchmarks/results

# Fast sanity pass: unit tests plus one cheap experiment.
quick:
	pytest tests/ -q
	python -m repro.bench run fig10

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
