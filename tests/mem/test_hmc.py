"""Tests for the HMC memory system and vaults."""

import pytest

from repro.mem.address_map import AddressMap
from repro.mem.dram import DramTimings
from repro.mem.hmc import HmcSystem
from repro.mem.link import OffChipChannel
from repro.mem.vault import Vault
from repro.sim.stats import Stats
from repro.system.config import SystemConfig


def make_hmc():
    stats = Stats()
    amap = AddressMap(n_hmcs=2, vaults_per_hmc=4, banks_per_vault=4)
    channel = OffChipChannel(10.0, 10.0)
    hmc = HmcSystem(amap, DramTimings.from_config(SystemConfig()), channel,
                    tsv_bytes_per_cycle=4.0, stats=stats)
    return hmc, stats, channel


class TestVault:
    def test_read_includes_tsv_transfer(self):
        vault = Vault(0, 2, DramTimings.from_config(SystemConfig()), tsv_bytes_per_cycle=4.0,
                      controller_latency=8.0)
        finish = vault.read_block(0.0, bank=0, row=0)
        # controller + (tRCD + tCL + burst) + 64 B over TSVs at 4 B/cycle
        assert finish == pytest.approx(8 + 126 + 16)

    def test_write_moves_data_then_accesses_bank(self):
        vault = Vault(0, 2, DramTimings.from_config(SystemConfig()), tsv_bytes_per_cycle=4.0,
                      controller_latency=8.0)
        finish = vault.write_block(0.0, bank=0, row=0)
        assert finish == pytest.approx(8 + 16 + 126)

    def test_dram_access_counter(self):
        vault = Vault(0, 2, DramTimings.from_config(SystemConfig()), 4.0)
        vault.read_block(0.0, 0, 0)
        vault.write_block(500.0, 1, 0)
        assert vault.dram_accesses == 2


class TestHmcSystem:
    def test_vault_count(self):
        hmc, _, _ = make_hmc()
        assert len(hmc.vaults) == 8

    def test_read_block_traffic(self):
        hmc, stats, channel = make_hmc()
        hmc.read_block(0.0, 0x1000)
        assert channel.request_bytes == 16
        assert channel.response_bytes == 80
        assert stats["dram.reads"] == 1

    def test_write_block_traffic(self):
        hmc, stats, channel = make_hmc()
        hmc.write_block(0.0, 0x1000)
        assert channel.request_bytes == 80
        assert channel.response_bytes == 0
        assert stats["dram.writes"] == 1

    def test_pim_request_payload(self):
        hmc, stats, channel = make_hmc()
        hmc.pim_send_request(0.0, input_bytes=8)
        assert channel.request_bytes == 32  # 16 B header + 8 B padded to 16

    def test_pim_block_ops_stay_on_tsvs(self):
        hmc, stats, channel = make_hmc()
        hmc.pim_read_block(0.0, 0x40)
        hmc.pim_write_block(100.0, 0x40)
        assert channel.total_bytes == 0  # vault-local, no off-chip transfer
        assert stats["dram.pim_reads"] == 1
        assert stats["dram.pim_writes"] == 1

    def test_vault_for_is_consistent(self):
        hmc, _, _ = make_hmc()
        vault = hmc.vault_for(0x40)
        assert vault.index == hmc.address_map.vault_of(0x40)

    def test_dram_accesses_aggregate(self):
        hmc, _, _ = make_hmc()
        hmc.read_block(0.0, 0)
        hmc.read_block(0.0, 64)
        assert hmc.dram_accesses == 2

    def test_reset(self):
        hmc, _, channel = make_hmc()
        hmc.read_block(0.0, 0)
        hmc.reset()
        assert channel.total_bytes == 0
        assert hmc.dram_accesses == 0
