"""Tests for opt-in per-cube daisy-chain modeling."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.mem.chain import DaisyChainChannel
from repro.system.builder import build_machine
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.analytics.histogram import Histogram


def make_channel(**kwargs):
    defaults = dict(n_hops=4, request_bytes_per_cycle=10.0,
                    response_bytes_per_cycle=10.0, serdes_latency=0.0,
                    hop_latency=5.0)
    defaults.update(kwargs)
    return DaisyChainChannel(**defaults)


class TestDaisyChainChannel:
    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError):
            make_channel(n_hops=0)

    def test_nearest_cube_matches_base_model(self):
        chain = make_channel()
        flat = make_channel()
        assert chain.send_request_to(0.0, 0, hop=0) == \
            flat.send_request(0.0, 0)

    def test_farther_cubes_pay_more_latency(self):
        chain = make_channel()
        times = [make_channel().send_request_to(0.0, 0, hop=h)
                 for h in range(4)]
        assert times == sorted(times)
        assert times[3] > times[0]

    def test_hop_cost_is_per_hop(self):
        t0 = make_channel().send_request_to(0.0, 0, hop=0)
        t2 = make_channel().send_request_to(0.0, 0, hop=2)
        # Two extra hops: 2 x (transfer 1.6 + hop latency 5).
        assert t2 - t0 == pytest.approx(2 * (1.6 + 5.0))

    def test_responses_mirror_requests(self):
        chain = make_channel()
        near = chain.send_response_from(0.0, 64, hop=0)
        far = make_channel().send_response_from(0.0, 64, hop=3)
        assert far > near

    def test_host_hop_still_aggregates_all_traffic(self):
        chain = make_channel()
        chain.send_request_to(0.0, 0, hop=0)
        chain.send_request_to(0.0, 0, hop=3)
        # Both packets crossed the host-side hop: aggregate counters intact.
        assert chain.request_bytes == 32

    def test_reset_clears_hops(self):
        chain = make_channel()
        chain.send_request_to(0.0, 0, hop=3)
        chain.reset()
        assert chain.request_bytes == 0
        assert chain.send_request_to(0.0, 0, hop=3) == pytest.approx(
            1.6 + 3 * (1.6 + 5.0))


class TestSystemIntegration:
    def test_builder_selects_chain_channel(self):
        machine = build_machine(tiny_config(model_chain_hops=True),
                                DispatchPolicy.LOCALITY_AWARE)
        assert isinstance(machine.hmc.channel, DaisyChainChannel)
        flat = build_machine(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        assert not isinstance(flat.hmc.channel, DaisyChainChannel)

    def test_end_to_end_run_with_chain_hops(self):
        system = System(tiny_config(model_chain_hops=True),
                        DispatchPolicy.PIM_ONLY)
        workload = Histogram(n_values=5000, seed=4)
        result = system.run(workload)
        workload.verify()
        assert result.cycles > 0

    def test_chain_hops_cost_time_not_results(self):
        def run(flag):
            system = System(tiny_config(model_chain_hops=flag),
                            DispatchPolicy.PIM_ONLY)
            workload = Histogram(n_values=5000, seed=4)
            result = system.run(workload)
            workload.verify()
            return result

        flat = run(False)
        chained = run(True)
        assert chained.cycles >= flat.cycles  # extra hop latency
        assert chained.stats["pei.issued"] == flat.stats["pei.issued"]
