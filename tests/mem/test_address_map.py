"""Tests for physical address interleaving."""

from hypothesis import given
from hypothesis import strategies as st

from repro.mem.address_map import AddressMap


def default_map():
    return AddressMap(block_size=64, n_hmcs=8, vaults_per_hmc=16,
                      banks_per_vault=16, row_bytes=2048)


class TestAddressMap:
    def test_geometry(self):
        amap = default_map()
        assert amap.total_vaults == 128
        assert amap.total_banks == 2048

    def test_consecutive_blocks_hit_different_vaults(self):
        amap = default_map()
        vaults = [amap.locate(block * 64).vault for block in range(128)]
        assert len(set(vaults)) == 128  # perfect block interleave

    def test_same_block_same_location(self):
        amap = default_map()
        assert amap.locate(1024) == amap.locate(1024 + 63)  # same 64 B block

    def test_hmc_derived_from_vault(self):
        amap = default_map()
        loc = amap.locate(64 * 17)
        assert loc.hmc == loc.vault // 16

    @given(st.integers(min_value=0, max_value=2**40))
    def test_fields_in_range(self, addr):
        amap = default_map()
        loc = amap.locate(addr)
        assert 0 <= loc.hmc < 8
        assert 0 <= loc.vault < 128
        assert 0 <= loc.bank < 16
        assert loc.row >= 0

    @given(st.integers(min_value=0, max_value=2**34))
    def test_vault_of_matches_locate(self, addr):
        amap = default_map()
        assert amap.vault_of(addr) == amap.locate(addr).vault

    def test_row_changes_after_row_bytes_of_blocks(self):
        amap = default_map()
        # Within one (vault, bank), blocks are row_bytes/block_size apart in
        # consecutive rows.
        stride = 64 * amap.total_vaults * amap.banks_per_vault
        blocks_per_row = amap.row_bytes // 64
        first = amap.locate(0)
        same_row = amap.locate(stride * (blocks_per_row - 1))
        next_row = amap.locate(stride * blocks_per_row)
        assert first.row == same_row.row
        assert next_row.row == first.row + 1

    def test_block_number(self):
        amap = default_map()
        assert amap.block_number(0) == 0
        assert amap.block_number(64) == 1
        assert amap.block_number(127) == 1
