"""Tests for off-chip channel packets and the balanced-dispatch counters."""

import pytest

from repro.mem.link import EmaFlitCounter, OffChipChannel


@pytest.fixture
def channel():
    return OffChipChannel(request_bytes_per_cycle=10.0,
                          response_bytes_per_cycle=10.0,
                          serdes_latency=16.0)


class TestPacketCostModel:
    def test_read_request_is_header_only(self, channel):
        # Footnote 7: a memory read consumes 16 bytes of request bandwidth.
        assert channel.packet_bytes(0) == 16

    def test_read_response_is_80_bytes(self, channel):
        # ... and 80 bytes of response bandwidth (header + 64 B data).
        assert channel.packet_bytes(64) == 80

    def test_payloads_padded_to_flits(self, channel):
        assert channel.packet_bytes(1) == 32
        assert channel.packet_bytes(8) == 32
        assert channel.packet_bytes(16) == 32
        assert channel.packet_bytes(17) == 48

    def test_request_traffic_accounting(self, channel):
        channel.send_request(0.0, 64)
        assert channel.request_bytes == 80
        assert channel.response_bytes == 0

    def test_response_includes_serdes_latency(self, channel):
        finish = channel.send_response(0.0, 64)
        assert finish == pytest.approx(8.0 + 16.0)  # 80 B / 10 Bpc + serdes

    def test_directions_independent(self, channel):
        channel.send_request(0.0, 64)
        # The response direction is unaffected by request traffic.
        assert channel.send_response(0.0, 0) == pytest.approx(1.6 + 16.0)

    def test_total_bytes(self, channel):
        channel.send_request(0.0, 0)
        channel.send_response(0.0, 64)
        assert channel.total_bytes == 96


class TestEmaFlitCounter:
    def test_accumulates_within_period(self):
        ema = EmaFlitCounter(1000.0)
        ema.add(0.0, 10)
        ema.add(500.0, 10)
        assert ema.read(600.0) == pytest.approx(20.0)

    def test_halves_every_period(self):
        ema = EmaFlitCounter(1000.0)
        ema.add(0.0, 16)
        assert ema.read(1000.0) == pytest.approx(8.0)
        assert ema.read(3000.0) == pytest.approx(2.0)

    def test_deep_decay_does_not_underflow(self):
        ema = EmaFlitCounter(10.0)
        ema.add(0.0, 1.0)
        assert ema.read(1e9) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            EmaFlitCounter(0.0)

    def test_channel_counters_updated(self):
        channel = OffChipChannel(10.0, 10.0, ema_period=1e9)
        channel.send_request(0.0, 0)  # 16 B = 1 flit
        channel.send_response(0.0, 64)  # 80 B = 5 flits
        assert channel.req_flits.read(1.0) == pytest.approx(1.0)
        assert channel.res_flits.read(1.0) == pytest.approx(5.0)


class TestReset:
    def test_reset_clears_everything(self, channel):
        channel.send_request(0.0, 64)
        channel.send_response(0.0, 64)
        channel.reset()
        assert channel.total_bytes == 0
        assert channel.req_flits.read(0.0) == 0.0
