"""Tests for DRAM bank timing."""

import pytest

from repro.mem.dram import DramBank, DramTimings
from repro.system.config import SystemConfig


@pytest.fixture
def timings():
    # 13.75 ns at 4 GHz = 55 host cycles for each of tCL/tRCD/tRP.
    return DramTimings.from_config(SystemConfig())


class TestDramTimings:
    def test_table2_values(self, timings):
        assert timings.t_cl == pytest.approx(55.0)
        assert timings.t_rcd == pytest.approx(55.0)
        assert timings.t_rp == pytest.approx(55.0)
        assert timings.burst == pytest.approx(16.0)


class TestDramBank:
    def test_closed_bank_pays_activate(self, timings):
        bank = DramBank("b", timings)
        finish = bank.access(0.0, row=5)
        # tRCD + tCL + burst
        assert finish == pytest.approx(55 + 55 + 16)
        assert bank.row_misses == 1

    def test_row_hit_is_cheap(self, timings):
        bank = DramBank("b", timings)
        first = bank.access(0.0, row=5)
        second = bank.access(first, row=5)
        assert second - first == pytest.approx(55 + 16)  # tCL + burst
        assert bank.row_hits == 1

    def test_row_conflict_pays_precharge(self, timings):
        bank = DramBank("b", timings)
        first = bank.access(0.0, row=5)
        second = bank.access(first, row=9)
        assert second - first == pytest.approx(55 + 55 + 55 + 16)
        assert bank.row_conflicts == 1

    def test_accesses_counter(self, timings):
        bank = DramBank("b", timings)
        bank.access(0.0, 1)
        bank.access(500.0, 1)
        bank.access(1000.0, 2)
        assert bank.accesses == 3

    def test_serialization_through_resource(self, timings):
        bank = DramBank("b", timings)
        a = bank.access(0.0, row=1)
        b = bank.access(0.0, row=1)  # same-instant arrival queues
        assert b > a

    def test_reset(self, timings):
        bank = DramBank("b", timings)
        bank.access(0.0, 1)
        bank.reset()
        assert bank.open_row is None
        assert bank.accesses == 0
