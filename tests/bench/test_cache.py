"""Tests for the content-addressed on-disk result cache."""

import json

import pytest

from repro.bench import runner
from repro.bench.cache import BenchCache, code_version_salt
from repro.bench.frontier import RunRequest
from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config

TINY = tiny_config()


def tiny_request(policy=DispatchPolicy.LOCALITY_AWARE, **over):
    return RunRequest.single("HG", "small", policy, config=TINY,
                             max_ops_per_thread=300, seed=7,
                             n_values=2000, **over)


@pytest.fixture(autouse=True)
def clean_runner(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SALT", "testsalt")
    runner.clear_cache()
    runner.reset_accounting()
    yield
    runner.disable_disk_cache()
    runner.clear_cache()
    runner.reset_accounting()


class TestSalt:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SALT", "abc")
        assert code_version_salt() == "abc"

    def test_computed_salt_is_stable(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SALT", raising=False)
        assert code_version_salt() == code_version_salt()
        assert len(code_version_salt()) == 16


class TestBenchCache:
    def test_roundtrip(self, tmp_path):
        from repro.bench.frontier import simulate
        cache = BenchCache(tmp_path)
        request = tiny_request()
        assert cache.get(request) is None
        result = simulate(request)
        path = cache.put(request, result)
        assert path.is_file()
        cached = cache.get(request)
        assert cached is not None
        assert cached.to_dict() == result.to_dict()
        assert cache.counters() == {"hits": 1, "misses": 1, "stores": 1}
        assert len(cache) == 1

    def test_layout_shards_by_fingerprint(self, tmp_path):
        cache = BenchCache(tmp_path, salt="s")
        key = cache.key(tiny_request())
        path = cache.path_for(key)
        assert path == tmp_path / "v-s" / key[:2] / f"{key}.json"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        from repro.bench.frontier import simulate
        cache = BenchCache(tmp_path)
        request = tiny_request()
        path = cache.put(request, simulate(request))
        path.write_text("{ torn write")
        assert cache.get(request) is None

    def test_salt_partitions_generations(self, tmp_path):
        from repro.bench.frontier import simulate
        request = tiny_request()
        old = BenchCache(tmp_path, salt="old")
        old.put(request, simulate(request))
        assert BenchCache(tmp_path, salt="new").get(request) is None


class TestRunnerDiskCache:
    def test_second_pass_simulates_nothing(self, tmp_path):
        """The acceptance criterion: a repeat invocation is all disk hits."""
        requests = [tiny_request(policy=DispatchPolicy.HOST_ONLY),
                    tiny_request(policy=DispatchPolicy.LOCALITY_AWARE)]
        runner.enable_disk_cache(tmp_path)
        assert runner.prefetch(requests) == 2
        assert runner.accounting().simulations == 2

        # New process simulation: fresh memo, fresh accounting, same disk.
        runner.clear_cache()
        runner.reset_accounting()
        runner.enable_disk_cache(tmp_path)
        assert runner.prefetch(requests) == 0
        for request in requests:
            assert runner.run_request(request).cycles > 0
        acct = runner.accounting()
        assert acct.simulations == 0
        assert acct.disk_hits == 2

    def test_disk_hit_matches_simulated_result(self, tmp_path):
        request = tiny_request()
        runner.enable_disk_cache(tmp_path)
        fresh = runner.run_request(request)
        runner.clear_cache()
        cached = runner.run_request(request)
        assert cached is not fresh
        assert cached.to_dict() == fresh.to_dict()

    def test_ops_env_change_is_a_miss(self, tmp_path, monkeypatch):
        """REPRO_BENCH_OPS is part of the resolved request fingerprint."""
        cache = runner.enable_disk_cache(tmp_path)
        request = RunRequest.single("HG", "small", DispatchPolicy.HOST_ONLY,
                                    config=TINY, n_values=2000)
        monkeypatch.setenv("REPRO_BENCH_OPS", "5")
        runner.run_request(request)
        runner.clear_cache()
        monkeypatch.setenv("REPRO_BENCH_OPS", "25")
        runner.run_request(request)
        assert runner.accounting().simulations == 2
        assert cache.stores == 2

    def test_config_field_change_is_a_miss(self, tmp_path):
        from dataclasses import replace
        cache = BenchCache(tmp_path)
        a = tiny_request()
        b = tiny_request().resolve(runner.current_settings())
        b = RunRequest(workloads=b.workloads, policy=b.policy,
                       config=replace(TINY, pcu_issue_width=TINY.pcu_issue_width + 1),
                       max_ops_per_thread=b.max_ops_per_thread)
        assert cache.key(a) != cache.key(b)

    def test_code_salt_partitions_runner_cache(self, tmp_path, monkeypatch):
        request = tiny_request()
        runner.enable_disk_cache(tmp_path)
        runner.run_request(request)
        runner.clear_cache()
        monkeypatch.setenv("REPRO_BENCH_SALT", "othersalt")
        runner.enable_disk_cache(tmp_path)
        runner.run_request(request)
        assert runner.accounting().simulations == 2

    def test_entries_record_request_metadata(self, tmp_path):
        runner.enable_disk_cache(tmp_path)
        runner.run_request(tiny_request())
        [entry] = (tmp_path / "v-testsalt").rglob("*.json")
        payload = json.loads(entry.read_text())
        assert payload["salt"] == "testsalt"
        assert payload["request"]["policy"] == "locality-aware"
        assert payload["result"]["workload"] == "HG"
