"""Trace store: capture-once keys, disk round-trips, runner integration.

The contract under test is the tentpole invariant of the bench pipeline:
one functional workload run serves every (policy, config) point of a sweep,
and replaying the captured trace is *bit-identical* to running the
generators — ``RunResult.to_dict()`` compared through ``json.dumps``.
"""

import json

import pytest

from repro.bench import frontier, runner
from repro.bench.frontier import RunRequest, run_batch
from repro.bench.traces import TraceStore, trace_request_key
from repro.core.dispatch import DispatchPolicy
from repro.core.isa import FP_ADD
from repro.cpu.trace import Pei
from repro.system.config import tiny_config
from repro.workloads.base import Workload

POLICIES = (DispatchPolicy.HOST_ONLY, DispatchPolicy.PIM_ONLY,
            DispatchPolicy.LOCALITY_AWARE, DispatchPolicy.IDEAL_HOST)


def request_for(policy, name="HG", size="small", ops=400, seed=7,
                config=None):
    request = RunRequest.single(
        name, size, policy, config=config if config is not None else tiny_config(),
        max_ops_per_thread=ops, seed=seed)
    return request.resolve(runner.current_settings())


def canon(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture
def isolated_runner():
    """Fresh runner state; restores the module globals afterwards."""
    runner.clear_cache()
    runner.disable_disk_cache()
    store = runner.disable_trace_cache()
    yield store
    runner.clear_cache()
    runner.disable_disk_cache()
    runner.disable_trace_cache()


class TestTraceKey:
    def test_policy_and_timing_config_excluded(self):
        base = request_for(DispatchPolicy.HOST_ONLY)
        other_policy = request_for(DispatchPolicy.PIM_ONLY)
        bigger_l3 = request_for(
            DispatchPolicy.HOST_ONLY,
            config=tiny_config().with_overrides(l3_size=1 << 21))
        store = TraceStore()
        assert trace_request_key(base) == trace_request_key(other_policy)
        assert store.key(base) == store.key(other_policy)
        # Cache geometry only affects timing; the stream is unchanged.
        assert store.key(base) == store.key(bigger_l3)

    def test_stream_shaping_inputs_included(self):
        store = TraceStore()
        base = request_for(DispatchPolicy.HOST_ONLY)
        assert store.key(base) != store.key(
            request_for(DispatchPolicy.HOST_ONLY, ops=300))
        assert store.key(base) != store.key(
            request_for(DispatchPolicy.HOST_ONLY, seed=8))
        assert store.key(base) != store.key(
            request_for(DispatchPolicy.HOST_ONLY,
                        config=tiny_config().with_overrides(n_cores=2)))

    def test_unresolved_request_rejected(self):
        request = RunRequest.single("HG", "small", DispatchPolicy.HOST_ONLY)
        with pytest.raises(ValueError):
            trace_request_key(request)


class TestCaptureOnce:
    def test_one_capture_serves_every_policy(self):
        store = TraceStore()
        requests = [request_for(p) for p in POLICIES]
        traces = [store.get_or_capture(r) for r in requests]
        assert store.captures == 1
        assert store.memo_hits == len(POLICIES) - 1
        assert all(t is traces[0] for t in traces)

    def test_replay_bit_identical_to_generators(self):
        store = TraceStore()
        for policy in POLICIES:
            request = request_for(policy)
            trace = store.get_or_capture(request)
            replayed = frontier.simulate(request, trace=trace)
            generated = frontier.simulate(request)
            assert canon(replayed) == canon(generated), policy

    def test_uncompilable_stream_memoizes_failure(self, monkeypatch):
        class BadChain(Workload):
            name = "bad-chain"

            def prepare(self, space):
                self.region = space.alloc("data", 1 << 16)

            def make_threads(self, n_threads):
                def thread(t):
                    yield Pei(FP_ADD, self.region.base, wait_output=False,
                              chain="not-an-int")
                return [thread(t) for t in range(n_threads)]

        builds = []

        def fake_build(request):
            builds.append(request)
            return BadChain()

        monkeypatch.setattr(frontier, "build_workload", fake_build)
        store = TraceStore()
        request = request_for(DispatchPolicy.HOST_ONLY)
        assert store.get_or_capture(request) is None
        assert store.get_or_capture(request) is None  # memoized, no rebuild
        assert store.failures == 1
        assert len(builds) == 1


class TestDiskRoundTrip:
    def test_second_store_hits_disk_and_replays_identically(self, tmp_path):
        request = request_for(DispatchPolicy.LOCALITY_AWARE)
        cold = TraceStore(tmp_path)
        trace = cold.get_or_capture(request)
        assert cold.captures == 1
        assert cold.path_for(cold.key(request)).exists()

        warm = TraceStore(tmp_path)
        reloaded = warm.get_or_capture(request)
        assert warm.counters() == {"captures": 0, "memo_hits": 0,
                                   "disk_hits": 1, "failures": 0}
        assert reloaded.fingerprint == trace.fingerprint
        assert canon(frontier.simulate(request, trace=reloaded)) == canon(
            frontier.simulate(request, trace=trace))

    def test_salt_isolates_generations(self, tmp_path):
        request = request_for(DispatchPolicy.HOST_ONLY)
        TraceStore(tmp_path, salt="alpha").get_or_capture(request)
        other = TraceStore(tmp_path, salt="beta")
        other.get_or_capture(request)
        assert other.counters()["disk_hits"] == 0
        assert other.counters()["captures"] == 1

    def test_torn_entry_recaptures(self, tmp_path):
        request = request_for(DispatchPolicy.HOST_ONLY)
        store = TraceStore(tmp_path)
        store.get_or_capture(request)
        path = store.path_for(store.key(request))
        path.write_text("{ torn")
        fresh = TraceStore(tmp_path)
        assert fresh.get_or_capture(request) is not None
        assert fresh.counters()["captures"] == 1


class TestRunnerIntegration:
    def test_sweep_captures_once_per_workload(self, isolated_runner):
        """The fig6 shape: N policies over one input pay one capture."""
        store = isolated_runner
        requests = [request_for(p) for p in POLICIES]
        simulated = runner.prefetch(requests)
        assert simulated == len(POLICIES)
        assert store.captures == 1
        assert store.memo_hits == len(POLICIES) - 1
        acct = runner.accounting()
        assert acct.trace_captures >= 1
        assert acct.trace_hits >= len(POLICIES) - 1
        # ... and the memoized results equal fresh generator runs.
        for request in requests:
            assert canon(runner.run_request(request)) == canon(
                frontier.simulate(request))

    def test_run_batch_rejects_misaligned_traces(self):
        requests = [request_for(DispatchPolicy.HOST_ONLY)]
        with pytest.raises(ValueError):
            run_batch(requests, traces=[None, None])

    def test_parallel_batch_ships_traces(self, isolated_runner):
        store = isolated_runner
        requests = [request_for(p, ops=300) for p in POLICIES]
        traces = [store.get_or_capture(r) for r in requests]
        serial = run_batch(requests, jobs=1, traces=traces)
        parallel = run_batch(requests, jobs=2, traces=traces)
        assert [canon(r) for r in serial] == [canon(r) for r in parallel]
