"""Tests for ASCII chart rendering."""

from repro.bench.charts import bar_chart


class TestBarChart:
    def test_contains_values_and_labels(self):
        text = bar_chart(["PR", "HJ"], {"pim-only": [1.5, 0.5]})
        assert "PR" in text and "HJ" in text
        assert "1.500" in text and "0.500" in text

    def test_longer_value_longer_bar(self):
        text = bar_chart(["a", "b"], {"s": [2.0, 1.0]})
        lines = [l for l in text.splitlines() if "█" in l]
        assert len(lines[0]) >= len(lines[1])
        assert lines[0].count("█") > lines[1].count("█")

    def test_baseline_marker(self):
        text = bar_chart(["a"], {"s": [0.5]}, baseline=1.0)
        assert "|" in text
        assert "baseline" in text

    def test_multiple_series_grouped(self):
        text = bar_chart(["a"], {"x": [1.0], "y": [2.0]})
        assert "x" in text and "y" in text

    def test_title(self):
        assert bar_chart(["a"], {"s": [1.0]}, title="T").startswith("T")

    def test_empty_series(self):
        assert bar_chart([], {}, title="T") == "T"

    def test_zero_values(self):
        text = bar_chart(["a"], {"s": [0.0]})
        assert "0.000" in text
