"""Tests for the benchmark CLI (python -m repro.bench)."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig6", "fig12", "sec76"):
            assert name in out

    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11a", "fig11b", "sec76", "fig12",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
