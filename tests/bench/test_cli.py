"""Tests for the benchmark CLI (python -m repro.bench)."""

import json

import pytest

from repro.bench import __main__ as cli
from repro.bench import runner
from repro.bench.__main__ import EXPERIMENTS, NOT_IN_ALL, main
from repro.bench.experiments import ExperimentReport


class TestCli:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig6", "fig12", "sec76", "smoke"):
            assert name in out

    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11a", "fig11b", "sec76", "fig12", "smoke",
        }

    def test_smoke_excluded_from_all(self):
        assert "smoke" in NOT_IN_ALL

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_bad_jobs(self, tmp_path):
        with pytest.raises(ValueError):
            main(["run", "smoke", "--jobs", "0", "--no-cache",
                  "--history-dir", str(tmp_path)])


@pytest.fixture
def fake_experiments(monkeypatch):
    """Replace every experiment with an instant stub (records calls)."""
    calls = []

    def make(name):
        def fake():
            calls.append(name)
            return ExperimentReport(name, f"{name} body", {})
        fake.__doc__ = f"Stub for {name}."
        return fake

    monkeypatch.setattr(cli, "EXPERIMENTS",
                        {name: make(name) for name in EXPERIMENTS})
    yield calls
    runner.set_jobs(1)
    runner.disable_disk_cache()
    runner.disable_run_ledger()
    runner.clear_cache()
    runner.reset_accounting()


class TestRunCommand:
    def test_run_all_skips_smoke(self, fake_experiments, tmp_path, capsys):
        assert main(["run", "all", "--no-cache",
                     "--history-dir", str(tmp_path)]) == 0
        assert "smoke" not in fake_experiments
        assert set(fake_experiments) == set(EXPERIMENTS) - set(NOT_IN_ALL)

    def test_run_writes_trajectory_record(self, fake_experiments, tmp_path):
        history = tmp_path / "hist"
        assert main(["run", "smoke", "--no-cache",
                     "--history-dir", str(history)]) == 0
        [record] = history.glob("BENCH_*.json")
        payload = json.loads(record.read_text())
        assert payload["schema"] == "repro.bench.trajectory/1"
        assert payload["jobs"] == 1
        assert payload["cache"]["enabled"] is False
        # Trace counters ride along even with --no-cache: re-simulation
        # never needs to re-run the functional workloads.
        assert set(payload["cache"]["traces"]) == {
            "captures", "memo_hits", "disk_hits", "failures"}
        assert [e["name"] for e in payload["experiments"]] == ["smoke"]
        assert "sim_ops_per_second" in payload["totals"]
        assert "trace_captures" in payload["totals"]
        assert payload["engine"]["ops_per_second"] > 0

    def test_run_configures_jobs_and_cache(self, fake_experiments, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["run", "smoke", "--jobs", "3",
                     "--cache-dir", str(cache_dir),
                     "--history-dir", str(tmp_path / "hist")]) == 0
        assert runner.get_jobs() == 3
        cache = runner.disk_cache()
        assert cache is not None
        assert cache.root == cache_dir

    def test_run_out_writes_reports(self, fake_experiments, tmp_path):
        out = tmp_path / "out"
        assert main(["run", "smoke", "--no-cache", "--out", str(out),
                     "--history-dir", str(tmp_path / "hist")]) == 0
        assert "smoke body" in (out / "smoke.txt").read_text()

    def test_run_records_observability_block(self, fake_experiments,
                                             tmp_path):
        history = tmp_path / "hist"
        assert main(["run", "smoke", "--no-cache",
                     "--history-dir", str(history)]) == 0
        [record] = history.glob("BENCH_*.json")
        obs = json.loads(record.read_text())["observability"]
        assert obs["schema"] == "repro.obs.frontier/1"
        assert "simulate_latency_s" in obs
        assert "cache" in obs
        # No --events flag: the ledger stayed off and counts are absent.
        assert "events" not in obs

    def test_run_events_writes_default_ledger(self, fake_experiments,
                                              tmp_path):
        history = tmp_path / "hist"
        assert main(["run", "smoke", "--no-cache", "--events",
                     "--no-microbench", "--history-dir", str(history)]) == 0
        [events_path] = history.glob("EVENTS_*.jsonl")
        [record] = history.glob("BENCH_*.json")
        runid = json.loads(record.read_text())["runid"]
        assert events_path.name == f"EVENTS_{runid}.jsonl"
        head = json.loads(events_path.read_text().splitlines()[0])
        assert head["kind"] == "ledger_start"
        # Stub experiments plan nothing, so counts are empty — but the
        # block must be present whenever the ledger was on.
        assert "events" in json.loads(record.read_text())["observability"]

    def test_run_events_explicit_path(self, fake_experiments, tmp_path):
        target = tmp_path / "ledger.events.jsonl"
        assert main(["run", "smoke", "--no-cache",
                     "--events", str(target), "--no-microbench",
                     "--history-dir", str(tmp_path / "hist")]) == 0
        assert target.exists()

    def test_run_progress_renders_line(self, fake_experiments, tmp_path,
                                       capsys):
        assert main(["run", "smoke", "--no-cache", "--progress",
                     "--no-microbench",
                     "--history-dir", str(tmp_path / "hist")]) == 0
        # The stub experiments plan no requests, so the line may be empty;
        # the flag must at least leave the runner with a live ledger.
        assert runner.run_ledger().enabled


class TestProgressRenderer:
    def make(self):
        import io

        stream = io.StringIO()
        return cli.ProgressRenderer(jobs=2, stream=stream), stream

    def tick(self, renderer, kind, **fields):
        event = {"kind": kind}
        event.update(fields)
        renderer.tick(event)

    def test_counts_and_line(self):
        renderer, stream = self.make()
        self.tick(renderer, "request_planned")
        self.tick(renderer, "request_planned")
        self.tick(renderer, "memo_hit")
        self.tick(renderer, "simulate_start")
        self.tick(renderer, "simulate_end", dur_s=0.4)
        line = stream.getvalue().split("\r")[-1]
        assert "2/2 done" in line
        assert "1 cached" in line
        assert "1 simulated" in line

    def test_eta_uses_mean_duration_over_jobs(self):
        renderer, stream = self.make()
        for _ in range(4):
            self.tick(renderer, "request_planned")
        self.tick(renderer, "simulate_start")
        self.tick(renderer, "simulate_end", dur_s=8.0)
        line = stream.getvalue().split("\r")[-1]
        # 3 remaining * 8 s mean / 2 jobs = 12 s
        assert "eta 12s" in line

    def test_ignores_unrelated_kinds(self):
        renderer, stream = self.make()
        self.tick(renderer, "ledger_start")
        self.tick(renderer, "result_persisted")
        assert stream.getvalue() == ""

    def test_close_terminates_line_once(self):
        renderer, stream = self.make()
        self.tick(renderer, "request_planned")
        renderer.close()
        renderer.close()
        assert stream.getvalue().endswith("\n")
        assert stream.getvalue().count("\n") == 1


class TestHistoryCommand:
    def test_empty_history_fails(self, tmp_path, capsys):
        assert main(["history", "--history-dir", str(tmp_path)]) == 1

    def test_compare_empty_history_exits_zero(self, tmp_path, capsys):
        """First run of a fresh checkout: nothing to compare is not an
        error, or CI would fail before the baseline ever exists."""
        assert main(["history", "--history-dir", str(tmp_path),
                     "--compare"]) == 0
        out = capsys.readouterr().out
        assert "no baseline yet" in out

    def test_compare_empty_with_assert_warm_still_fails(self, tmp_path):
        # --assert-warm is an explicit check: absence of records must
        # fail loudly rather than vacuously pass.
        assert main(["history", "--history-dir", str(tmp_path),
                     "--compare", "--assert-warm"]) == 1

    def test_assert_warm(self, fake_experiments, tmp_path):
        history = tmp_path / "hist"
        args = ["run", "smoke", "--no-cache", "--history-dir", str(history)]
        assert main(args) == 0
        # The stub experiments never simulate, so the record is "warm".
        assert main(["history", "--history-dir", str(history),
                     "--assert-warm"]) == 0

    def test_assert_warm_fails_on_simulations(self, fake_experiments,
                                              tmp_path, monkeypatch):
        history = tmp_path / "hist"
        calls = fake_experiments

        def simulating():
            runner.accounting().simulations += 3
            return ExperimentReport("smoke", "body", {})

        monkeypatch.setitem(cli.EXPERIMENTS, "smoke", simulating)
        assert main(["run", "smoke", "--no-cache",
                     "--history-dir", str(history)]) == 0
        assert main(["history", "--history-dir", str(history),
                     "--assert-warm"]) == 1
        assert calls == []

    def _write_record(self, history, runid, ops_per_second):
        history.mkdir(parents=True, exist_ok=True)
        payload = {"schema": "repro.bench.trajectory/1", "runid": runid,
                   "jobs": 1, "cache": {}, "settings": {}, "experiments": [],
                   "engine": {"ops_per_second": ops_per_second,
                              "ms_per_run": 1.0, "instructions": 1.0,
                              "rounds": 3},
                   "totals": {"simulations": 0}}
        (history / f"BENCH_{runid}.json").write_text(json.dumps(payload))

    def test_compare_passes_within_threshold(self, tmp_path, capsys):
        history = tmp_path / "hist"
        self._write_record(history, "20260101T000000-1", 100_000.0)
        self._write_record(history, "20260102T000000-1", 90_000.0)
        assert main(["history", "--history-dir", str(history),
                     "--compare"]) == 0
        assert "engine-compare OK" in capsys.readouterr().out

    def test_compare_flags_regression(self, tmp_path, capsys):
        history = tmp_path / "hist"
        self._write_record(history, "20260101T000000-1", 100_000.0)
        self._write_record(history, "20260102T000000-1", 70_000.0)
        assert main(["history", "--history-dir", str(history),
                     "--compare"]) == 1
        assert "ENGINE REGRESSION" in capsys.readouterr().out

    def test_compare_uses_best_prior_record(self, tmp_path, capsys):
        # A slow middle record must not lower the bar.
        history = tmp_path / "hist"
        self._write_record(history, "20260101T000000-1", 100_000.0)
        self._write_record(history, "20260102T000000-1", 60_000.0)
        self._write_record(history, "20260103T000000-1", 75_000.0)
        assert main(["history", "--history-dir", str(history),
                     "--compare"]) == 1

    def test_compare_skips_thin_series(self, tmp_path, capsys):
        history = tmp_path / "hist"
        self._write_record(history, "20260101T000000-1", 100_000.0)
        assert main(["history", "--history-dir", str(history),
                     "--compare"]) == 0
        assert "skipped" in capsys.readouterr().out


class TestSweepCommand:
    @pytest.fixture(autouse=True)
    def clean_runner(self):
        runner.clear_cache()
        runner.reset_accounting()
        yield
        runner.set_jobs(1)
        runner.set_schedule("affinity")
        runner.disable_disk_cache()
        runner.clear_cache()
        runner.reset_accounting()

    def test_cold_then_warm_round_trip(self, tmp_path, capsys):
        """The CI smoke contract: a cold sweep simulates, the warm re-run
        replays everything from the content-addressed cache, and
        ``history --assert-warm`` certifies the zero-simulation pass."""
        history = tmp_path / "hist"
        base = ["sweep", "fig8-crossover", "--points", "16",
                "--cache-dir", str(tmp_path / "cache"),
                "--history-dir", str(history), "--no-microbench"]
        assert main(base) == 0
        cold = capsys.readouterr().out
        assert "sweep fig8-crossover:" in cold
        assert "throughput" in cold

        # --fresh discards the checkpoint; the disk cache does the warming.
        assert main(base + ["--fresh"]) == 0
        records = sorted(history.glob("BENCH_*.json"))
        assert len(records) == 2
        warm = json.loads(records[-1].read_text())
        assert warm["sweep"]["simulated"] == 0
        assert warm["sweep"]["evaluated"] > 0
        assert warm["sweep"]["points_per_second"] > 0
        assert main(["history", "--history-dir", str(history),
                     "--assert-warm", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "sweep fig8-crossover:" in out

    def test_sweep_writes_checkpoint_next_to_history(self, tmp_path):
        history = tmp_path / "hist"
        assert main(["sweep", "fig8-crossover", "--points", "16",
                     "--no-cache", "--history-dir", str(history),
                     "--no-microbench"]) == 0
        assert (history / "SWEEP_fig8-crossover.json").exists()

    def test_unknown_sweep_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "nope", "--history-dir", str(tmp_path)])
