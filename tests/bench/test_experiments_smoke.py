"""Smoke tests of the experiment definitions on reduced inputs.

The full experiments run under ``pytest benchmarks/``; these only check
that each definition produces a well-formed report (structure, normalized
fields) on the smallest possible subset, so harness regressions surface in
the fast suite.
"""

import pytest

from repro.bench import runner
from repro.bench.experiments import (
    ExperimentReport,
    SUITE_ORDER,
    fig2_pagerank_potential,
    fig10_balanced_dispatch,
    fig11b_issue_width,
)


@pytest.fixture(scope="module", autouse=True)
def small_runs():
    """Shrink every run made by this module (settings re-read the env)."""
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_BENCH_OPS", "1200")
    mp.setenv("REPRO_BENCH_MIXES", "1")
    mp.setenv("REPRO_BENCH_SEED", "7")
    runner.clear_cache()
    yield
    mp.undo()
    runner.clear_cache()


class TestStructure:
    def test_suite_order_matches_paper(self):
        assert SUITE_ORDER[0] == "p2p-Gnutella31"
        assert SUITE_ORDER[-1] == "ljournal-2008"
        assert len(SUITE_ORDER) == 9

    def test_report_str(self):
        report = ExperimentReport("x", "body", {})
        assert "== x ==" in str(report)
        assert "body" in str(report)


class TestSmoke:
    def test_fig2_subset(self):
        report = fig2_pagerank_potential(graphs=("p2p-Gnutella31",))
        assert report.name == "fig2"
        assert len(report.data["speedup"]) == 1
        assert report.data["speedup"][0] > 0

    def test_fig10_subset(self):
        report = fig10_balanced_dispatch(workloads=("SVM",))
        assert "SVM" in report.data
        assert report.data["SVM"]["gain"] > 0

    def test_fig11b_subset(self):
        report = fig11b_issue_width(widths=(1, 2), workloads=("SVM",))
        assert report.data["speedup"][0] == pytest.approx(1.0)
