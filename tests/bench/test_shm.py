"""Shared-memory trace transport: round-trips, lifecycle, crash safety.

The leak pattern ``multiprocessing.shared_memory`` is notorious for —
segments surviving in ``/dev/shm`` after the owner exits, or being
unlinked prematurely by a worker's resource tracker — is exactly what
these tests guard: every path through ``run_batch`` (normal drain, worker
exception, crashed attacher process) must leave ``/dev/shm`` as it found
it, and the runner's segments must survive any worker's death.
"""

import glob
import json
import multiprocessing

import pytest

from repro.bench import shm
from repro.bench.frontier import RunRequest, build_workload, run_batch
from repro.bench.shm import (
    TraceHandle,
    attach_trace,
    publish_traces,
    unlink_segments,
)
from repro.core.dispatch import DispatchPolicy
from repro.cpu.trace import TraceError, capture_trace
from repro.system.config import tiny_config

TINY = tiny_config()


def tiny_request(policy=DispatchPolicy.LOCALITY_AWARE):
    return RunRequest.single("HG", "small", policy, config=TINY,
                             max_ops_per_thread=300, seed=7, n_values=2000)


@pytest.fixture(scope="module")
def trace():
    request = tiny_request()
    return capture_trace(build_workload(request), TINY.n_cores,
                         max_ops_per_thread=300, page_size=TINY.page_size)


def segment_names():
    return set(glob.glob("/dev/shm/repro-trace-*"))


def canon(result):
    return json.dumps(result.to_dict(), sort_keys=True)


class TestRoundTrip:
    def test_encode_decode_identical(self, trace):
        restored = shm._decode(shm._encode(trace))
        assert restored.to_payload() == trace.to_payload()

    def test_publish_attach_round_trip(self, trace):
        handles, segments = publish_traces([trace])
        try:
            restored = attach_trace(handles[0])
            assert restored.to_payload() == trace.to_payload()
        finally:
            unlink_segments(segments)

    def test_publish_dedupes_by_identity(self, trace):
        handles, segments = publish_traces([trace, None, trace, trace])
        try:
            assert len(segments) == 1
            assert handles[1] is None
            assert handles[0] == handles[2] == handles[3]
        finally:
            unlink_segments(segments)

    def test_attach_memoizes_per_process(self, trace):
        handles, segments = publish_traces([trace])
        try:
            first = attach_trace(handles[0])
            second = attach_trace(handles[0])
            assert first is second
        finally:
            unlink_segments(segments)

    def test_fingerprint_mismatch_rejected(self, trace):
        handles, segments = publish_traces([trace])
        try:
            bogus = TraceHandle(name=handles[0].name, size=handles[0].size,
                                fingerprint="0" * 64)
            with pytest.raises(TraceError, match="holds trace"):
                attach_trace(bogus)
        finally:
            unlink_segments(segments)


class TestLifecycle:
    def test_unlink_removes_segments(self, trace):
        before = segment_names()
        handles, segments = publish_traces([trace])
        assert segment_names() - before  # visible while published
        unlink_segments(segments)
        assert segment_names() == before

    def test_unlink_tolerates_repeats(self, trace):
        handles, segments = publish_traces([trace])
        unlink_segments(segments)
        unlink_segments(segments)  # second pass must not raise

    def test_attach_after_unlink_raises_trace_error(self, trace):
        handles, segments = publish_traces([trace])
        unlink_segments(segments)
        shm._DECODED.pop(handles[0].name, None)
        with pytest.raises(TraceError, match="gone"):
            attach_trace(handles[0])

    def test_run_batch_parallel_leaves_no_segments(self, trace):
        requests = [tiny_request(policy) for policy in
                    (DispatchPolicy.HOST_ONLY, DispatchPolicy.PIM_ONLY,
                     DispatchPolicy.LOCALITY_AWARE)]
        before = segment_names()
        serial = run_batch(requests, jobs=1, traces=[trace] * 3)
        parallel = run_batch(requests, jobs=2, traces=[trace] * 3)
        assert segment_names() == before
        for a, b in zip(serial, parallel):
            assert canon(a) == canon(b)

    def test_run_batch_unlinks_on_worker_failure(self, trace):
        # The second request explodes inside the worker (HG rejects a
        # non-positive value count at build time); the runner's finally
        # must still unlink every published segment.
        good = tiny_request()
        bad = RunRequest.single("HG", "small", DispatchPolicy.PIM_ONLY,
                                config=TINY, max_ops_per_thread=300,
                                seed=7, n_values=-1)
        before = segment_names()
        with pytest.raises(Exception):
            run_batch([good, bad], jobs=2, traces=[trace, None])
        assert segment_names() == before


def _attach_and_crash(handle):
    """Child-process body: attach a segment, then die without cleanup."""
    attach_trace(handle)
    import os
    os._exit(0)  # no interpreter shutdown, no tracker interference


class TestCrashSafety:
    def test_segment_survives_crashed_attacher(self, trace):
        """A worker dying mid-batch must not take the segment with it.

        Pre-3.13 SharedMemory registers plain attaches with the resource
        tracker, whose cleanup on child exit unlinks the segment out from
        under the runner (bpo-39959); attach_trace suppresses that
        registration, so the runner's segment survives any worker death.
        """
        handles, segments = publish_traces([trace])
        try:
            ctx = multiprocessing.get_context()
            child = ctx.Process(target=_attach_and_crash, args=(handles[0],))
            child.start()
            child.join(timeout=60)
            assert child.exitcode == 0
            # The runner can still read its segment after the child died.
            shm._DECODED.pop(handles[0].name, None)
            restored = attach_trace(handles[0])
            assert restored.fingerprint == trace.fingerprint
        finally:
            unlink_segments(segments)
