"""Tests for the memoizing experiment runner."""

import pytest

from repro.bench import runner
from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config


@pytest.fixture(autouse=True)
def clean_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


TINY = dict(config=tiny_config(), max_ops_per_thread=300)


class TestRunConfig:
    def test_returns_result(self):
        result = runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                                   n_values=2000, **TINY)
        assert result.cycles > 0
        assert result.workload == "HG"

    def test_memoized(self):
        a = runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                              n_values=2000, **TINY)
        b = runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                              n_values=2000, **TINY)
        assert a is b  # cache hit returns the same object

    def test_policy_differentiates_cache_key(self):
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY)
        b = runner.run_config("HG", "small", DispatchPolicy.PIM_ONLY,
                              n_values=2000, **TINY)
        assert a is not b
        assert a.policy != b.policy

    def test_overrides_differentiate_cache_key(self):
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY)
        b = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=4000, **TINY)
        assert a is not b

    def test_clear_cache(self):
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY)
        runner.clear_cache()
        b = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY)
        assert a is not b


class TestSettings:
    def test_defaults(self):
        settings = runner.BenchSettings()
        assert settings.max_ops_per_thread > 0
        assert settings.n_mixes > 0

    def test_current_settings_rereads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OPS", "123")
        monkeypatch.setenv("REPRO_BENCH_MIXES", "5")
        settings = runner.current_settings()
        assert settings.max_ops_per_thread == 123
        assert settings.n_mixes == 5
        monkeypatch.setenv("REPRO_BENCH_OPS", "456")
        assert runner.current_settings().max_ops_per_thread == 456

    def test_settings_hashable_for_cache_key(self):
        assert hash(runner.BenchSettings()) == hash(runner.BenchSettings())


class TestEnvChangeInvalidation:
    """Changing REPRO_BENCH_* mid-process must never serve stale results."""

    def test_ops_change_differentiates_cache_key(self, monkeypatch):
        # HG small with n_values=2000 runs ~31 ops/thread, so both caps bind.
        monkeypatch.setenv("REPRO_BENCH_OPS", "5")
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, config=tiny_config())
        monkeypatch.setenv("REPRO_BENCH_OPS", "25")
        b = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, config=tiny_config())
        assert a is not b
        assert b.instructions > a.instructions  # more ops actually ran

    def test_same_env_still_memoizes(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OPS", "200")
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, config=tiny_config())
        b = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, config=tiny_config())
        assert a is b

    def test_explicit_ops_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OPS", "5000")
        result = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                                   n_values=2000, **TINY)
        assert result.cycles > 0


class TestRunnerTelemetry:
    @pytest.fixture(autouse=True)
    def no_leftover_telemetry(self):
        yield
        runner.disable_telemetry()

    def test_enable_telemetry_writes_bundles(self, tmp_path):
        runner.enable_telemetry(tmp_path, interval=1_000.0)
        runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                          n_values=2000, **TINY)
        stems = sorted(p.name for p in tmp_path.iterdir())
        assert stems == ["hg_locality-aware.intervals.jsonl",
                         "hg_locality-aware.run.json",
                         "hg_locality-aware.trace.json"]

    def test_disable_telemetry_stops_writing(self, tmp_path):
        runner.enable_telemetry(tmp_path)
        runner.disable_telemetry()
        runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                          n_values=2000, **TINY)
        assert list(tmp_path.iterdir()) == []
