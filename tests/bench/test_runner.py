"""Tests for the memoizing experiment runner."""

import pytest

from repro.bench import runner
from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config


@pytest.fixture(autouse=True)
def clean_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


TINY = dict(config=tiny_config(), max_ops_per_thread=300)


class TestRunConfig:
    def test_returns_result(self):
        result = runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                                   n_values=2000, **TINY)
        assert result.cycles > 0
        assert result.workload == "HG"

    def test_memoized(self):
        a = runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                              n_values=2000, **TINY)
        b = runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                              n_values=2000, **TINY)
        assert a is b  # cache hit returns the same object

    def test_policy_differentiates_cache_key(self):
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY)
        b = runner.run_config("HG", "small", DispatchPolicy.PIM_ONLY,
                              n_values=2000, **TINY)
        assert a is not b
        assert a.policy != b.policy

    def test_overrides_differentiate_cache_key(self):
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY)
        b = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=4000, **TINY)
        assert a is not b

    def test_clear_cache(self):
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY)
        runner.clear_cache()
        b = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY)
        assert a is not b


class TestSettings:
    def test_defaults(self):
        settings = runner.BenchSettings()
        assert settings.max_ops_per_thread > 0
        assert settings.n_mixes > 0
