"""Tests for the memoizing experiment runner."""

import pytest

from repro.bench import runner
from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config


@pytest.fixture(autouse=True)
def clean_cache():
    runner.clear_cache()
    runner.reset_accounting()
    yield
    runner.clear_cache()
    runner.reset_accounting()


TINY = dict(config=tiny_config(), max_ops_per_thread=300)


class TestRunConfig:
    def test_returns_result(self):
        result = runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                                   n_values=2000, **TINY)
        assert result.cycles > 0
        assert result.workload == "HG"

    def test_memoized(self):
        a = runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                              n_values=2000, **TINY)
        b = runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                              n_values=2000, **TINY)
        assert a is b  # cache hit returns the same object

    def test_policy_differentiates_cache_key(self):
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY)
        b = runner.run_config("HG", "small", DispatchPolicy.PIM_ONLY,
                              n_values=2000, **TINY)
        assert a is not b
        assert a.policy != b.policy

    def test_overrides_differentiate_cache_key(self):
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY)
        b = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=4000, **TINY)
        assert a is not b

    def test_clear_cache(self):
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY)
        runner.clear_cache()
        b = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY)
        assert a is not b


class TestSettings:
    def test_defaults(self):
        settings = runner.BenchSettings()
        assert settings.max_ops_per_thread > 0
        assert settings.n_mixes > 0

    def test_current_settings_rereads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OPS", "123")
        monkeypatch.setenv("REPRO_BENCH_MIXES", "5")
        settings = runner.current_settings()
        assert settings.max_ops_per_thread == 123
        assert settings.n_mixes == 5
        monkeypatch.setenv("REPRO_BENCH_OPS", "456")
        assert runner.current_settings().max_ops_per_thread == 456

    def test_settings_hashable_for_cache_key(self):
        assert hash(runner.BenchSettings()) == hash(runner.BenchSettings())

    def test_seed_rereads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SEED", "9")
        assert runner.current_settings().seed == 9

    def test_settings_attribute_deprecated(self):
        with pytest.deprecated_call(match="current_settings"):
            snapshot = runner.SETTINGS
        assert snapshot == runner.current_settings()

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            runner.NO_SUCH_NAME


class TestPrefetchAndAccounting:
    def test_prefetch_populates_memo(self):
        from repro.bench.frontier import RunRequest
        requests = [
            RunRequest.single("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, **TINY),
            RunRequest.single("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                              n_values=2000, **TINY),
        ]
        assert runner.prefetch(requests) == 2
        before = runner.accounting().snapshot()
        for request in requests:
            assert runner.run_request(request).cycles > 0
        after = runner.accounting().snapshot()
        assert after["simulations"] == before["simulations"]
        assert after["memo_hits"] == before["memo_hits"] + 2

    def test_prefetch_dedupes(self):
        from repro.bench.frontier import RunRequest
        request = RunRequest.single("HG", "small", DispatchPolicy.HOST_ONLY,
                                    n_values=2000, **TINY)
        assert runner.prefetch([request, request]) == 1
        assert runner.prefetch([request]) == 0

    def test_accounting_tracks_simulated_work(self):
        runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                          n_values=2000, **TINY)
        acct = runner.accounting()
        assert acct.simulations == 1
        assert acct.instructions > 0
        assert acct.sim_wall_seconds > 0

    def test_set_jobs_validates(self):
        assert runner.set_jobs(2) == 2
        assert runner.get_jobs() == 2
        runner.set_jobs(1)
        with pytest.raises(ValueError):
            runner.set_jobs(0)


class TestEnvChangeInvalidation:
    """Changing REPRO_BENCH_* mid-process must never serve stale results."""

    def test_ops_change_differentiates_cache_key(self, monkeypatch):
        # HG small with n_values=2000 runs ~31 ops/thread, so both caps bind.
        monkeypatch.setenv("REPRO_BENCH_OPS", "5")
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, config=tiny_config())
        monkeypatch.setenv("REPRO_BENCH_OPS", "25")
        b = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, config=tiny_config())
        assert a is not b
        assert b.instructions > a.instructions  # more ops actually ran

    def test_same_env_still_memoizes(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OPS", "200")
        a = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, config=tiny_config())
        b = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                              n_values=2000, config=tiny_config())
        assert a is b

    def test_explicit_ops_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OPS", "5000")
        result = runner.run_config("HG", "small", DispatchPolicy.HOST_ONLY,
                                   n_values=2000, **TINY)
        assert result.cycles > 0


class TestRunnerTelemetry:
    @pytest.fixture(autouse=True)
    def no_leftover_telemetry(self):
        yield
        runner.disable_telemetry()

    def test_enable_telemetry_writes_bundles(self, tmp_path):
        runner.enable_telemetry(tmp_path, interval=1_000.0)
        runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                          n_values=2000, **TINY)
        stems = sorted(p.name for p in tmp_path.iterdir())
        assert stems == ["hg_locality-aware.intervals.jsonl",
                         "hg_locality-aware.run.json",
                         "hg_locality-aware.trace.json"]

    def test_disable_telemetry_stops_writing(self, tmp_path):
        runner.enable_telemetry(tmp_path)
        runner.disable_telemetry()
        runner.run_config("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                          n_values=2000, **TINY)
        assert list(tmp_path.iterdir()) == []
