"""Tests for the columnar plan-cache accounting and configurable bound.

The ColumnPlan cache is pure harness state: its bound and its hit/miss
history shape host memory use and compile time, never simulated results.
These tests pin both halves of that contract — the counters surface
through transient (underscore-prefixed) result metadata and the runner
accounting, and results are bit-identical under any bound.
"""

import pytest

pytest.importorskip("numpy")

from repro.bench import runner
from repro.bench.frontier import RunRequest, simulate
from repro.core.dispatch import DispatchPolicy
from repro.cpu.trace import capture_trace
from repro.system import columnar
from repro.system.config import tiny_config
from repro.system.result import RunResult
from repro.system.system import System
from repro.workloads.registry import make_workload


@pytest.fixture(autouse=True)
def restore_plan_cache():
    yield
    columnar.set_plan_cache_limit(8)
    columnar._PLAN_CACHE.clear()


def captured_trace(n_values=2000, max_ops=300, seed=7):
    # The explicit key matters: the trace fingerprint keys the plan cache,
    # and without it capture_trace falls back to workload-name identity —
    # every capture here would share one plan-cache entry.
    config = tiny_config()
    workload = make_workload("HG", "small", seed=seed, n_values=n_values)
    return capture_trace(workload, n_threads=config.n_cores,
                         page_size=config.page_size,
                         max_ops_per_thread=max_ops,
                         key={"workload": "HG", "seed": seed,
                              "n_values": n_values})


def replay(trace, policy=DispatchPolicy.HOST_ONLY):
    return System(tiny_config(), policy).run(trace, engine="columnar")


class TestCounters:
    def test_miss_then_hit(self):
        trace = captured_trace()
        columnar._PLAN_CACHE.clear()
        before = columnar.plan_cache_counters()
        replay(trace)
        mid = columnar.plan_cache_counters()
        assert mid["misses"] == before["misses"] + 1
        replay(trace)
        after = columnar.plan_cache_counters()
        assert after["hits"] == mid["hits"] + 1
        assert after["misses"] == mid["misses"]

    def test_counters_returns_copy(self):
        counters = columnar.plan_cache_counters()
        counters["hits"] += 1000
        assert columnar.plan_cache_counters()["hits"] != counters["hits"]

    def test_result_carries_transient_delta(self):
        trace = captured_trace()
        result = replay(trace)
        delta = result.metadata["_plan_cache"]
        assert set(delta) == {"hits", "misses", "evictions"}
        assert delta["hits"] + delta["misses"] == 1

    def test_transient_metadata_excluded_from_dict(self):
        trace = captured_trace()
        result = replay(trace)
        assert "_plan_cache" in result.metadata
        payload = result.to_dict()
        assert "_plan_cache" not in payload["metadata"]
        assert not any(key.startswith("_") for key in payload["metadata"])
        # Round-tripping therefore drops it too.
        rebuilt = RunResult.from_dict(payload)
        assert "_plan_cache" not in rebuilt.metadata


class TestLimit:
    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            columnar.set_plan_cache_limit(0)

    def test_lowering_evicts(self):
        columnar._PLAN_CACHE.clear()
        traces = [captured_trace(seed=s) for s in (11, 12, 13)]
        for trace in traces:
            replay(trace)
        assert len(columnar._PLAN_CACHE) == 3
        before = columnar.plan_cache_counters()
        columnar.set_plan_cache_limit(1)
        assert len(columnar._PLAN_CACHE) == 1
        after = columnar.plan_cache_counters()
        assert after["evictions"] == before["evictions"] + 2

    def test_limit_one_thrashes_but_results_identical(self):
        """The bound is a memory/recompile trade: never a results change."""
        traces = [captured_trace(seed=s) for s in (11, 12)]
        columnar.set_plan_cache_limit(8)
        columnar._PLAN_CACHE.clear()
        wide = [replay(t).to_dict() for t in traces + traces]
        columnar.set_plan_cache_limit(1)
        columnar._PLAN_CACHE.clear()
        narrow = [replay(t).to_dict() for t in traces + traces]
        assert wide == narrow

    def test_policies_sharing_monitorless_plan_key(self):
        """HOST_ONLY and PIM_ONLY replay the same compiled plan."""
        trace = captured_trace()
        columnar._PLAN_CACHE.clear()
        before = columnar.plan_cache_counters()
        replay(trace, DispatchPolicy.HOST_ONLY)
        replay(trace, DispatchPolicy.PIM_ONLY)
        after = columnar.plan_cache_counters()
        assert after["misses"] - before["misses"] == 1
        assert after["hits"] - before["hits"] == 1


class TestSettings:
    def test_settings_field_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PLAN_CACHE", "3")
        assert runner.current_settings().plan_cache_limit == 3

    def test_bound_not_in_request_fingerprint(self, monkeypatch):
        """The bound must never key caches: results are bound-independent."""
        request = RunRequest.single(
            "HG", "small", DispatchPolicy.HOST_ONLY, n_values=2000)
        monkeypatch.setenv("REPRO_BENCH_PLAN_CACHE", "2")
        a = request.resolve(runner.current_settings()).fingerprint()
        monkeypatch.setenv("REPRO_BENCH_PLAN_CACHE", "8")
        b = request.resolve(runner.current_settings()).fingerprint()
        assert a == b

    def test_serial_batch_applies_limit(self):
        from repro.bench.frontier import execute_batch

        request = RunRequest.single(
            "HG", "small", DispatchPolicy.HOST_ONLY, config=tiny_config(),
            max_ops_per_thread=300, seed=7, n_values=2000)
        execute_batch([request], jobs=1, plan_cache_limit=2)
        assert columnar._PLAN_CACHE_LIMIT == 2


class TestBitIdentityAcrossEngines:
    def test_generator_and_replay_dicts_equal(self):
        """The transient annotation must not leak into serialized results."""
        request = RunRequest.single(
            "HG", "small", DispatchPolicy.HOST_ONLY, config=tiny_config(),
            max_ops_per_thread=300, seed=7, n_values=2000)
        trace = captured_trace(n_values=2000, max_ops=300)
        via_generator = simulate(request)
        via_replay = simulate(request, trace=trace)
        assert via_generator.to_dict() == via_replay.to_dict()
