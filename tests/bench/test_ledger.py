"""Integration tests: the run ledger across the cold/warm cache lifecycle."""

import pytest

from repro.bench import runner
from repro.bench.frontier import RunRequest
from repro.bench.history import BenchTrajectory, format_observability
from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config

TINY = tiny_config()

POLICIES = (DispatchPolicy.HOST_ONLY, DispatchPolicy.LOCALITY_AWARE)


@pytest.fixture(autouse=True)
def clean_runner():
    runner.clear_cache()
    runner.reset_accounting()
    runner.disable_run_ledger()
    yield
    runner.clear_cache()
    runner.reset_accounting()
    runner.disable_run_ledger()
    runner.disable_disk_cache()
    runner.disable_trace_cache()
    runner.set_jobs(1)


def requests():
    return [RunRequest.single("HG", "small", policy, config=TINY,
                              max_ops_per_thread=300, seed=7, n_values=2000)
            for policy in POLICIES]


def run_suite():
    batch = requests()
    runner.prefetch(batch)
    for request in batch:
        runner.run_request(request)


class TestColdWarmLedger:
    def test_cold_then_warm_event_profile(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SALT", "ledger-test")
        runner.enable_disk_cache(tmp_path / "cache")
        runner.enable_trace_cache(tmp_path / "cache" / "traces")

        cold = runner.enable_run_ledger()
        run_suite()
        cold_counts = cold.counts()
        n = len(POLICIES)
        assert cold_counts["request_planned"] == n
        assert cold_counts["cache_miss"] == n
        assert cold_counts["simulate_start"] == n
        assert cold_counts["simulate_end"] == n
        assert cold_counts["result_persisted"] == n
        assert cold_counts["trace_capture"] == 1   # one capture, replayed
        assert cold_counts["worker_dispatch"] == n

        # New process simulation: drop memo, keep the disk generation.
        runner.clear_cache()
        runner.reset_accounting()
        runner.enable_trace_cache(tmp_path / "cache" / "traces")
        warm = runner.enable_run_ledger()
        run_suite()
        warm_counts = warm.counts()
        # The acceptance bar: a warm pass is 100% cache-served — every
        # planned request hits, and not one simulate event appears.
        assert warm_counts["request_planned"] == n
        assert warm_counts.get("simulate_start", 0) == 0
        assert warm_counts.get("simulate_end", 0) == 0
        assert warm_counts.get("cache_miss", 0) == 0
        hits = warm_counts.get("disk_hit", 0) + warm_counts.get("memo_hit", 0)
        assert hits >= n
        assert runner.accounting().simulations == 0

    def test_ledger_stream_is_schema_clean(self, tmp_path, monkeypatch):
        from repro.analysis.telemetry import check_events_jsonl

        monkeypatch.setenv("REPRO_BENCH_SALT", "ledger-test")
        runner.enable_disk_cache(tmp_path / "cache")
        runner.enable_trace_cache(tmp_path / "cache" / "traces")
        ledger = runner.enable_run_ledger()
        run_suite()
        path = ledger.write_jsonl(tmp_path / "EVENTS_test.jsonl")
        assert check_events_jsonl(path) == []

    def test_parallel_ledger_is_request_ordered(self, tmp_path):
        runner.set_jobs(2)
        ledger = runner.enable_run_ledger()
        runner.prefetch(requests())
        ends = [e for e in ledger.events if e["kind"] == "simulate_end"]
        fingerprints = [r.resolve(runner.current_settings())
                        .event_fingerprint() for r in requests()]
        # Events absorb in request order whatever the completion order.
        assert [e["fingerprint"] for e in ends] == fingerprints

    def test_listener_ticks_during_parallel_batches(self):
        runner.set_jobs(2)
        kinds = []
        runner.enable_run_ledger(listener=lambda e: kinds.append(e["kind"]))
        runner.prefetch(requests())
        assert kinds.count("simulate_end") == len(POLICIES)
        # Live forwarding must not double-count via the ordered absorb.
        ledger = runner.run_ledger()
        assert ledger.counts()["simulate_end"] == len(POLICIES)

    def test_disable_detaches_from_cache_and_store(self, tmp_path):
        cache = runner.enable_disk_cache(tmp_path / "cache")
        runner.enable_trace_cache(tmp_path / "cache" / "traces")
        runner.enable_run_ledger()
        assert cache.ledger.enabled
        assert runner.trace_store().ledger.enabled
        runner.disable_run_ledger()
        assert not cache.ledger.enabled
        assert not runner.trace_store().ledger.enabled


class TestTrajectoryObservability:
    def test_payload_carries_observability_block(self):
        run_suite()
        trajectory = BenchTrajectory(runid="r1")
        trajectory.observability = runner.frontier_summary()
        payload = trajectory.payload()
        obs = payload["observability"]
        assert obs["schema"] == "repro.obs.frontier/1"
        assert obs["cache"]["simulations"] == len(POLICIES)
        assert obs["simulate_latency_s"]["count"] == len(POLICIES)

    def test_format_observability_lines(self):
        run_suite()
        record = {"observability": runner.frontier_summary()}
        record["observability"]["events"] = {"memo_hit": 2}
        lines = format_observability(record)
        text = "\n".join(lines)
        assert "cache:" in text
        assert "simulate latency" in text
        assert "workers:" in text
        assert "ledger: 2 events" in text

    def test_format_observability_empty_record(self):
        assert format_observability({}) == []
        assert format_observability({"observability": {}}) == []
