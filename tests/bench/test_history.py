"""Trajectory-history robustness: unreadable records, worker ordering."""

import json

import pytest

from repro.bench.history import (
    compare_engine,
    format_observability,
    load_records,
)


def write_record(history_dir, runid, ops_per_second):
    path = history_dir / f"BENCH_{runid}.json"
    path.write_text(json.dumps({
        "schema": "repro.bench/1",
        "runid": runid,
        "engine": {"ops_per_second": ops_per_second},
    }))
    return path


class TestLoadRecords:
    def test_loads_in_chronological_order(self, tmp_path):
        write_record(tmp_path, "20260101-000000-aaaa", 100.0)
        write_record(tmp_path, "20260102-000000-bbbb", 200.0)
        records = load_records(tmp_path)
        assert [r["runid"] for _, r in records] == [
            "20260101-000000-aaaa", "20260102-000000-bbbb"]

    def test_skips_corrupt_record_with_warning(self, tmp_path):
        write_record(tmp_path, "20260101-000000-aaaa", 100.0)
        # A half-downloaded CI artifact: truncated JSON.
        (tmp_path / "BENCH_20260102-000000-torn.json").write_text(
            '{"schema": "repro.bench/1", "eng')
        write_record(tmp_path, "20260103-000000-cccc", 300.0)
        with pytest.warns(UserWarning, match="torn"):
            records = load_records(tmp_path)
        assert [r["runid"] for _, r in records] == [
            "20260101-000000-aaaa", "20260103-000000-cccc"]

    def test_compare_survives_corrupt_record(self, tmp_path):
        """history --compare keeps working across a torn series member."""
        write_record(tmp_path, "20260101-000000-aaaa", 100.0)
        (tmp_path / "BENCH_20260102-000000-torn.json").write_text("{")
        write_record(tmp_path, "20260103-000000-cccc", 99.0)
        with pytest.warns(UserWarning):
            records = load_records(tmp_path)
        ok, message = compare_engine(records)
        assert ok
        assert "engine-compare OK" in message


class TestFormatObservability:
    def test_workers_sort_numerically(self):
        """JSON string pids must order as numbers: 9 before 10 and 100."""
        record = {"observability": {"workers": {
            "100": {"payloads": 3, "utilization": 0.5},
            "9": {"payloads": 1, "utilization": 0.25},
            "10": {"payloads": 2, "utilization": 0.75},
        }}}
        (line,) = format_observability(record)
        p9 = line.index("pid 9:")
        p10 = line.index("pid 10:")
        p100 = line.index("pid 100:")
        assert p9 < p10 < p100

    def test_empty_record_yields_no_lines(self):
        assert format_observability({}) == []
