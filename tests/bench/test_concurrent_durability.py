"""Concurrent durability: torn-line-free streams and jobs-invariant output.

The dynamic half of what simrace checks statically (RCE004/RCE008): many
processes hammering one JSONL stream through ``append_jsonl`` must never
interleave partial lines, and a parallel ``prefetch`` with a live ledger
listener streaming to disk must produce bit-identical results and an
order-preserved ledger merge, exactly as a serial run does.
"""

import json
import multiprocessing

import pytest

from repro.bench import runner
from repro.bench.frontier import RunRequest
from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config
from repro.util.fsio import append_jsonl

TINY = tiny_config()

POLICIES = (DispatchPolicy.HOST_ONLY, DispatchPolicy.LOCALITY_AWARE,
            DispatchPolicy.LOCALITY_BALANCED, DispatchPolicy.PIM_ONLY)


@pytest.fixture(autouse=True)
def clean_runner():
    def reset():
        runner.clear_cache()
        runner.reset_accounting()
        runner.disable_run_ledger()
        runner.disable_disk_cache()
        runner.disable_trace_cache()
        runner.set_jobs(1)

    # Reset on the way in as well: a disk cache another test left enabled
    # would turn the serial re-run into cache hits and skew the ledger.
    reset()
    yield
    reset()


def requests():
    return [RunRequest.single("HG", "small", policy, config=TINY,
                              max_ops_per_thread=300, seed=7, n_values=2000)
            for policy in POLICIES]


def _hammer(path, worker_id, batches, per_batch):
    """One appender process: variable-length records, many batches."""
    for batch in range(batches):
        records = [{"worker": worker_id, "batch": batch, "i": i,
                    "pad": "x" * ((worker_id * 7 + batch * 3 + i) % 200)}
                   for i in range(per_batch)]
        append_jsonl(path, records)


class TestTornLineFreedom:
    def test_concurrent_appenders_never_tear_lines(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        n_workers, batches, per_batch = 4, 40, 5
        procs = [multiprocessing.Process(
            target=_hammer, args=(path, wid, batches, per_batch))
            for wid in range(n_workers)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
            assert proc.exitcode == 0
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == n_workers * batches * per_batch
        # Every line parses (no torn interleavings) and nothing is lost.
        seen = set()
        for line in lines:
            record = json.loads(line)  # raises on any torn line
            seen.add((record["worker"], record["batch"], record["i"]))
        assert len(seen) == n_workers * batches * per_batch

    def test_batches_stay_contiguous_per_append(self, tmp_path):
        # Within one append_jsonl call records land adjacent: a single
        # O_APPEND write cannot be split by a concurrent writer.
        path = tmp_path / "stream.jsonl"
        procs = [multiprocessing.Process(
            target=_hammer, args=(path, wid, 30, 4))
            for wid in range(3)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
        records = [json.loads(line) for line in
                   path.read_text(encoding="utf-8").splitlines()]
        for start in range(0, len(records), 4):
            batch = records[start:start + 4]
            assert len({(r["worker"], r["batch"]) for r in batch}) == 1
            assert [r["i"] for r in batch] == [0, 1, 2, 3]


def _strip(event):
    """Ledger event minus wall-time and process-identity fields."""
    return {k: v for k, v in event.items()
            if k not in ("t", "dur_s", "worker", "seq")}


class TestParallelLedgerDurability:
    def test_parallel_prefetch_streams_and_merges_like_serial(self, tmp_path):
        stream = tmp_path / "events.jsonl"
        ledger = runner.enable_run_ledger(
            listener=lambda event: append_jsonl(stream, [event]))
        runner.set_jobs(2)
        runner.prefetch(requests())
        parallel_results = [runner.run_request(r) for r in requests()]
        parallel_events = [_strip(e) for e in ledger.events]

        # The listener streamed every event while workers ran; the file
        # must hold only whole lines — and, since live events arrive in
        # completion order while the ledger merges in request order, the
        # same *set* of events as the merged ledger (modulo timing and
        # process-identity stamps).
        lines = stream.read_text(encoding="utf-8").splitlines()
        assert len(lines) == len(ledger.events)
        streamed = sorted(json.dumps(_strip(json.loads(line)),
                                     sort_keys=True) for line in lines)
        merged = sorted(json.dumps(_strip(e), sort_keys=True)
                        for e in ledger.events)
        assert streamed == merged

        # Serial re-run from scratch: same results, same merged ledger.
        runner.clear_cache()
        runner.reset_accounting()
        ledger = runner.enable_run_ledger()
        runner.set_jobs(1)
        runner.prefetch(requests())
        serial_results = [runner.run_request(r) for r in requests()]
        serial_events = [_strip(e) for e in ledger.events]

        for par, ser in zip(parallel_results, serial_results):
            assert repr(par.cycles) == repr(ser.cycles)
            assert par.instructions == ser.instructions
            assert par.stats == ser.stats
        assert parallel_events == serial_events
