"""Tests for RunnerAccounting and the frontier observability wiring."""

import dataclasses

import pytest

from repro.bench import runner
from repro.bench.frontier import RunRequest
from repro.core.dispatch import DispatchPolicy
from repro.obs.events import NULL_LEDGER
from repro.system.config import tiny_config

TINY = tiny_config()


@pytest.fixture(autouse=True)
def clean_runner():
    runner.clear_cache()
    runner.reset_accounting()
    runner.disable_run_ledger()
    yield
    runner.clear_cache()
    runner.reset_accounting()
    runner.disable_run_ledger()
    runner.set_jobs(1)


def request_for(policy, n_values=2000):
    return RunRequest.single("HG", "small", policy, config=TINY,
                             max_ops_per_thread=300, seed=7,
                             n_values=n_values)


ALL_POLICIES = (DispatchPolicy.HOST_ONLY, DispatchPolicy.PIM_ONLY,
                DispatchPolicy.LOCALITY_AWARE, DispatchPolicy.IDEAL_HOST)


class TestSnapshot:
    def test_snapshot_covers_every_dataclass_field(self):
        # A field added to RunnerAccounting must show up in snapshots, or
        # trajectory records silently lose it.
        snapshot = runner.accounting().snapshot()
        field_names = {f.name for f in
                       dataclasses.fields(runner.RunnerAccounting)}
        assert set(snapshot) == field_names

    def test_snapshot_is_a_copy(self):
        first = runner.accounting().snapshot()
        runner.run_request(request_for(DispatchPolicy.HOST_ONLY))
        assert first["simulations"] == 0
        assert runner.accounting().snapshot()["simulations"] == 1


class TestReset:
    def test_reset_zeroes_every_field(self):
        runner.run_request(request_for(DispatchPolicy.HOST_ONLY))
        runner.run_request(request_for(DispatchPolicy.HOST_ONLY))
        assert runner.accounting().memo_hits == 1
        runner.reset_accounting()
        snapshot = runner.accounting().snapshot()
        assert all(value == 0 for value in snapshot.values())

    def test_reset_also_resets_the_aggregator(self):
        runner.run_request(request_for(DispatchPolicy.HOST_ONLY))
        assert runner.frontier_summary()["simulate_latency_s"]["count"] == 1
        runner.reset_accounting()
        summary = runner.frontier_summary()
        assert summary["simulate_latency_s"]["count"] == 0
        assert summary["batches"] == 0
        assert summary["workers"] == {}

    def test_between_figures_deltas_are_independent(self):
        # The bench CLI brackets each experiment with snapshots; the deltas
        # must attribute work to the right figure.
        before = runner.accounting().snapshot()
        runner.run_request(request_for(DispatchPolicy.HOST_ONLY))
        after = runner.accounting().snapshot()
        assert after["simulations"] - before["simulations"] == 1
        before2 = after
        runner.run_request(request_for(DispatchPolicy.HOST_ONLY))
        after2 = runner.accounting().snapshot()
        assert after2["simulations"] - before2["simulations"] == 0
        assert after2["memo_hits"] - before2["memo_hits"] == 1


class TestBatchAccounting:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_served_requests_sum_to_request_count(self, jobs):
        runner.set_jobs(jobs)
        requests = [request_for(p) for p in ALL_POLICIES]
        runner.prefetch(requests)
        for request in requests:
            runner.run_request(request)
        acct = runner.accounting()
        # Every request was served exactly once: simulated in the prefetch
        # batch, then memo-served to the figure body.
        assert acct.simulations == len(requests)
        assert acct.memo_hits == len(requests)
        assert acct.disk_hits == 0
        # Trace store: one capture for the first config, replays after.
        assert acct.trace_captures + acct.trace_hits == len(requests)
        assert acct.sim_wall_seconds > 0.0
        assert acct.instructions > 0

    def test_parallel_batch_feeds_the_aggregator(self):
        runner.set_jobs(2)
        requests = [request_for(p) for p in ALL_POLICIES]
        runner.prefetch(requests)
        summary = runner.frontier_summary()
        assert summary["simulate_latency_s"]["count"] == len(requests)
        assert summary["batches"] == 1
        assert sum(w["payloads"] for w in summary["workers"].values()) \
            == len(requests)
        assert summary["cache"]["simulations"] == len(requests)

    def test_ledger_defaults_to_null(self):
        assert runner.run_ledger() is NULL_LEDGER
        assert not runner.run_ledger().enabled
