"""Tests for benchmark table formatting and aggregation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.tables import format_series, format_table, geometric_mean


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert geometric_mean([4.0, 0.0, -1.0]) == pytest.approx(4.0)

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
    def test_bounded_by_min_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20),
           st.floats(0.1, 10.0))
    def test_scale_equivariance(self, values, factor):
        scaled = geometric_mean([v * factor for v in values])
        assert scaled == pytest.approx(geometric_mean(values) * factor,
                                       rel=1e-9)


class TestFormatTable:
    def test_contains_cells(self):
        text = format_table(["a", "b"], [["x", 1.5]], title="T")
        assert "T" in text
        assert "x" in text
        assert "1.500" in text

    def test_alignment(self):
        text = format_table(["name", "v"], [["long-name", 1.0], ["s", 2.0]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_separator_after_header(self):
        lines = format_table(["h"], [["x"]]).splitlines()
        assert set(lines[1]) <= {"-", "+"}


class TestFormatSeries:
    def test_pairs(self):
        text = format_series("s", [1, 2], [0.5, 1.0])
        assert "1=0.500" in text
        assert "2=1.000" in text
        assert text.startswith("s:")
