"""Tests for the sweep-scale frontier: sampler, checkpoints, scheduling.

Three contracts are pinned here:

* **Determinism** — the adaptive sampler's refinement sequence is a pure
  function of (seed, grid, metric values), and a sweep run under any
  worker count / schedule produces bit-identical per-point results.
* **Budget and fidelity** — adaptive sampling stays within its hard
  evaluation budget and still resolves the same threshold crossing an
  exhaustive sweep finds, to adjacent-grid-index resolution.
* **Resumability** — a sweep killed between rounds resumes from its
  checkpoint, replays the recorded rounds without divergence, and
  finishes bit-identical to an uninterrupted run.
"""

import math

import pytest

from repro.bench import runner
from repro.bench.frontier import execute_batch
from repro.bench.sweep import (
    SWEEPS,
    AdaptiveSampler,
    SweepError,
    SweepRunner,
    SweepSpec,
    SweepState,
    log_grid,
)
from repro.bench.traces import trace_request_key


@pytest.fixture(autouse=True)
def clean_runner():
    runner.clear_cache()
    runner.reset_accounting()
    runner.set_jobs(1)
    runner.set_schedule("affinity")
    yield
    runner.clear_cache()
    runner.reset_accounting()
    runner.set_jobs(1)
    runner.set_schedule("affinity")
    runner.disable_disk_cache()


def tiny_spec(points=12, metric="fig8", max_ops=300):
    """A fast sweep spec: real simulations, minimal op cap."""
    return SweepSpec(
        name="test-sweep", workload="HG", size="small", axis="n_values",
        values=log_grid(1000, 32000, points), metric=metric, threshold=0.5,
        config="tiny", seed=7, max_ops_per_thread=max_ops)


def drive(sampler, fn):
    """Run a sampler to convergence against a synthetic metric function."""
    planned = sampler.first_round()
    while planned:
        sampler.record_round(planned, [fn(i) for i in planned])
        planned = sampler.next_round()
    return sampler


class TestLogGrid:
    def test_endpoints_and_monotonic(self):
        grid = log_grid(1000, 64000, 32)
        assert grid[0] == 1000 and grid[-1] == 64000
        assert list(grid) == sorted(set(grid))

    def test_log_spacing(self):
        grid = log_grid(1000, 64000, 7)
        ratios = [b / a for a, b in zip(grid, grid[1:])]
        assert max(ratios) / min(ratios) < 1.01

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_grid(0, 100, 4)
        with pytest.raises(ValueError):
            log_grid(100, 100, 4)
        with pytest.raises(ValueError):
            log_grid(1, 100, 1)


class TestSpec:
    def test_rejects_unknown_metric(self):
        with pytest.raises(SweepError, match="metric"):
            tiny_spec(metric="nope")

    def test_rejects_unsorted_values(self):
        with pytest.raises(SweepError, match="sorted"):
            SweepSpec(name="x", workload="HG", size="small",
                      axis="n_values", values=(2000, 1000))

    def test_requests_resolved_and_policy_complete(self):
        spec = tiny_spec()
        requests = spec.requests_for(0)
        assert [r.policy for r in requests] == list(spec.policies)
        assert all(r.resolved for r in requests)

    def test_point_requests_share_trace_key(self):
        """All policies of one grid point replay one capture."""
        spec = tiny_spec()
        keys = [trace_request_key(r) for r in spec.requests_for(3)]
        assert all(k == keys[0] for k in keys)

    def test_fingerprint_sensitive_to_grid(self):
        assert tiny_spec(points=12).fingerprint() != \
            tiny_spec(points=16).fingerprint()

    def test_registry_builds_valid_specs(self):
        for name, factory in SWEEPS.items():
            spec = factory(points=16)
            assert spec.name == name
            assert len(spec.values) >= 2
            assert spec.requests_for(0)


class TestSampler:
    def test_same_seed_same_refinement(self):
        """Satellite contract: seed+grid ⇒ identical rounds and points."""
        fn = lambda i: 1.0 / (1.0 + math.exp(-(i - 600) / 40.0))  # noqa: E731
        a = drive(AdaptiveSampler(n=1024, seed=7, threshold=0.5), fn)
        b = drive(AdaptiveSampler(n=1024, seed=7, threshold=0.5), fn)
        assert a.history == b.history
        assert a.metrics == b.metrics

    def test_budget_enforced(self):
        # A pathological metric that looks interesting everywhere.
        fn = lambda i: float(i % 2)  # noqa: E731
        sampler = drive(
            AdaptiveSampler(n=1024, seed=7, max_fraction=0.40, threshold=0.5),
            fn)
        assert len(sampler.metrics) <= int(0.40 * 1024)

    def test_crossover_matches_exhaustive(self):
        """Adaptive refinement pins the same adjacent-index crossing."""
        fn = lambda i: 1.0 / (1.0 + math.exp(-(i - 600) / 40.0))  # noqa: E731
        sampler = drive(AdaptiveSampler(n=1024, seed=7, threshold=0.5), fn)
        lo, hi = sampler.crossover()
        assert hi - lo == 1
        exhaustive = next(i for i in range(1023)
                          if (fn(i) - 0.5) * (fn(i + 1) - 0.5) <= 0)
        assert lo == exhaustive
        # Way below budget: a smooth curve needs only the crossing refined.
        assert len(sampler.metrics) < 0.40 * 1024

    def test_first_round_includes_endpoints(self):
        sampler = AdaptiveSampler(n=100, seed=1)
        first = sampler.first_round()
        assert first[0] == 0 and first[-1] == 99

    def test_no_crossover_when_none_exists(self):
        sampler = drive(AdaptiveSampler(n=64, seed=1, threshold=0.5),
                        lambda i: 2.0 + i / 64.0)
        assert sampler.crossover() is None


class TestSweepRunner:
    def test_adaptive_matches_full_crossover(self, tmp_path):
        spec = tiny_spec(points=16)
        full = SweepRunner(spec).run(full=True)
        runner.clear_cache()
        adaptive = SweepRunner(spec).run()
        assert adaptive["evaluated"] <= max(
            math.ceil(0.40 * adaptive["grid_points"]), 9)
        if full["crossover"] is None:
            assert adaptive["crossover"] is None
        else:
            # Within one grid step of the exhaustive answer.
            assert abs(adaptive["crossover"]["below_index"]
                       - full["crossover"]["below_index"]) <= 1

    def test_serial_and_sharded_bit_identical(self, tmp_path):
        spec = tiny_spec(points=8)
        serial = SweepRunner(spec).run()
        runner.clear_cache()
        runner.set_jobs(2)
        runner.set_schedule("affinity")
        sharded = SweepRunner(spec).run()
        assert serial["points"] == sharded["points"]
        assert serial["crossover"] == sharded["crossover"]
        assert serial["rounds_points"] == sharded["rounds_points"]

    def test_fifo_schedule_same_results(self, tmp_path):
        spec = tiny_spec(points=8)
        affinity = SweepRunner(spec).run()
        runner.clear_cache()
        runner.set_jobs(2)
        runner.set_schedule("fifo")
        fifo = SweepRunner(spec).run()
        assert affinity["points"] == fifo["points"]

    def test_resume_bit_identical_to_uninterrupted(self, tmp_path):
        """Satellite contract: kill-and-resume == uninterrupted."""
        # 32 points => budget 12 > first round's 9, so refinement spans
        # several rounds and stop_after_rounds=1 really interrupts it.
        spec = tiny_spec(points=32)
        # The reference gets its own disk cache so the interrupted run's
        # warm-restart accounting is not polluted by reference results.
        runner.enable_disk_cache(tmp_path / "ref-cache")
        reference = SweepRunner(spec,
                                checkpoint=tmp_path / "ref.json").run()
        runner.clear_cache()
        runner.enable_disk_cache(tmp_path / "cache")
        ck = tmp_path / "ck.json"
        partial = SweepRunner(spec, checkpoint=ck).run(stop_after_rounds=1)
        assert partial["completed"] is False
        assert ck.exists()
        runner.clear_cache()
        sims_before = runner.accounting().simulations
        resumed = SweepRunner(spec, checkpoint=ck).run()
        assert resumed["completed"] is True
        assert resumed["resumed_rounds"] == 1
        # Replayed rounds come from the warm disk cache: no re-simulation.
        replayed_points = len(partial["points"])
        simulated = runner.accounting().simulations - sims_before
        assert simulated == (resumed["evaluated"] - replayed_points) \
            * len(spec.policies)
        for key in ("points", "crossover", "rounds_points", "evaluated"):
            assert resumed[key] == reference[key], key

    def test_checkpoint_from_other_spec_discarded(self, tmp_path):
        ck = tmp_path / "ck.json"
        SweepState(fingerprint="not-this-spec").write(ck)
        assert SweepState.load(ck, tiny_spec().fingerprint()) is None

    def test_tampered_checkpoint_metrics_raise(self, tmp_path):
        spec = tiny_spec(points=8)
        cache = tmp_path / "cache"
        runner.enable_disk_cache(cache)
        ck = tmp_path / "ck.json"
        SweepRunner(spec, checkpoint=ck).run(stop_after_rounds=1)
        state = SweepState.load(ck, spec.fingerprint())
        state.metrics[0][0] += 0.25
        state.write(ck)
        runner.clear_cache()
        with pytest.raises(SweepError, match="diverge"):
            SweepRunner(spec, checkpoint=ck).run()

    def test_full_evaluates_everything(self):
        spec = tiny_spec(points=8)
        report = SweepRunner(spec).run(full=True)
        assert report["evaluated"] == report["grid_points"]
        assert report["evaluated_fraction"] == 1.0
        assert report["rounds"] == 1

    def test_report_throughput_fields(self):
        report = SweepRunner(tiny_spec(points=8)).run()
        assert report["points_per_second"] > 0
        assert report["wall_seconds"] > 0
        assert report["simulated"] == report["evaluated"] * 3


class TestAffinityScheduling:
    def _frontier(self, spec, indices):
        requests, traces = [], []
        store = runner.trace_store()
        for index in indices:
            for request in spec.requests_for(index):
                resolved = request.resolve(runner.current_settings())
                requests.append(resolved)
                traces.append(store.get_or_capture(resolved))
        return requests, traces

    def test_affinity_plan_cache_optimal(self):
        """Every point's policy trio lands on one worker: per point the
        monitor-free plan is compiled once and reused once, and the
        shared-memory trace is decoded once and memo-served twice."""
        spec = tiny_spec(points=12)
        indices = [0, 4, 8]
        requests, traces = self._frontier(spec, indices)
        envelopes = execute_batch(requests, jobs=3, traces=traces,
                                  schedule="affinity")
        plan = {"hits": 0, "misses": 0}
        decode = {"decodes": 0, "memo_hits": 0}
        for envelope in envelopes:
            for key in plan:
                plan[key] += envelope["worker"]["plan_cache"][key]
            for key in decode:
                decode[key] += envelope["worker"]["trace_decode"][key]
        # 3 points x 3 policies: per point 2 plan keys (monitor on/off)
        # => 2 misses + 1 hit, and 1 segment decode + 2 memo hits.
        assert plan["misses"] == 2 * len(indices)
        assert plan["hits"] == 1 * len(indices)
        assert decode["decodes"] == 1 * len(indices)
        assert decode["memo_hits"] == 2 * len(indices)

    def test_affinity_bit_identical_to_fifo_and_serial(self):
        spec = tiny_spec(points=12)
        requests, traces = self._frontier(spec, [0, 5])
        serial = execute_batch(requests, jobs=1, traces=traces)
        affinity = execute_batch(requests, jobs=2, traces=traces,
                                 schedule="affinity")
        fifo = execute_batch(requests, jobs=2, traces=traces,
                             schedule="fifo")
        assert [e["result"] for e in serial] == \
            [e["result"] for e in affinity] == \
            [e["result"] for e in fifo]

    def test_rejects_unknown_schedule(self):
        spec = tiny_spec(points=12)
        requests, traces = self._frontier(spec, [0])
        with pytest.raises(ValueError, match="schedule"):
            execute_batch(requests, jobs=2, traces=traces, schedule="lifo")
