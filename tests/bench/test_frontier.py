"""Tests for the plan/execute frontier: requests, batches, parallelism."""

import pytest

from repro.bench import runner
from repro.bench.frontier import (
    RunRequest,
    WorkloadSpec,
    build_workload,
    run_batch,
    simulate,
)
from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config

TINY = tiny_config()


def tiny_request(policy=DispatchPolicy.LOCALITY_AWARE, n_values=2000):
    return RunRequest.single("HG", "small", policy, config=TINY,
                             max_ops_per_thread=300, seed=7,
                             n_values=n_values)


def tiny_rp_request():
    return RunRequest.single("RP", "small", DispatchPolicy.LOCALITY_AWARE,
                             config=TINY, max_ops_per_thread=300, seed=7,
                             n_rows=2048, passes=1)


class TestWorkloadSpec:
    def test_make_sorts_overrides(self):
        a = WorkloadSpec.make("HG", "small", 1, b=2, a=1)
        b = WorkloadSpec.make("HG", "small", 1, a=1, b=2)
        assert a == b
        assert hash(a) == hash(b)

    def test_build_requires_seed(self):
        spec = WorkloadSpec.make("HG", "small")
        with pytest.raises(ValueError, match="unresolved"):
            spec.build()

    def test_build(self):
        workload = WorkloadSpec.make("HG", "small", 7, n_values=2000).build()
        assert workload.name == "HG"


class TestResolve:
    def test_unresolved_until_pinned(self):
        request = RunRequest.single("HG", "small",
                                    DispatchPolicy.HOST_ONLY)
        assert not request.resolved
        resolved = request.resolve(runner.current_settings())
        assert resolved.resolved
        assert resolved.config is not None
        assert resolved.max_ops_per_thread > 0
        assert all(s.seed is not None for s in resolved.workloads)

    def test_resolve_pins_settings_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OPS", "111")
        monkeypatch.setenv("REPRO_BENCH_SEED", "9")
        resolved = RunRequest.single(
            "HG", "small", DispatchPolicy.HOST_ONLY).resolve(
                runner.current_settings())
        assert resolved.max_ops_per_thread == 111
        assert resolved.workloads[0].seed == 9

    def test_explicit_values_survive_resolution(self):
        resolved = tiny_request().resolve(runner.current_settings())
        assert resolved == tiny_request()

    def test_resolve_idempotent(self):
        settings = runner.current_settings()
        once = tiny_request().resolve(settings)
        assert once.resolve(settings) == once


class TestFingerprint:
    def test_stable(self):
        assert tiny_request().fingerprint() == tiny_request().fingerprint()

    def test_sensitive_to_every_axis(self):
        base = tiny_request()
        variants = [
            tiny_request(policy=DispatchPolicy.HOST_ONLY),
            tiny_request(n_values=4000),
            RunRequest.single("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                              config=TINY, max_ops_per_thread=301, seed=7,
                              n_values=2000),
            RunRequest.single("HG", "small", DispatchPolicy.LOCALITY_AWARE,
                              config=TINY, max_ops_per_thread=300, seed=8,
                              n_values=2000),
        ]
        for variant in variants:
            assert variant.fingerprint() != base.fingerprint()

    def test_salt_changes_fingerprint(self):
        request = tiny_request()
        assert request.fingerprint("a") != request.fingerprint("b")

    def test_requires_resolved(self):
        request = RunRequest.single("HG", "small", DispatchPolicy.HOST_ONLY)
        with pytest.raises(ValueError, match="resolved"):
            request.fingerprint()


class TestBuildWorkload:
    def test_single(self):
        workload = build_workload(tiny_request())
        assert workload.name == "HG"

    def test_multiprog(self):
        request = RunRequest.multiprog(
            [("HG", "small", 1), ("PR", "small", 2)],
            DispatchPolicy.LOCALITY_AWARE, config=TINY,
            max_ops_per_thread=300)
        workload = build_workload(request)
        assert "HG" in workload.name and "PR" in workload.name

    def test_multiprog_needs_two_parts(self):
        with pytest.raises(ValueError, match=">= 2"):
            RunRequest.multiprog([("HG", "small", 1)],
                                 DispatchPolicy.HOST_ONLY)


class TestRunBatch:
    def test_rejects_unresolved(self):
        request = RunRequest.single("HG", "small", DispatchPolicy.HOST_ONLY)
        with pytest.raises(ValueError, match="unresolved"):
            run_batch([request])

    def test_serial_matches_simulate(self):
        request = tiny_request()
        [batched] = run_batch([request], jobs=1)
        direct = simulate(request)
        assert batched.to_dict() == direct.to_dict()

    def test_parallel_bit_identical_to_serial(self):
        """The tentpole invariant: jobs=2 merges to the same stats."""
        requests = [tiny_request(policy=DispatchPolicy.HOST_ONLY),
                    tiny_request(policy=DispatchPolicy.LOCALITY_AWARE),
                    tiny_rp_request()]
        serial = run_batch(requests, jobs=1)
        parallel = run_batch(requests, jobs=2)
        assert [r.to_dict() for r in serial] == \
               [r.to_dict() for r in parallel]

    def test_parallel_preserves_request_order(self):
        requests = [tiny_rp_request(), tiny_request()]
        results = run_batch(requests, jobs=2)
        assert [r.workload for r in results] == ["RP", "HG"]

    def test_parallel_telemetry_bundles(self, tmp_path):
        requests = [tiny_request(policy=DispatchPolicy.HOST_ONLY),
                    tiny_request(policy=DispatchPolicy.LOCALITY_AWARE)]
        run_batch(requests, jobs=2, telemetry_dir=tmp_path,
                  telemetry_interval=1_000.0)
        stems = {p.name.split(".")[0] for p in tmp_path.iterdir()}
        # One fingerprint-suffixed stem per request, three files per stem.
        assert len(stems) == 2
        assert len(list(tmp_path.iterdir())) == 6
        for stem in stems:
            assert stem.startswith("hg_")
