"""Tests for the energy model (Fig. 12's accounting)."""

import pytest

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.params import EnergyParams
from repro.sim.stats import Stats


class TestEnergyModel:
    def test_empty_stats_zero_energy(self):
        assert EnergyModel().compute(Stats()).total_pj == 0.0

    def test_cache_energy(self):
        stats = Stats()
        stats.add("l1.accesses", 10)
        stats.add("l2.accesses", 5)
        stats.add("l3.accesses", 2)
        params = EnergyParams()
        expected = (10 * params.l1_access_pj + 5 * params.l2_access_pj
                    + 2 * params.l3_access_pj)
        assert EnergyModel().compute(stats).caches_pj == pytest.approx(expected)

    def test_dram_counts_pim_accesses(self):
        stats = Stats()
        stats.add("dram.reads", 1)
        stats.add("dram.pim_reads", 1)
        stats.add("dram.pim_writes", 1)
        breakdown = EnergyModel().compute(stats)
        assert breakdown.dram_pj == pytest.approx(3 * EnergyParams().dram_access_pj)

    def test_offchip_per_byte(self):
        stats = Stats()
        stats.set("offchip.request_bytes", 100)
        stats.set("offchip.response_bytes", 50)
        breakdown = EnergyModel().compute(stats)
        assert breakdown.offchip_pj == pytest.approx(150 * EnergyParams().offchip_per_byte_pj)

    def test_pcu_split(self):
        stats = Stats()
        stats.add("pei.host_executed", 2)
        stats.add("pei.mem_executed", 3)
        breakdown = EnergyModel().compute(stats)
        params = EnergyParams()
        assert breakdown.host_pcu_pj == pytest.approx(2 * params.host_pcu_op_pj)
        assert breakdown.mem_pcu_pj == pytest.approx(3 * params.mem_pcu_op_pj)

    def test_custom_params(self):
        stats = Stats()
        stats.add("l1.accesses", 1)
        model = EnergyModel(EnergyParams(l1_access_pj=123.0))
        assert model.compute(stats).caches_pj == 123.0


class TestBreakdown:
    def test_total_sums_fields(self):
        b = EnergyBreakdown(1, 2, 3, 4, 5, 6, 7)
        assert b.total_pj == 28

    def test_hmc_energy_is_dram_plus_mem_pcu(self):
        b = EnergyBreakdown(caches_pj=0, dram_pj=100, offchip_pj=0,
                            onchip_network_pj=0, host_pcu_pj=0,
                            mem_pcu_pj=2, pmu_pj=0)
        assert b.hmc_pj == 102
        assert b.mem_pcu_fraction_of_hmc == pytest.approx(2 / 102)

    def test_mem_pcu_fraction_empty(self):
        b = EnergyBreakdown(0, 0, 0, 0, 0, 0, 0)
        assert b.mem_pcu_fraction_of_hmc == 0.0

    def test_to_dict(self):
        d = EnergyBreakdown(1, 2, 3, 4, 5, 6, 7).to_dict()
        assert d["total_pj"] == 28
        assert d["dram_pj"] == 2


class TestSection77Claim:
    def test_memory_pcu_energy_is_small_fraction_of_hmc(self):
        """Section 7.7: memory-side PCUs ~1.4% of HMC energy.

        With realistic event ratios (one DRAM access per memory-side PEI)
        the PCU share must stay in the low single digits.
        """
        stats = Stats()
        stats.add("dram.pim_reads", 1000)
        stats.add("dram.pim_writes", 1000)
        stats.add("tsv.bytes", 1000 * 128)
        stats.add("pei.mem_executed", 1000)
        breakdown = EnergyModel().compute(stats)
        assert breakdown.mem_pcu_fraction_of_hmc < 0.05
