"""Shared fixtures for the test suite."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config
from repro.system.system import System


def pytest_addoption(parser):
    parser.addoption(
        "--no-simsan",
        action="store_true",
        default=False,
        help=("Disable the PEI protocol sanitizer that runs inside the "
              "integration tests (see docs/analysis.md)."),
    )


@pytest.fixture
def config():
    """A miniature 4-core machine configuration."""
    return tiny_config()


@pytest.fixture
def system(config):
    """A locality-aware miniature system."""
    return System(config, DispatchPolicy.LOCALITY_AWARE)


def make_system(policy=DispatchPolicy.LOCALITY_AWARE, **overrides):
    """Build a tiny system with the given policy and config overrides."""
    return System(tiny_config(**overrides), policy)
