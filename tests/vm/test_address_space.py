"""Tests for the address-space allocator."""

import pytest

from repro.vm.address_space import AddressSpace


class TestAddressSpace:
    def test_allocations_page_aligned(self):
        space = AddressSpace(page_size=4096)
        region = space.alloc("a", 100)
        assert region.base % 4096 == 0

    def test_allocations_disjoint(self):
        space = AddressSpace()
        a = space.alloc("a", 10_000)
        b = space.alloc("b", 10_000)
        assert a.end <= b.base or b.end <= a.base

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("a", 64)
        with pytest.raises(ValueError):
            space.alloc("a", 64)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc("a", 0)

    def test_footprint_sums_regions(self):
        space = AddressSpace()
        space.alloc("a", 100)
        space.alloc("b", 200)
        assert space.footprint == 300

    def test_region_addr_bounds_checked(self):
        space = AddressSpace()
        region = space.alloc("a", 64)
        assert region.addr(0) == region.base
        assert region.addr(63) == region.base + 63
        with pytest.raises(IndexError):
            region.addr(64)
        with pytest.raises(IndexError):
            region.addr(-1)

    def test_base_above_null(self):
        region = AddressSpace().alloc("a", 64)
        assert region.base > 0
