"""Tests for the page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.page_table import PageTable


class TestPageTable:
    def test_offset_preserved(self):
        pt = PageTable(page_size=4096)
        paddr = pt.translate(0x12345)
        assert paddr & 0xFFF == 0x345

    def test_same_page_same_frame(self):
        pt = PageTable()
        a = pt.translate(0x10000)
        b = pt.translate(0x10FFF)
        assert (a >> 12) == (b >> 12)

    def test_different_pages_different_frames(self):
        pt = PageTable()
        a = pt.translate(0x10000)
        b = pt.translate(0x20000)
        assert (a >> 12) != (b >> 12)

    def test_page_faults_counted_once(self):
        pt = PageTable()
        pt.translate(0x10000)
        pt.translate(0x10008)
        pt.translate(0x20000)
        assert pt.page_faults == 2
        assert pt.mapped_pages == 2

    def test_translation_stable(self):
        pt = PageTable()
        assert pt.translate(0x10020) == pt.translate(0x10020)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            PageTable(page_size=1000)
        with pytest.raises(ValueError):
            PageTable(n_frames=1000)

    def test_exhaustion(self):
        pt = PageTable(n_frames=4)
        for i in range(4):
            pt.translate(i * 4096)
        with pytest.raises(MemoryError):
            pt.translate(5 * 4096)

    @settings(max_examples=30)
    @given(st.sets(st.integers(min_value=0, max_value=10_000), min_size=1,
                   max_size=200))
    def test_frame_assignment_is_injective(self, pages):
        pt = PageTable(n_frames=1 << 16)
        frames = {pt.translate(p * 4096) >> 12 for p in pages}
        assert len(frames) == len(pages)

    def test_frames_are_scattered(self):
        # The permutation should not hand out consecutive frames.
        pt = PageTable()
        frames = [pt.translate(i * 4096) >> 12 for i in range(16)]
        deltas = {b - a for a, b in zip(frames, frames[1:])}
        assert deltas != {1}
