"""Tests for the TLB."""

import pytest

from repro.vm.page_table import PageTable
from repro.vm.tlb import Tlb


@pytest.fixture
def tlb():
    return Tlb(PageTable(), entries=2, walk_latency=100.0)


class TestTlb:
    def test_first_access_walks(self, tlb):
        _, latency = tlb.translate(0x10000)
        assert latency == 100.0
        assert tlb.misses == 1

    def test_second_access_hits(self, tlb):
        tlb.translate(0x10000)
        _, latency = tlb.translate(0x10008)
        assert latency == 0.0
        assert tlb.hits == 1

    def test_translation_matches_page_table(self, tlb):
        paddr, _ = tlb.translate(0x10123)
        assert paddr == tlb.page_table.translate(0x10123)

    def test_lru_eviction(self, tlb):
        tlb.translate(0x10000)
        tlb.translate(0x20000)
        tlb.translate(0x30000)  # evicts page of 0x10000
        _, latency = tlb.translate(0x10000)
        assert latency == 100.0

    def test_lru_promotion(self, tlb):
        tlb.translate(0x10000)
        tlb.translate(0x20000)
        tlb.translate(0x10000)  # promote
        tlb.translate(0x30000)  # evicts page of 0x20000
        _, latency = tlb.translate(0x10000)
        assert latency == 0.0

    def test_flush(self, tlb):
        tlb.translate(0x10000)
        tlb.flush()
        _, latency = tlb.translate(0x10000)
        assert latency == 100.0

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            Tlb(PageTable(), entries=0)
