"""Tests for end-to-end PEI execution (the sequences of Figs. 4 and 5)."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import EUCLIDEAN_DIST, FP_ADD, HASH_PROBE, INT_INCREMENT
from repro.system.builder import build_machine
from repro.system.config import tiny_config


def make(policy, **overrides):
    return build_machine(tiny_config(**overrides), policy)


VADDR = 0x40000


class TestHostSidePath:
    def test_host_pei_touches_caches_not_memory_when_resident(self):
        m = make(DispatchPolicy.HOST_ONLY)
        core = m.cores[0]
        core.do_load(VADDR, False)  # warm caches
        dram_before = m.stats["dram.reads"]
        m.executor.execute(core, FP_ADD, VADDR, wait_output=False)
        assert m.stats["dram.reads"] == dram_before
        assert m.stats["pei.host_executed"] == 1

    def test_writer_pei_dirties_block(self):
        m = make(DispatchPolicy.HOST_ONLY)
        core = m.cores[0]
        m.executor.execute(core, FP_ADD, VADDR, wait_output=False)
        block = m.hierarchy.block_of(m.page_table.translate(VADDR))
        assert m.hierarchy.l1[0].is_dirty(block)

    def test_fire_and_forget_does_not_block_core(self):
        m = make(DispatchPolicy.HOST_ONLY)
        core = m.cores[0]
        completion = m.executor.execute(core, FP_ADD, VADDR, wait_output=False)
        assert core.time < completion

    def test_wait_output_blocks_core(self):
        m = make(DispatchPolicy.HOST_ONLY)
        core = m.cores[0]
        completion = m.executor.execute(core, HASH_PROBE, VADDR, wait_output=True)
        assert core.time >= completion


class TestMemorySidePath:
    def test_memory_pei_accesses_dram_locally(self):
        m = make(DispatchPolicy.PIM_ONLY)
        core = m.cores[0]
        m.executor.execute(core, FP_ADD, VADDR, wait_output=False)
        assert m.stats["dram.pim_reads"] == 1
        assert m.stats["dram.pim_writes"] == 1
        assert m.stats["pei.mem_executed"] == 1

    def test_reader_pei_does_not_write_dram(self):
        m = make(DispatchPolicy.PIM_ONLY)
        m.executor.execute(m.cores[0], EUCLIDEAN_DIST, VADDR, wait_output=True)
        assert m.stats["dram.pim_writes"] == 0

    def test_offload_cleans_dirty_cached_copy(self):
        m = make(DispatchPolicy.PIM_ONLY)
        core = m.cores[0]
        core.do_store(VADDR)  # dirty copy on chip
        m.executor.execute(core, FP_ADD, VADDR, wait_output=False)
        block = m.hierarchy.block_of(m.page_table.translate(VADDR))
        assert not m.hierarchy.present(block)  # back-invalidated
        assert m.stats["dram.writes"] >= 1  # dirty data reached memory first

    def test_operand_bytes_on_offchip_links(self):
        m = make(DispatchPolicy.PIM_ONLY)
        m.executor.execute(m.cores[0], EUCLIDEAN_DIST, VADDR, wait_output=True)
        channel = m.hmc.channel
        # Request: 16 B header + 64 B center chunk; response: header + 4 B.
        assert channel.request_bytes == 80
        assert channel.response_bytes == 32

    def test_no_output_pei_frees_host_entry_early(self):
        m = make(DispatchPolicy.PIM_ONLY)
        core = m.cores[0]
        m.executor.execute(core, INT_INCREMENT, VADDR, wait_output=False)
        buf = m.host_pcus[0].operand_buffer
        # The single in-flight record completed at dispatch, so issuing 4
        # more PEIs back-to-back does not stall on far-future completions.
        t = core.time
        for i in range(4):
            m.executor.execute(core, INT_INCREMENT, VADDR + 64 * (i + 1),
                               wait_output=False)
        assert buf.stalls == 0 or core.time - t < 1000


class TestChains:
    def test_chained_peis_serialize_within_chain(self):
        m = make(DispatchPolicy.PIM_ONLY)
        core = m.cores[0]
        c1 = m.executor.execute(core, HASH_PROBE, VADDR, False, chain=7)
        t_before = core.time
        m.executor.execute(core, HASH_PROBE, VADDR + 4096, False, chain=7)
        # The second hop could not be issued before the first completed.
        assert core.time >= c1 or core.chain_completions[7] > c1

    def test_different_chains_overlap(self):
        m = make(DispatchPolicy.PIM_ONLY)
        core = m.cores[0]
        m.executor.execute(core, HASH_PROBE, VADDR, False, chain=0)
        t = core.time
        m.executor.execute(core, HASH_PROBE, VADDR + 4096, False, chain=1)
        # Issuing on another chain does not wait for chain 0's completion.
        assert core.time - t < core.chain_completions[0]


class TestIdealHost:
    def test_ideal_faster_than_host_only(self):
        for policy in (DispatchPolicy.IDEAL_HOST, DispatchPolicy.HOST_ONLY):
            m = make(policy)
            core = m.cores[0]
            for i in range(32):
                m.executor.execute(core, FP_ADD, VADDR + 64 * (i % 4), False)
            core.drain()
            if policy is DispatchPolicy.IDEAL_HOST:
                ideal_time = core.time
            else:
                host_time = core.time
        assert ideal_time <= host_time

    def test_ideal_never_offloads(self):
        m = make(DispatchPolicy.IDEAL_HOST)
        m.executor.execute(m.cores[0], FP_ADD, VADDR, False)
        assert m.stats["pei.mem_executed"] == 0
        assert m.stats["dram.pim_reads"] == 0


class TestFence:
    def test_fence_waits_for_inflight_writers(self):
        m = make(DispatchPolicy.PIM_ONLY)
        core = m.cores[0]
        completion = m.executor.execute(core, FP_ADD, VADDR, False)
        assert core.time < completion
        m.executor.fence(core)
        assert core.time >= completion

    def test_fence_counts_instruction(self):
        m = make(DispatchPolicy.HOST_ONLY)
        core = m.cores[0]
        before = core.instructions
        m.executor.fence(core)
        assert core.instructions == before + 1


class TestStatistics:
    def test_issue_counter(self):
        m = make(DispatchPolicy.LOCALITY_AWARE)
        m.executor.execute(m.cores[0], FP_ADD, VADDR, False)
        assert m.stats["pei.issued"] == 1
