"""Property-based tests of the PMU's dispatch and atomicity behaviour."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import FP_ADD, HASH_PROBE, INT_MIN
from repro.system.builder import build_machine
from repro.system.config import tiny_config

OPS = (FP_ADD, HASH_PROBE, INT_MIN)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 50),
                          st.integers(0, 2), st.floats(1, 50)),
                min_size=1, max_size=80))
def test_pmu_grants_are_causal_and_atomic(events):
    """For any PEI sequence: grants are ordered after requests, writer
    spans never overlap per block, and every grant gets released."""
    machine = build_machine(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
    pmu = machine.pmu
    time = 0.0
    spans = []
    for core, block, op_idx, hold in events:
        op = OPS[op_idx]
        grant = pmu.begin_pei(core, block, op, time)
        assert grant.grant_time >= grant.decision_time >= time
        completion = grant.grant_time + hold
        pmu.finish_pei(grant.entry, op, completion)
        spans.append((grant.entry, op.is_writer, grant.grant_time, completion))
        time += 1.0
    for i, (e1, w1, g1, c1) in enumerate(spans):
        for e2, w2, g2, c2 in spans[i + 1:]:
            if e1 == e2 and (w1 or w2):
                assert g1 >= c2 or g2 >= c1


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=60),
       st.sampled_from([DispatchPolicy.HOST_ONLY, DispatchPolicy.PIM_ONLY,
                        DispatchPolicy.LOCALITY_AWARE]))
def test_dispatch_counts_are_conserved(blocks, policy):
    """host_dispatched + mem_dispatched equals the number of admissions."""
    machine = build_machine(tiny_config(), policy)
    time = 0.0
    for block in blocks:
        grant = machine.pmu.begin_pei(0, block, FP_ADD, time)
        machine.pmu.finish_pei(grant.entry, FP_ADD, grant.grant_time + 10.0)
        time += 5.0
    total = (machine.stats["pei.host_dispatched"]
             + machine.stats["pei.mem_dispatched"])
    assert total == len(blocks)
    if policy is DispatchPolicy.HOST_ONLY:
        assert machine.stats["pei.mem_dispatched"] == 0
    if policy is DispatchPolicy.PIM_ONLY:
        assert machine.stats["pei.host_dispatched"] == 0


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 20), min_size=1, max_size=50))
def test_fence_time_monotone_and_covering(blocks):
    """pfence covers every writer completion released so far, and the
    fence horizon never regresses."""
    machine = build_machine(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
    pmu = machine.pmu
    time = 0.0
    max_completion = 0.0
    last_fence = 0.0
    for block in blocks:
        grant = pmu.begin_pei(0, block, FP_ADD, time)
        completion = grant.grant_time + 25.0
        pmu.finish_pei(grant.entry, FP_ADD, completion)
        max_completion = max(max_completion, completion)
        fence = pmu.fence(time)
        assert fence >= max_completion
        assert fence >= last_fence - 1e-9 or fence >= time
        last_fence = fence
        time += 3.0
