"""Tests for the locality monitor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.locality_monitor import LocalityMonitor


def make_monitor(n_sets=4, n_ways=2, **kwargs):
    return LocalityMonitor(n_sets=n_sets, n_ways=n_ways, **kwargs)


class TestConstruction:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            make_monitor(n_sets=3)
        with pytest.raises(ValueError):
            make_monitor(n_ways=0)
        with pytest.raises(ValueError):
            make_monitor(partial_tag_bits=0)

    def test_section61_storage_cost(self):
        # 16384 sets x 16 ways x 16 bits = 512 KB (Section 6.1).
        monitor = LocalityMonitor(n_sets=16384, n_ways=16)
        assert monitor.storage_bits / 8 / 1024 == pytest.approx(512.0)

    def test_storage_lru_bits_track_associativity(self):
        # The LRU rank is ceil(log2(ways)) bits, not a hardcoded 4: a 4-way
        # monitor needs 1 valid + 10 tag + 2 LRU + 1 ignore = 14 bits/entry.
        monitor = LocalityMonitor(n_sets=1024, n_ways=4)
        assert monitor.storage_bits == 1024 * 4 * 14

    def test_storage_lru_bits_round_up_for_odd_ways(self):
        # 6 ways need a 3-bit rank (ceil(log2(6))).
        monitor = LocalityMonitor(n_sets=1024, n_ways=6)
        assert monitor.storage_bits == 1024 * 6 * 15

    def test_storage_direct_mapped_needs_no_lru(self):
        monitor = LocalityMonitor(n_sets=1024, n_ways=1)
        assert monitor.storage_bits == 1024 * 1 * 12


class TestAdvice:
    def test_unknown_block_advised_to_memory(self):
        monitor = make_monitor()
        assert monitor.advise_host(7) is False

    def test_llc_touched_block_advised_to_host(self):
        monitor = make_monitor()
        monitor.observe_llc_access(7)
        assert monitor.advise_host(7) is True

    def test_ignore_flag_skips_first_hit(self):
        # A block only ever touched by in-memory PIM operations must hit
        # the monitor twice before being considered local.
        monitor = make_monitor()
        monitor.note_pim_issue(7)
        assert monitor.advise_host(7) is False  # first hit ignored
        assert monitor.advise_host(7) is True  # second hit counts

    def test_ignore_flag_disabled(self):
        monitor = make_monitor(use_ignore_flag=False)
        monitor.note_pim_issue(7)
        assert monitor.advise_host(7) is True

    def test_llc_access_clears_ignore_flag(self):
        monitor = make_monitor()
        monitor.note_pim_issue(7)
        monitor.observe_llc_access(7)
        assert monitor.advise_host(7) is True


class TestReplacement:
    def test_lru_eviction_forgets_block(self):
        monitor = make_monitor(n_sets=1, n_ways=2)
        for block in (0, 1, 2):  # all map to set 0
            monitor.observe_llc_access(block)
        assert monitor.advise_host(0) is False  # evicted
        assert monitor.advise_host(2) is True

    def test_advice_promotes_entry(self):
        monitor = make_monitor(n_sets=1, n_ways=2)
        monitor.observe_llc_access(0)
        monitor.observe_llc_access(1)
        monitor.advise_host(0)  # promotes 0
        monitor.observe_llc_access(2)  # evicts 1, not 0
        assert monitor.contains(0)
        assert not monitor.contains(1)

    def test_pim_issue_promotes(self):
        monitor = make_monitor(n_sets=1, n_ways=2)
        monitor.observe_llc_access(0)
        monitor.observe_llc_access(1)
        monitor.note_pim_issue(0)
        monitor.observe_llc_access(2)
        assert monitor.contains(0)

    def test_capacity_bounded(self):
        monitor = make_monitor(n_sets=2, n_ways=2)
        for block in range(100):
            monitor.observe_llc_access(block)
        total = sum(len(s) for s in monitor._sets)
        assert total <= 4


class TestPartialTags:
    def test_partial_tag_width(self):
        monitor = make_monitor(partial_tag_bits=10)
        for block in (0, 1, 2**20, 2**30 + 12345):
            assert 0 <= monitor.partial_tag(block) < 1024

    def test_aliasing_gives_false_locality(self):
        # Section 7.6: two blocks in the same set with equal partial tags
        # alias; the monitor then reports false locality — safe, only a
        # performance effect.
        monitor = make_monitor(n_sets=1, n_ways=4, partial_tag_bits=2)
        alias = None
        for candidate in range(1, 10000):
            if (monitor.partial_tag(candidate) == monitor.partial_tag(0)
                    and monitor.set_index(candidate) == monitor.set_index(0)):
                alias = candidate
                break
        assert alias is not None
        monitor.observe_llc_access(0)
        assert monitor.advise_host(alias) is True  # false hit

    def test_wide_tags_do_not_alias_small_blocks(self):
        monitor = make_monitor(partial_tag_bits=30)
        tags = {monitor.partial_tag(b) for b in range(0, 4096, 4)}
        assert len(tags) == len(range(0, 4096, 4))


class TestStatistics:
    def test_counters(self):
        monitor = make_monitor()
        monitor.observe_llc_access(1)
        monitor.advise_host(1)
        monitor.advise_host(2)
        assert monitor.stats["locality_monitor.accesses"] == 2
        assert monitor.stats["locality_monitor.host_advice"] == 1
        assert monitor.stats["locality_monitor.miss_advice"] == 1

    def test_ignored_hits_counted(self):
        monitor = make_monitor()
        monitor.note_pim_issue(1)
        monitor.advise_host(1)
        assert monitor.stats["locality_monitor.ignored_first_hits"] == 1


@settings(max_examples=40)
@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 30)),
                min_size=1, max_size=150))
def test_monitor_never_crashes_and_stays_bounded(events):
    """Any interleaving of update sources keeps the monitor consistent."""
    monitor = make_monitor(n_sets=2, n_ways=2)
    for kind, block in events:
        if kind == 0:
            monitor.observe_llc_access(block)
        elif kind == 1:
            monitor.note_pim_issue(block)
        else:
            monitor.advise_host(block)
    for line_set in monitor._sets:
        assert len(line_set) <= 2
