"""Tests for the PIM directory's reader-writer lock semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pim_directory import PimDirectory
from repro.util.rng import make_rng


class TestIndexing:
    def test_same_block_same_entry(self):
        d = PimDirectory(entries=2048)
        assert d.index_of(12345) == d.index_of(12345)

    def test_entry_within_range(self):
        d = PimDirectory(entries=2048)
        for block in (0, 1, 2**30, 2**40 + 17):
            assert 0 <= d.index_of(block) < 2048

    def test_false_positives_exist(self):
        # The table is tag-less: some pair of distinct blocks shares an entry.
        d = PimDirectory(entries=16)
        entries = {d.index_of(b) for b in range(1000)}
        assert len(entries) <= 16

    def test_ideal_has_no_aliasing(self):
        d = PimDirectory(ideal=True)
        entries = {d.index_of(b) for b in range(1000)}
        assert len(entries) == 1000

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            PimDirectory(entries=1000)


class TestIndexProperties:
    """Property tests for the index map, the atomicity keystone:
    same block must always land on the same in-range entry."""

    @given(st.integers(min_value=0, max_value=2**48),
           st.sampled_from([2, 16, 256, 2048]))
    def test_same_block_same_in_range_entry(self, block, entries):
        d = PimDirectory(entries=entries)
        first = d.index_of(block)
        assert first == d.index_of(block)
        assert 0 <= first < entries

    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=0, max_value=2**32))
    def test_ideal_never_aliases(self, a, b):
        d = PimDirectory(ideal=True)
        assert (d.index_of(a) == d.index_of(b)) == (a == b)

    def test_seeded_sweep_normal_and_ideal(self):
        # A reproducible random block stream (through the repo's seed tree,
        # not global random state) exercised against both realizations.
        rng = make_rng(2015, "tests.pim_directory.index")
        normal = PimDirectory(entries=256)
        ideal = PimDirectory(ideal=True)
        for _ in range(500):
            block = int(rng.integers(0, 2**40))
            entry = normal.index_of(block)
            assert 0 <= entry < 256
            assert entry == normal.index_of(block)
            assert ideal.index_of(block) == ideal.index_of(block)


class TestLockProtocol:
    def test_uncontended_writer_granted_after_latency(self):
        d = PimDirectory(latency=2.0)
        _, grant = d.acquire(5, is_writer=True, time=10.0)
        assert grant == 12.0

    def test_writer_blocks_writer_same_block(self):
        d = PimDirectory(latency=0.0, handoff_penalty=0.0)
        entry, g1 = d.acquire(5, True, 0.0)
        d.release(entry, True, 100.0)
        _, g2 = d.acquire(5, True, 0.0)
        assert g2 == 100.0  # serialized behind the first writer

    def test_writer_blocks_reader_same_block(self):
        d = PimDirectory(latency=0.0, handoff_penalty=0.0)
        entry, _ = d.acquire(5, True, 0.0)
        d.release(entry, True, 100.0)
        _, grant = d.acquire(5, False, 0.0)
        assert grant == 100.0

    def test_readers_overlap(self):
        d = PimDirectory(latency=0.0, handoff_penalty=0.0)
        e1, g1 = d.acquire(5, False, 0.0)
        d.release(e1, False, 100.0)
        _, g2 = d.acquire(5, False, 0.0)
        assert g2 == 0.0  # concurrent readers allowed

    def test_writer_waits_for_readers(self):
        d = PimDirectory(latency=0.0, handoff_penalty=0.0)
        e, _ = d.acquire(5, False, 0.0)
        d.release(e, False, 80.0)
        _, grant = d.acquire(5, True, 0.0)
        assert grant == 80.0

    def test_different_blocks_do_not_conflict(self):
        d = PimDirectory(entries=2048, latency=0.0, handoff_penalty=0.0)
        e, _ = d.acquire(0, True, 0.0)
        d.release(e, True, 1000.0)
        # Block 1 maps to a different entry in a 2048-entry table.
        _, grant = d.acquire(1, True, 0.0)
        assert grant == 0.0

    def test_false_positive_serializes_but_is_safe(self):
        d = PimDirectory(entries=2, latency=0.0, handoff_penalty=0.0)
        # Find two distinct blocks that alias.
        a, b = 0, None
        for candidate in range(1, 100):
            if d.index_of(candidate) == d.index_of(a):
                b = candidate
                break
        assert b is not None
        e, _ = d.acquire(a, True, 0.0)
        d.release(e, True, 50.0)
        _, grant = d.acquire(b, True, 0.0)
        assert grant == 50.0  # needless but harmless serialization

    def test_conflict_statistics(self):
        d = PimDirectory(latency=0.0, handoff_penalty=0.0)
        e, _ = d.acquire(5, True, 0.0)
        d.release(e, True, 100.0)
        d.acquire(5, True, 0.0)
        assert d.stats["pim_directory.conflicts"] == 1
        assert d.stats["pim_directory.wait_cycles"] == 100.0


class TestFence:
    def test_fence_waits_for_writers(self):
        d = PimDirectory(latency=0.0, handoff_penalty=0.0)
        e, _ = d.acquire(5, True, 0.0)
        d.release(e, True, 250.0)
        assert d.fence_time(10.0) == 250.0

    def test_fence_ignores_readers(self):
        # pfence orders normal instructions after *writer* PEIs.
        d = PimDirectory(latency=0.0, handoff_penalty=0.0)
        e, _ = d.acquire(5, False, 0.0)
        d.release(e, False, 250.0)
        assert d.fence_time(10.0) == 10.0

    def test_quiesce_includes_readers(self):
        d = PimDirectory(latency=0.0, handoff_penalty=0.0)
        e, _ = d.acquire(5, False, 0.0)
        d.release(e, False, 250.0)
        assert d.quiesce_time(10.0) == 250.0

    def test_fence_never_in_past(self):
        d = PimDirectory(latency=0.0, handoff_penalty=0.0)
        assert d.fence_time(42.0) == 42.0


class TestStorage:
    def test_section61_storage_cost(self):
        # 2048 entries x 13 bits = 3.25 KB.
        d = PimDirectory(entries=2048)
        assert d.storage_bits == 2048 * 13
        assert d.storage_bits / 8 / 1024 == pytest.approx(3.25)

    def test_ideal_costs_nothing(self):
        assert PimDirectory(ideal=True).storage_bits == 0


@settings(max_examples=40)
@given(st.lists(st.tuples(st.integers(0, 30), st.booleans(),
                          st.floats(0, 1000), st.floats(1, 100)),
                min_size=1, max_size=60))
def test_no_overlapping_writers_per_block(ops):
    """Atomicity: writer lock spans never overlap for the same block.

    Simulates acquire/release pairs and checks that, per block, every
    writer's [grant, completion] interval is disjoint from every other
    writer's and from every reader's.
    """
    d = PimDirectory(entries=16, latency=0.0, handoff_penalty=0.0)
    spans = []
    for block, is_writer, time, hold in ops:
        entry, grant = d.acquire(block, is_writer, time)
        completion = grant + hold
        d.release(entry, is_writer, completion)
        spans.append((d.index_of(block), is_writer, grant, completion))
    for i, (e1, w1, g1, c1) in enumerate(spans):
        for e2, w2, g2, c2 in spans[i + 1:]:
            if e1 != e2 or not (w1 or w2):
                continue  # different entries or reader-reader: may overlap
            # Writer intervals must not strictly overlap anything else.
            assert g1 >= c2 or g2 >= c1, "writer span overlap detected"


class TestBlockingRules:
    """The paper's blocking matrix, pinned case by case."""

    def test_writer_waits_for_latest_of_multiple_readers(self):
        d = PimDirectory(latency=0.0, handoff_penalty=0.0)
        e, _ = d.acquire(5, False, 0.0)
        d.release(e, False, 50.0)
        e, _ = d.acquire(5, False, 0.0)
        d.release(e, False, 80.0)
        _, grant = d.acquire(5, True, 0.0)
        assert grant == 80.0  # readers_max, not the first reader

    def test_reader_ignores_in_flight_readers(self):
        d = PimDirectory(latency=0.0, handoff_penalty=0.0)
        e, _ = d.acquire(5, False, 0.0)
        d.release(e, False, 500.0)
        _, grant = d.acquire(5, False, 10.0)
        assert grant == 10.0

    def test_boundary_completion_pays_no_handoff(self):
        # busy_until == arrival is a clean back-to-back grant: the acquirer
        # never waited, so no lock handoff is charged.
        d = PimDirectory(latency=0.0, handoff_penalty=10.0)
        e, _ = d.acquire(5, True, 0.0)
        d.release(e, True, 100.0)
        _, grant = d.acquire(5, True, 100.0)
        assert grant == 100.0

    def test_directory_latency_counts_toward_the_wait(self):
        # The lock is checked at arrival (issue + latency); a writer that
        # completes inside that window causes neither wait nor handoff.
        d = PimDirectory(latency=2.0, handoff_penalty=10.0)
        e, _ = d.acquire(5, True, 0.0)
        d.release(e, True, 11.0)
        _, grant = d.acquire(5, True, 10.0)  # arrives at 12.0 > 11.0
        assert grant == 12.0

    def test_wait_statistics_only_on_actual_waits(self):
        d = PimDirectory(latency=0.0, handoff_penalty=10.0)
        e, _ = d.acquire(5, True, 0.0)
        d.release(e, True, 100.0)
        d.acquire(5, True, 200.0)  # arrives after the writer completed
        assert d.stats["pim_directory.conflicts"] == 0
        assert d.stats["pim_directory.wait_cycles"] == 0.0
        assert d.stats["pim_directory.accesses"] == 2


class TestFenceLatency:
    def test_fence_adds_directory_latency(self):
        d = PimDirectory(latency=2.0)
        assert d.fence_time(10.0) == 12.0

    def test_ideal_fence_is_free(self):
        d = PimDirectory(latency=2.0, ideal=True)
        assert d.fence_time(10.0) == 10.0

    def test_quiesce_vs_fence_after_mixed_traffic(self):
        # fence_time covers writers only; quiesce_time covers everything.
        d = PimDirectory(latency=0.0, handoff_penalty=0.0)
        e, _ = d.acquire(5, True, 0.0)
        d.release(e, True, 60.0)
        e, _ = d.acquire(6, False, 0.0)
        d.release(e, False, 90.0)
        assert d.fence_time(10.0) == 60.0
        assert d.quiesce_time(10.0) == 90.0


class TestHandoffPenalty:
    def test_contended_writer_pays_handoff(self):
        d = PimDirectory(latency=0.0, handoff_penalty=10.0)
        e, _ = d.acquire(5, True, 0.0)
        d.release(e, True, 100.0)
        _, grant = d.acquire(5, True, 0.0)
        assert grant == 110.0  # completion + ownership handoff

    def test_uncontended_writer_pays_nothing(self):
        d = PimDirectory(latency=0.0, handoff_penalty=10.0)
        e, _ = d.acquire(5, True, 0.0)
        d.release(e, True, 100.0)
        _, grant = d.acquire(5, True, 500.0)
        assert grant == 500.0

    def test_reader_after_writer_pays_handoff(self):
        d = PimDirectory(latency=0.0, handoff_penalty=10.0)
        e, _ = d.acquire(5, True, 0.0)
        d.release(e, True, 100.0)
        _, grant = d.acquire(5, False, 0.0)
        assert grant == 110.0
