"""Tests for the programmer-facing PEI intrinsics."""

import numpy as np

from repro.core import intrinsics
from repro.core.isa import (
    DOT_PRODUCT,
    EUCLIDEAN_DIST,
    FP_ADD,
    HASH_PROBE,
    HISTOGRAM_BIN,
    INT_INCREMENT,
    INT_MIN,
)
from repro.cpu.trace import KIND_FENCE, KIND_PEI


class TestRmwIntrinsics:
    def test_pim_inc(self):
        values = np.zeros(4, dtype=np.int64)
        op = intrinsics.pim_inc(values, 2, 0x1000)
        assert values[2] == 1
        assert op.kind == KIND_PEI
        assert op.op is INT_INCREMENT
        assert op.addr == 0x1000
        assert op.wait_output is False

    def test_pim_int_min_takes_smaller(self):
        values = np.full(4, 100, dtype=np.int64)
        intrinsics.pim_int_min(values, 1, 0x40, 7)
        assert values[1] == 7
        intrinsics.pim_int_min(values, 1, 0x40, 50)
        assert values[1] == 7  # larger operand ignored

    def test_pim_int_min_op(self):
        op = intrinsics.pim_int_min([10], 0, 0x80, 3)
        assert op.op is INT_MIN

    def test_pim_fadd(self):
        values = np.zeros(2)
        op = intrinsics.pim_fadd(values, 0, 0xC0, 0.25)
        assert values[0] == 0.25
        assert op.op is FP_ADD


class TestReaderIntrinsics:
    def test_probe_is_chained(self):
        op = intrinsics.pim_hash_probe(0x100, chain=2)
        assert op.op is HASH_PROBE
        assert op.chain == 2
        assert op.wait_output is False  # chained

    def test_unchained_probe_waits(self):
        assert intrinsics.pim_hash_probe(0x100).wait_output is True

    def test_histogram(self):
        assert intrinsics.pim_hist_bin(0x140).op is HISTOGRAM_BIN

    def test_euclidean(self):
        assert intrinsics.pim_euclidean_dist(0x180).op is EUCLIDEAN_DIST

    def test_dot(self):
        assert intrinsics.pim_dot_product(0x1C0).op is DOT_PRODUCT


class TestFence:
    def test_pfence(self):
        assert intrinsics.pfence().kind == KIND_FENCE
