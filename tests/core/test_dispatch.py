"""Tests for dispatch policies and balanced dispatch (Section 7.4)."""

from repro.core.dispatch import DispatchPolicy, balanced_choice
from repro.core.isa import EUCLIDEAN_DIST, FP_ADD, HISTOGRAM_BIN, PimOp
from repro.mem.link import OffChipChannel


def make_channel():
    return OffChipChannel(10.0, 10.0, ema_period=1e12)


class TestPolicyFlags:
    def test_monitor_users(self):
        assert DispatchPolicy.LOCALITY_AWARE.uses_monitor
        assert DispatchPolicy.LOCALITY_BALANCED.uses_monitor
        assert not DispatchPolicy.HOST_ONLY.uses_monitor
        assert not DispatchPolicy.PIM_ONLY.uses_monitor
        assert not DispatchPolicy.IDEAL_HOST.uses_monitor

    def test_balanced_flag(self):
        assert DispatchPolicy.LOCALITY_BALANCED.is_balanced
        assert not DispatchPolicy.LOCALITY_AWARE.is_balanced

    def test_values_match_paper_names(self):
        assert DispatchPolicy.HOST_ONLY.value == "host-only"
        assert DispatchPolicy.PIM_ONLY.value == "pim-only"
        assert DispatchPolicy.IDEAL_HOST.value == "ideal-host"
        assert DispatchPolicy.LOCALITY_AWARE.value == "locality-aware"


class TestBalancedChoice:
    def test_response_heavy_traffic_prefers_memory(self):
        # Host execution of FP_ADD would add an 80 B response; memory-side
        # adds only a 32 B response.  With the response link busier, choose
        # memory.
        channel = make_channel()
        channel.res_flits.add(0.0, 1000.0)
        channel.req_flits.add(0.0, 10.0)
        assert balanced_choice(FP_ADD, channel, 0.0) is False

    def test_request_heavy_traffic_prefers_host(self):
        # Host execution sends only a 16 B request; memory-side FP_ADD needs
        # a 32 B request packet.  With the request link busier, choose host.
        channel = make_channel()
        channel.req_flits.add(0.0, 1000.0)
        channel.res_flits.add(0.0, 10.0)
        assert balanced_choice(FP_ADD, channel, 0.0) is True

    def test_large_input_operand_prefers_host_under_request_pressure(self):
        # SC's 64 B input operand makes memory-side requests expensive.
        channel = make_channel()
        channel.req_flits.add(0.0, 1000.0)
        assert balanced_choice(EUCLIDEAN_DIST, channel, 0.0) is True

    def test_response_pressure_with_small_output_prefers_memory(self):
        channel = make_channel()
        channel.res_flits.add(0.0, 1000.0)
        assert balanced_choice(EUCLIDEAN_DIST, channel, 0.0) is False

    def test_tie_counts_compare_request_side(self):
        # Equal counters: the request direction is treated as the busier
        # one; host's 16 B request beats memory's padded packet.
        channel = make_channel()
        assert balanced_choice(HISTOGRAM_BIN, channel, 0.0) is True

    def test_block_size_defaults_to_64(self):
        # Same decision whether 64 B is implied or explicit.
        for bias in ("req_flits", "res_flits"):
            implied = make_channel()
            explicit = make_channel()
            getattr(implied, bias).add(0.0, 1000.0)
            getattr(explicit, bias).add(0.0, 1000.0)
            assert (balanced_choice(FP_ADD, implied, 0.0)
                    == balanced_choice(FP_ADD, explicit, 0.0, block_size=64))

    def test_ema_decay_changes_decision(self):
        # Old response pressure fades: after many halvings the request side
        # dominates again.
        channel = OffChipChannel(10.0, 10.0, ema_period=10.0)
        channel.res_flits.add(0.0, 1000.0)
        channel.req_flits.add(0.0, 500.0)
        assert balanced_choice(FP_ADD, channel, 0.0) is False
        # Both decay equally, so relative order persists; add fresh request
        # traffic to flip the balance.
        channel.req_flits.add(1000.0, 100.0)
        assert balanced_choice(FP_ADD, channel, 1000.0) is True


class TestBalancedChoiceBlockSize:
    """Host-side response cost is one *configured* cache block, not 64 B."""

    # Largest legal output operand: memory-side response is 16 B header +
    # 64 B payload = 80 wire bytes, so the host/memory comparison lands on
    # either side of it depending on the configured block size.
    BIG_OUTPUT = PimOp(
        name="test op", mnemonic="pim.test", reads=True, writes=False,
        input_bytes=0, output_bytes=64, compute_cycles=1.0,
        applications=(),
    )

    def make_response_heavy(self):
        channel = make_channel()
        channel.res_flits.add(0.0, 1000.0)
        return channel

    def test_small_blocks_prefer_host(self):
        # 32 B blocks: host response (48 wire bytes) < memory's 80.
        channel = self.make_response_heavy()
        assert balanced_choice(self.BIG_OUTPUT, channel, 0.0,
                               block_size=32) is True

    def test_large_blocks_prefer_memory(self):
        # 128 B blocks: host response (144 wire bytes) > memory's 80.
        channel = self.make_response_heavy()
        assert balanced_choice(self.BIG_OUTPUT, channel, 0.0,
                               block_size=128) is False

    def test_hardcoded_64_would_misdecide_both(self):
        # The pre-fix behavior (always 80 host response bytes vs. 80) chose
        # memory for both geometries above — the regression this guards.
        channel = self.make_response_heavy()
        assert balanced_choice(self.BIG_OUTPUT, channel, 0.0,
                               block_size=64) is False
