"""Tests for dispatch policies and balanced dispatch (Section 7.4)."""

from repro.core.dispatch import DispatchPolicy, balanced_choice
from repro.core.isa import EUCLIDEAN_DIST, FP_ADD, HISTOGRAM_BIN
from repro.mem.link import OffChipChannel


def make_channel():
    return OffChipChannel(10.0, 10.0, ema_period=1e12)


class TestPolicyFlags:
    def test_monitor_users(self):
        assert DispatchPolicy.LOCALITY_AWARE.uses_monitor
        assert DispatchPolicy.LOCALITY_BALANCED.uses_monitor
        assert not DispatchPolicy.HOST_ONLY.uses_monitor
        assert not DispatchPolicy.PIM_ONLY.uses_monitor
        assert not DispatchPolicy.IDEAL_HOST.uses_monitor

    def test_balanced_flag(self):
        assert DispatchPolicy.LOCALITY_BALANCED.is_balanced
        assert not DispatchPolicy.LOCALITY_AWARE.is_balanced

    def test_values_match_paper_names(self):
        assert DispatchPolicy.HOST_ONLY.value == "host-only"
        assert DispatchPolicy.PIM_ONLY.value == "pim-only"
        assert DispatchPolicy.IDEAL_HOST.value == "ideal-host"
        assert DispatchPolicy.LOCALITY_AWARE.value == "locality-aware"


class TestBalancedChoice:
    def test_response_heavy_traffic_prefers_memory(self):
        # Host execution of FP_ADD would add an 80 B response; memory-side
        # adds only a 32 B response.  With the response link busier, choose
        # memory.
        channel = make_channel()
        channel.res_flits.add(0.0, 1000.0)
        channel.req_flits.add(0.0, 10.0)
        assert balanced_choice(FP_ADD, channel, 0.0) is False

    def test_request_heavy_traffic_prefers_host(self):
        # Host execution sends only a 16 B request; memory-side FP_ADD needs
        # a 32 B request packet.  With the request link busier, choose host.
        channel = make_channel()
        channel.req_flits.add(0.0, 1000.0)
        channel.res_flits.add(0.0, 10.0)
        assert balanced_choice(FP_ADD, channel, 0.0) is True

    def test_large_input_operand_prefers_host_under_request_pressure(self):
        # SC's 64 B input operand makes memory-side requests expensive.
        channel = make_channel()
        channel.req_flits.add(0.0, 1000.0)
        assert balanced_choice(EUCLIDEAN_DIST, channel, 0.0) is True

    def test_response_pressure_with_small_output_prefers_memory(self):
        channel = make_channel()
        channel.res_flits.add(0.0, 1000.0)
        assert balanced_choice(EUCLIDEAN_DIST, channel, 0.0) is False

    def test_tie_counts_compare_request_side(self):
        # Equal counters: the request direction is treated as the busier
        # one; host's 16 B request beats memory's padded packet.
        channel = make_channel()
        assert balanced_choice(HISTOGRAM_BIN, channel, 0.0) is True

    def test_ema_decay_changes_decision(self):
        # Old response pressure fades: after many halvings the request side
        # dominates again.
        channel = OffChipChannel(10.0, 10.0, ema_period=10.0)
        channel.res_flits.add(0.0, 1000.0)
        channel.req_flits.add(0.0, 500.0)
        assert balanced_choice(FP_ADD, channel, 0.0) is False
        # Both decay equally, so relative order persists; add fresh request
        # traffic to flip the balance.
        channel.req_flits.add(1000.0, 100.0)
        assert balanced_choice(FP_ADD, channel, 1000.0) is True
