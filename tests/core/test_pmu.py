"""Tests for the PEI Management Unit."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import FP_ADD, HASH_PROBE
from repro.system.builder import build_machine
from repro.system.config import tiny_config


def make_pmu(policy=DispatchPolicy.LOCALITY_AWARE, **overrides):
    machine = build_machine(tiny_config(**overrides), policy)
    return machine


class TestAdmission:
    def test_grant_is_ordered(self):
        machine = make_pmu()
        grant = machine.pmu.begin_pei(0, block=5, op=FP_ADD, time=10.0)
        assert grant.grant_time >= grant.decision_time > 10.0

    def test_unknown_block_goes_to_memory(self):
        machine = make_pmu()
        grant = machine.pmu.begin_pei(0, 5, FP_ADD, 0.0)
        assert grant.on_host is False

    def test_llc_resident_block_stays_on_host(self):
        machine = make_pmu()
        machine.monitor.observe_llc_access(5)
        grant = machine.pmu.begin_pei(0, 5, FP_ADD, 0.0)
        assert grant.on_host is True

    def test_host_only_never_offloads(self):
        machine = make_pmu(DispatchPolicy.HOST_ONLY)
        assert machine.pmu.begin_pei(0, 5, FP_ADD, 0.0).on_host is True

    def test_pim_only_always_offloads(self):
        machine = make_pmu(DispatchPolicy.PIM_ONLY)
        machine.monitor.observe_llc_access(5)
        assert machine.pmu.begin_pei(0, 5, FP_ADD, 0.0).on_host is False

    def test_ideal_host_admission_is_free(self):
        machine = make_pmu(DispatchPolicy.IDEAL_HOST)
        grant = machine.pmu.begin_pei(0, 5, FP_ADD, time=10.0)
        assert grant.on_host is True
        assert grant.grant_time == 10.0

    def test_memory_dispatch_updates_monitor(self):
        machine = make_pmu()
        machine.pmu.begin_pei(0, 5, FP_ADD, 0.0)  # miss -> memory
        # The PIM issue allocated an ignore-flagged entry: the next PEI
        # still goes to memory, the one after runs on the host.
        assert machine.pmu.begin_pei(0, 5, FP_ADD, 100.0).on_host is False
        assert machine.pmu.begin_pei(0, 5, FP_ADD, 200.0).on_host is True

    def test_dispatch_statistics(self):
        machine = make_pmu()
        machine.monitor.observe_llc_access(5)
        machine.pmu.begin_pei(0, 5, FP_ADD, 0.0)
        machine.pmu.begin_pei(0, 99, FP_ADD, 0.0)
        assert machine.stats["pei.host_dispatched"] == 1
        assert machine.stats["pei.mem_dispatched"] == 1


class TestAtomicityThroughPmu:
    def test_same_block_writers_serialize(self):
        machine = make_pmu()
        pmu = machine.pmu
        g1 = pmu.begin_pei(0, 5, FP_ADD, 0.0)
        pmu.finish_pei(g1.entry, FP_ADD, 500.0)
        g2 = pmu.begin_pei(1, 5, FP_ADD, 0.0)
        assert g2.grant_time >= 500.0

    def test_readers_overlap(self):
        machine = make_pmu()
        pmu = machine.pmu
        g1 = pmu.begin_pei(0, 5, HASH_PROBE, 0.0)
        pmu.finish_pei(g1.entry, HASH_PROBE, 500.0)
        g2 = pmu.begin_pei(1, 5, HASH_PROBE, 0.0)
        assert g2.grant_time < 500.0


class TestCoherenceManagement:
    def test_writer_pei_back_invalidates(self):
        machine = make_pmu()
        machine.hierarchy.access(0, 5 * 64, True, 0.0)  # dirty on chip
        ready = machine.pmu.clean_block_for_memory(5, FP_ADD, 100.0)
        assert ready > 100.0
        assert not machine.hierarchy.present(5)
        assert machine.stats["pmu.back_invalidations"] == 1

    def test_reader_pei_back_writebacks(self):
        machine = make_pmu()
        machine.hierarchy.access(0, 5 * 64, True, 0.0)
        machine.pmu.clean_block_for_memory(5, HASH_PROBE, 100.0)
        assert machine.hierarchy.present(5)  # copies remain, now clean
        assert machine.stats["pmu.back_writebacks"] == 1

    def test_uncached_block_is_free(self):
        machine = make_pmu()
        ready = machine.pmu.clean_block_for_memory(5, FP_ADD, 100.0)
        assert ready == 100.0


class TestFence:
    def test_fence_covers_writer_completions(self):
        machine = make_pmu()
        pmu = machine.pmu
        g = pmu.begin_pei(0, 5, FP_ADD, 0.0)
        pmu.finish_pei(g.entry, FP_ADD, 750.0)
        assert pmu.fence(10.0) >= 750.0
        assert machine.stats["pei.pfences"] == 1
