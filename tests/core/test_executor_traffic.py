"""Per-operation off-chip traffic accounting for memory-side execution.

Pins the packet cost of every Table 1 operation when offloaded: request =
16 B header + input operand (padded to 16 B flits), response = 16 B header +
output operand (padded).  These numbers drive Figs. 7 and 10, so they are
asserted operation by operation.
"""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import (
    DOT_PRODUCT,
    EUCLIDEAN_DIST,
    FP_ADD,
    HASH_PROBE,
    HISTOGRAM_BIN,
    INT_INCREMENT,
    INT_MIN,
    PIM_OPS,
)
from repro.system.builder import build_machine
from repro.system.config import tiny_config
from repro.util.bitops import align_up

VADDR = 0x80000

#: op -> (expected request bytes, expected response bytes)
EXPECTED = {
    op.mnemonic: (
        align_up(16 + op.input_bytes, 16),
        align_up(16 + op.output_bytes, 16),
    )
    for op in PIM_OPS.values()
}


@pytest.mark.parametrize("op", list(PIM_OPS.values()),
                         ids=[op.mnemonic for op in PIM_OPS.values()])
def test_offloaded_packet_sizes(op):
    m = build_machine(tiny_config(), DispatchPolicy.PIM_ONLY)
    m.executor.execute(m.cores[0], op, VADDR, wait_output=op.output_bytes > 0)
    req, res = EXPECTED[op.mnemonic]
    assert m.hmc.channel.request_bytes == req
    assert m.hmc.channel.response_bytes == res


def test_increment_is_the_cheapest_packet(op=INT_INCREMENT):
    # ATF's increment ships no operands at all: two bare headers.
    req, res = EXPECTED[op.mnemonic]
    assert (req, res) == (16, 16)


def test_euclidean_ships_a_full_block_up():
    # SC sends the 64 B center chunk: request-heavy, response-light —
    # the traffic inversion behind Section 7.4.
    req, res = EXPECTED[EUCLIDEAN_DIST.mnemonic]
    assert req == 80
    assert res == 32
    host_fetch_req, host_fetch_res = 16, 80
    assert req > host_fetch_req and res < host_fetch_res


@pytest.mark.parametrize("op,writes_dram", [
    (INT_INCREMENT, True), (INT_MIN, True), (FP_ADD, True),
    (HASH_PROBE, False), (HISTOGRAM_BIN, False),
    (EUCLIDEAN_DIST, False), (DOT_PRODUCT, False),
], ids=[o.mnemonic for o, _ in [
    (INT_INCREMENT, 1), (INT_MIN, 1), (FP_ADD, 1), (HASH_PROBE, 0),
    (HISTOGRAM_BIN, 0), (EUCLIDEAN_DIST, 0), (DOT_PRODUCT, 0)]])
def test_writer_column_controls_dram_writeback(op, writes_dram):
    m = build_machine(tiny_config(), DispatchPolicy.PIM_ONLY)
    m.executor.execute(m.cores[0], op, VADDR, wait_output=op.output_bytes > 0)
    assert m.stats["dram.pim_reads"] == 1
    assert m.stats["dram.pim_writes"] == (1 if writes_dram else 0)


def test_host_side_execution_produces_no_pim_packets():
    m = build_machine(tiny_config(), DispatchPolicy.HOST_ONLY)
    m.cores[0].do_load(VADDR, False)  # cache the block
    before = m.hmc.channel.total_bytes
    m.executor.execute(m.cores[0], FP_ADD, VADDR, wait_output=False)
    assert m.hmc.channel.total_bytes == before


def test_tsv_bytes_counted_per_offload():
    m = build_machine(tiny_config(), DispatchPolicy.PIM_ONLY)
    vault = m.hmc.vault_for(m.page_table.translate(VADDR))
    m.executor.execute(m.cores[0], FP_ADD, VADDR, wait_output=False)
    # 64 B block crosses the TSVs twice (read + write-back).
    assert vault.tsv.bytes_transferred == 128
