"""Tests for PEI Computation Units and operand buffers."""

import pytest

from repro.core.isa import EUCLIDEAN_DIST, FP_ADD
from repro.core.pcu import OperandBuffer, Pcu
from repro.sim.clock import ClockDomain


class TestOperandBuffer:
    def test_allocates_immediately_when_free(self):
        buf = OperandBuffer(4)
        assert buf.allocate(10.0) == 10.0

    def test_full_buffer_waits_for_earliest(self):
        buf = OperandBuffer(2)
        buf.allocate(0.0)
        buf.release(100.0)
        buf.allocate(0.0)
        buf.release(50.0)
        # Both entries busy; the next PEI waits for the one finishing at 50.
        assert buf.allocate(0.0) == 50.0
        assert buf.stalls == 1

    def test_freed_entry_reusable_without_stall(self):
        buf = OperandBuffer(1)
        buf.allocate(0.0)
        buf.release(10.0)
        assert buf.allocate(20.0) == 20.0
        assert buf.stalls == 0

    def test_in_flight_count(self):
        buf = OperandBuffer(4)
        buf.allocate(0.0)
        buf.release(10.0)
        assert buf.in_flight == 1

    def test_drain_time(self):
        buf = OperandBuffer(4)
        assert buf.drain_time(5.0) == 5.0
        buf.allocate(0.0)
        buf.release(100.0)
        assert buf.drain_time(5.0) == 100.0

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            OperandBuffer(0)

    def test_mlp_scales_with_entries(self):
        """More entries admit more overlapped PEIs (Fig. 11a's premise)."""
        latency = 100.0

        def run(entries):
            buf = OperandBuffer(entries)
            t = 0.0
            for _ in range(16):
                start = buf.allocate(t)
                buf.release(start + latency)
                t = start  # issue as fast as allowed
            return buf.drain_time(t)

        assert run(4) < run(1)
        # Saturation: beyond the number of issued PEIs, no further benefit.
        assert run(32) == run(16)


class TestOperandBufferStallAccounting:
    """The stall counter and returned times under saturation (Fig. 11a)."""

    def test_stall_counted_once_per_blocked_allocate(self):
        buf = OperandBuffer(2)
        for completion in (100.0, 200.0):
            buf.release(completion)
        assert buf.allocate(0.0) == 100.0
        buf.release(300.0)
        assert buf.allocate(0.0) == 200.0
        assert buf.stalls == 2

    def test_full_but_expired_entry_is_not_a_stall(self):
        # The buffer is at capacity, but the earliest entry already
        # completed: the allocate proceeds at the requested time.
        buf = OperandBuffer(1)
        buf.allocate(0.0)
        buf.release(10.0)
        assert buf.allocate(50.0) == 50.0
        assert buf.stalls == 0

    def test_saturated_stream_stalls_all_but_first_entries(self):
        # 8 zero-time issues into a 2-entry buffer of 100-cycle PEIs:
        # the first two are free, every later one stalls.
        buf = OperandBuffer(2)
        latency = 100.0
        starts = []
        t = 0.0
        for _ in range(8):
            start = buf.allocate(t)
            starts.append(start)
            buf.release(start + latency)
        assert buf.stalls == 6
        # Each stalled PEI starts exactly when its predecessor-by-two ends.
        assert starts == [0.0, 0.0, 100.0, 100.0, 200.0, 200.0, 300.0, 300.0]

    def test_stall_returns_earliest_completion(self):
        buf = OperandBuffer(2)
        buf.allocate(0.0)
        buf.release(300.0)
        buf.allocate(0.0)
        buf.release(70.0)
        # Blocked allocate waits for the *earliest* in-flight completion.
        assert buf.allocate(5.0) == 70.0
        assert buf.stalls == 1

    def test_in_flight_shrinks_as_stalls_reclaim_entries(self):
        buf = OperandBuffer(2)
        buf.release(10.0)
        buf.release(20.0)
        assert buf.in_flight == 2
        buf.allocate(0.0)  # pops the entry completing at 10.0
        assert buf.in_flight == 1


class TestPcu:
    def test_compute_occupancy_host_clock(self):
        pcu = Pcu("p", ClockDomain(4.0, 4.0))
        finish = pcu.compute(0.0, FP_ADD)
        assert finish == pytest.approx(4.0)

    def test_memory_pcu_runs_at_half_clock(self):
        # 2 GHz memory-side PCU: compute cycles double in host cycles.
        pcu = Pcu("p", ClockDomain(2.0, 4.0))
        assert pcu.compute(0.0, FP_ADD) == pytest.approx(8.0)

    def test_single_issue_serializes(self):
        pcu = Pcu("p", ClockDomain(4.0, 4.0), issue_width=1)
        pcu.compute(0.0, EUCLIDEAN_DIST)
        assert pcu.compute(0.0, EUCLIDEAN_DIST) == pytest.approx(32.0)

    def test_wider_issue_reduces_occupancy(self):
        # Fig. 11b's knob: doubling issue width halves ALU occupancy.
        narrow = Pcu("n", ClockDomain(4.0, 4.0), issue_width=1)
        wide = Pcu("w", ClockDomain(4.0, 4.0), issue_width=2)
        assert wide.compute(0.0, EUCLIDEAN_DIST) < narrow.compute(0.0, EUCLIDEAN_DIST)

    def test_executed_counter(self):
        pcu = Pcu("p", ClockDomain(4.0, 4.0))
        pcu.compute(0.0, FP_ADD)
        pcu.compute(10.0, FP_ADD)
        assert pcu.executed == 2

    def test_rejects_bad_issue_width(self):
        with pytest.raises(ValueError):
            Pcu("p", ClockDomain(4.0, 4.0), issue_width=0)
