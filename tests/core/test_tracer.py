"""Tests for the per-PEI tracer."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import FP_ADD
from repro.core.tracer import PeiTrace, PeiTracer
from repro.system.builder import build_machine
from repro.system.config import tiny_config

VADDR = 0x90000


def traced_machine(policy=DispatchPolicy.LOCALITY_AWARE, **tracer_kwargs):
    machine = build_machine(tiny_config(), policy)
    tracer = PeiTracer(**tracer_kwargs)
    machine.executor.tracer = tracer
    return machine, tracer


class TestPeiTrace:
    def test_derived_metrics(self):
        trace = PeiTrace(core=0, op="pim.fadd", block=5, on_host=True,
                         issue_time=10.0, grant_time=15.0, completion=40.0)
        assert trace.latency == 30.0
        assert trace.lock_wait == 5.0

    def test_lock_wait_clamped(self):
        trace = PeiTrace(0, "pim.fadd", 5, True, 10.0, 10.0, 40.0)
        assert trace.lock_wait == 0.0


class TestPeiTracer:
    def test_records_every_pei(self):
        machine, tracer = traced_machine()
        for i in range(5):
            machine.executor.execute(machine.cores[0], FP_ADD,
                                     VADDR + 64 * i, False)
        assert len(tracer) == 5
        assert all(t.op == "pim.fadd" for t in tracer.records)

    def test_records_execution_location(self):
        machine, tracer = traced_machine(DispatchPolicy.PIM_ONLY)
        machine.executor.execute(machine.cores[0], FP_ADD, VADDR, False)
        assert tracer.records[0].on_host is False
        assert tracer.host_fraction() == 0.0

    def test_capacity_drops_excess(self):
        machine, tracer = traced_machine(capacity=2)
        for i in range(5):
            machine.executor.execute(machine.cores[0], FP_ADD,
                                     VADDR + 64 * i, False)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_callback_invoked(self):
        seen = []
        machine, tracer = traced_machine(callback=seen.append)
        machine.executor.execute(machine.cores[0], FP_ADD, VADDR, False)
        assert len(seen) == 1

    def test_hottest_blocks(self):
        machine, tracer = traced_machine()
        for _ in range(3):
            machine.executor.execute(machine.cores[0], FP_ADD, VADDR, False)
        machine.executor.execute(machine.cores[0], FP_ADD, VADDR + 4096, False)
        (top_block, count), *_ = tracer.hottest_blocks()
        assert count == 3

    def test_mean_latency_filtering(self):
        machine, tracer = traced_machine()
        machine.executor.execute(machine.cores[0], FP_ADD, VADDR, False)
        assert tracer.mean_latency() > 0
        assert tracer.mean_latency(on_host=not tracer.records[0].on_host) == 0.0

    def test_timestamps_ordered(self):
        machine, tracer = traced_machine()
        machine.executor.execute(machine.cores[0], FP_ADD, VADDR, False)
        t = tracer.records[0]
        assert t.issue_time <= t.grant_time <= t.completion


class TestEventInterleaving:
    """The combined events stream keeps PEIs and fences in record order."""

    def test_fence_interleaves_between_peis(self):
        machine, tracer = traced_machine()
        machine.executor.execute(machine.cores[0], FP_ADD, VADDR, False)
        machine.executor.fence(machine.cores[0])
        machine.executor.execute(machine.cores[0], FP_ADD, VADDR + 64, False)
        kinds = [type(e).__name__ for e in tracer.events]
        assert kinds == ["PeiTrace", "FenceTrace", "PeiTrace"]
        assert len(tracer.records) == 2
        assert len(tracer.fences) == 1

    def test_events_is_union_of_records_and_fences(self):
        machine, tracer = traced_machine()
        for i in range(3):
            machine.executor.execute(machine.cores[0], FP_ADD,
                                     VADDR + 64 * i, False)
            machine.executor.fence(machine.cores[0])
        assert len(tracer.events) == len(tracer.records) + len(tracer.fences)
        assert set(map(id, tracer.records)) | set(map(id, tracer.fences)) \
            == set(map(id, tracer.events))

    def test_capacity_bounds_combined_stream(self):
        machine, tracer = traced_machine(capacity=3)
        for i in range(3):
            machine.executor.execute(machine.cores[0], FP_ADD,
                                     VADDR + 64 * i, False)
        machine.executor.fence(machine.cores[0])  # over capacity: dropped
        assert len(tracer.events) == 3
        assert tracer.fences == []
        assert tracer.dropped == 1

    def test_fence_timestamps_ordered(self):
        machine, tracer = traced_machine()
        machine.executor.execute(machine.cores[0], FP_ADD, VADDR, False)
        machine.executor.fence(machine.cores[0])
        fence = tracer.fences[0]
        assert fence.release_time >= fence.issue_time
        assert fence.stall == fence.release_time - fence.issue_time
