"""Tests asserting Table 1 of the paper verbatim."""

import pytest

from repro.core.isa import (
    DOT_PRODUCT,
    EUCLIDEAN_DIST,
    FP_ADD,
    HASH_PROBE,
    HISTOGRAM_BIN,
    INT_INCREMENT,
    INT_MIN,
    PIM_OPS,
    PimOp,
    apply_rmw,
)

#: (op, reads, writes, input bytes, output bytes, applications) — Table 1.
TABLE_1 = [
    (INT_INCREMENT, True, True, 0, 0, ("ATF",)),
    (INT_MIN, True, True, 8, 0, ("BFS", "SP", "WCC")),
    (FP_ADD, True, True, 8, 0, ("PR",)),
    (HASH_PROBE, True, False, 8, 9, ("HJ",)),
    (HISTOGRAM_BIN, True, False, 1, 16, ("HG", "RP")),
    (EUCLIDEAN_DIST, True, False, 64, 4, ("SC",)),
    (DOT_PRODUCT, True, False, 32, 8, ("SVM",)),
]


class TestTable1:
    @pytest.mark.parametrize("op,r,w,inb,outb,apps", TABLE_1,
                             ids=[row[0].mnemonic for row in TABLE_1])
    def test_row(self, op, r, w, inb, outb, apps):
        assert op.reads == r
        assert op.writes == w
        assert op.input_bytes == inb
        assert op.output_bytes == outb
        assert op.applications == apps

    def test_exactly_seven_operations(self):
        assert len(PIM_OPS) == 7

    def test_registry_keyed_by_mnemonic(self):
        for mnemonic, op in PIM_OPS.items():
            assert op.mnemonic == mnemonic

    def test_writers_also_read(self):
        for op in PIM_OPS.values():
            if op.writes:
                assert op.reads

    def test_every_case_study_workload_covered(self):
        apps = {a for op in PIM_OPS.values() for a in op.applications}
        assert apps == {"ATF", "BFS", "SP", "WCC", "PR", "HJ", "HG", "RP",
                        "SC", "SVM"}


class TestSingleCacheBlockRestriction:
    def test_operands_bounded_by_block(self):
        for op in PIM_OPS.values():
            assert op.input_bytes <= 64
            assert op.output_bytes <= 64

    def test_constructor_enforces_bound(self):
        with pytest.raises(ValueError):
            PimOp("too big", "pim.big", True, False, 128, 0, 1.0, ())

    def test_constructor_rejects_negative_operands(self):
        with pytest.raises(ValueError):
            PimOp("bad", "pim.bad", True, False, -1, 0, 1.0, ())

    def test_constructor_rejects_write_only(self):
        with pytest.raises(ValueError):
            PimOp("bad", "pim.bad", False, True, 0, 0, 1.0, ())


class TestReferenceSemantics:
    def test_increment(self):
        assert apply_rmw(INT_INCREMENT, 41, None) == 42

    def test_min_takes_smaller(self):
        assert apply_rmw(INT_MIN, 10, 3) == 3
        assert apply_rmw(INT_MIN, 3, 10) == 3
        assert apply_rmw(INT_MIN, 3, 3) == 3

    def test_fp_add(self):
        assert apply_rmw(FP_ADD, 1.5, 2.25) == pytest.approx(3.75)

    def test_reader_ops_rejected(self):
        with pytest.raises(ValueError):
            apply_rmw(HASH_PROBE, 0, 0)


class TestMisc:
    def test_is_writer(self):
        assert FP_ADD.is_writer
        assert not DOT_PRODUCT.is_writer

    def test_str_is_mnemonic(self):
        assert str(FP_ADD) == "pim.fadd"

    def test_frozen(self):
        with pytest.raises(Exception):
            FP_ADD.input_bytes = 16
