"""Eviction-cascade and writeback-path tests for the cache hierarchy."""

import pytest

from repro.cache.hierarchy import L1, L2, L3, MEMORY

from tests.cache.test_hierarchy import addr, make_hierarchy


class TestDirtyCascades:
    def test_dirty_l1_victim_lands_dirty_in_l2(self):
        h, _ = make_hierarchy()
        h.access(0, addr(0), True, 0.0)  # dirty block 0 in L1
        h.access(0, addr(2), False, 10.0)
        h.access(0, addr(4), False, 20.0)  # evicts block 0 from L1
        assert not h.l1[0].contains(0)
        assert h.l2[0].is_dirty(0)

    def test_dirty_l2_victim_marks_l3_dirty(self):
        h, stats = make_hierarchy()
        # Fill L2 set 0 (4 sets, 2 ways): blocks 0, 4, 8 all map to set 0.
        h.access(0, addr(0), True, 0.0)
        h.access(0, addr(4), False, 10.0)
        h.access(0, addr(8), False, 20.0)  # L2 evicts one of them
        # Block 0's dirtiness must survive somewhere below L1.
        dirty_somewhere = (h.l1[0].is_dirty(0) or h.l2[0].is_dirty(0)
                           or h.l3.is_dirty(0))
        assert dirty_somewhere

    def test_dirty_data_never_lost_through_full_cascade(self):
        """After arbitrary evictions, a written block is either dirty on
        chip or has been written back to memory."""
        h, stats = make_hierarchy(l3_sets=1, l3_ways=2)
        h.access(0, addr(0), True, 0.0)
        # Push blocks through the 1-set L3 to force block 0 all the way out.
        for i in range(1, 6):
            h.access(0, addr(i), False, i * 100.0)
        if not h.present(0):
            assert stats["dram.writes"] >= 1

    def test_writeback_traffic_counted_once(self):
        h, stats = make_hierarchy(l3_sets=1, l3_ways=1)
        h.access(0, addr(0), True, 0.0)
        h.access(0, addr(1), False, 100.0)  # evicts dirty block 0
        assert stats["dram.writes"] == 1
        assert stats["l3.writebacks"] == 1


class TestSharedReadPath:
    def test_read_sharing_keeps_all_copies(self):
        h, _ = make_hierarchy()
        for core in range(4):
            h.access(core, addr(7), False, core * 50.0)
        for core in range(4):
            assert h.access(core, addr(7), False, 1000.0 + core).level == L1

    def test_sharer_set_tracks_cores(self):
        h, _ = make_hierarchy()
        h.access(0, addr(7), False, 0.0)
        h.access(2, addr(7), False, 10.0)
        assert h.sharers[7] == {0, 2}

    def test_sharer_removed_after_private_eviction(self):
        h, _ = make_hierarchy()
        h.access(0, addr(0), False, 0.0)
        # Push conflicting blocks through core 0's L1 and L2 set 0.
        for i in (4, 8, 12, 16, 20):
            h.access(0, addr(i), False, i * 10.0)
        if not (h.l1[0].contains(0) or h.l2[0].contains(0)):
            assert 0 not in h.sharers.get(0, set())


class TestLatencyOrdering:
    def test_levels_are_monotonically_slower(self):
        h, _ = make_hierarchy()
        h.access(0, addr(1), False, 0.0)
        l1 = h.access(0, addr(1), False, 1000.0)
        assert l1.level == L1
        h2, _ = make_hierarchy()
        h2.access(1, addr(1), False, 0.0)
        l3 = h2.access(0, addr(1), False, 1000.0)
        assert l3.level == L3
        h3, _ = make_hierarchy()
        mem = h3.access(0, addr(1), False, 1000.0)
        assert mem.level == MEMORY
        assert (l1.finish - 1000.0) < (l3.finish - 1000.0) < (mem.finish - 1000.0)
