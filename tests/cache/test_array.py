"""Unit and property tests for the set-associative tag array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.array import SetAssocArray


class TestGeometry:
    def test_from_geometry(self):
        array = SetAssocArray.from_geometry(64 * 1024, 16, 64)
        assert array.n_sets == 64
        assert array.n_ways == 16

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            SetAssocArray(3, 4)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            SetAssocArray(4, 0)


class TestBasicOperation:
    def test_miss_then_hit(self):
        array = SetAssocArray(4, 2)
        assert not array.lookup(10)
        array.insert(10)
        assert array.lookup(10)

    def test_lru_eviction(self):
        array = SetAssocArray(1, 2)
        array.insert(0)
        array.insert(1)
        victim = array.insert(2)
        assert victim == (0, False)  # oldest way evicted
        assert not array.contains(0)
        assert array.contains(1) and array.contains(2)

    def test_lookup_promotes(self):
        array = SetAssocArray(1, 2)
        array.insert(0)
        array.insert(1)
        array.lookup(0)  # promote 0 to MRU
        victim = array.insert(2)
        assert victim == (1, False)

    def test_lookup_without_promote(self):
        array = SetAssocArray(1, 2)
        array.insert(0)
        array.insert(1)
        array.lookup(0, promote=False)
        victim = array.insert(2)
        assert victim == (0, False)

    def test_contains_no_side_effects(self):
        array = SetAssocArray(1, 2)
        array.insert(0)
        array.insert(1)
        array.contains(0)  # must not promote
        victim = array.insert(2)
        assert victim == (0, False)

    def test_reinsert_promotes_and_keeps_dirty(self):
        array = SetAssocArray(1, 2)
        array.insert(0, dirty=True)
        array.insert(1)
        assert array.insert(0) is None  # already present
        assert array.is_dirty(0)  # dirtiness retained
        victim = array.insert(2)
        assert victim == (1, False)

    def test_sets_are_independent(self):
        array = SetAssocArray(2, 1)
        array.insert(0)  # set 0
        array.insert(1)  # set 1
        assert array.contains(0) and array.contains(1)


class TestDirtyTracking:
    def test_dirty_victim_reported(self):
        array = SetAssocArray(1, 1)
        array.insert(0, dirty=True)
        assert array.insert(1) == (0, True)

    def test_mark_and_clean(self):
        array = SetAssocArray(4, 2)
        array.insert(5)
        array.mark_dirty(5)
        assert array.is_dirty(5)
        array.mark_clean(5)
        assert not array.is_dirty(5)

    def test_mark_absent_is_noop(self):
        array = SetAssocArray(4, 2)
        array.mark_dirty(5)
        assert not array.contains(5)

    def test_remove_returns_dirty(self):
        array = SetAssocArray(4, 2)
        array.insert(5, dirty=True)
        assert array.remove(5) is True
        assert array.remove(5) is None


class TestStatistics:
    def test_hit_miss_counters(self):
        array = SetAssocArray(4, 2)
        array.lookup(1)
        array.insert(1)
        array.lookup(1)
        assert array.misses == 1
        assert array.hits == 1

    def test_occupancy(self):
        array = SetAssocArray(4, 2)
        assert array.occupancy() == 0
        array.insert(1)
        array.insert(2)
        assert array.occupancy() == 2

    def test_clear(self):
        array = SetAssocArray(4, 2)
        array.insert(1)
        array.clear()
        assert array.occupancy() == 0


class ReferenceLru:
    """Golden model: per-set list in LRU order."""

    def __init__(self, n_sets, n_ways):
        self.n_sets = n_sets
        self.n_ways = n_ways
        self.sets = [[] for _ in range(n_sets)]

    def touch(self, block):
        s = self.sets[block % self.n_sets]
        if block in s:
            s.remove(block)
            s.append(block)
            return True
        s.append(block)
        if len(s) > self.n_ways:
            s.pop(0)
        return False


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
def test_matches_reference_lru(blocks):
    """insert+lookup behaviour equals a straightforward LRU golden model."""
    array = SetAssocArray(4, 4)
    ref = ReferenceLru(4, 4)
    for block in blocks:
        ref_hit = ref.touch(block)
        model_hit = array.lookup(block)
        if not model_hit:
            array.insert(block)
        assert model_hit == ref_hit
    for s in range(4):
        for block in ref.sets[s]:
            assert array.contains(block)


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
def test_occupancy_never_exceeds_capacity(blocks):
    array = SetAssocArray(8, 2)
    for block in blocks:
        array.insert(block)
    assert array.occupancy() <= 8 * 2
    for line_set in array.sets:
        assert len(line_set) <= 2
