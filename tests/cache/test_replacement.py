"""Tests for the pluggable replacement policies of SetAssocArray."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.array import REPLACEMENT_POLICIES, SetAssocArray


class TestPolicySelection:
    def test_known_policies(self):
        for policy in REPLACEMENT_POLICIES:
            SetAssocArray(4, 2, policy=policy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            SetAssocArray(4, 2, policy="plru")

    def test_default_is_lru(self):
        assert SetAssocArray(4, 2).policy == "lru"


class TestFifo:
    def test_hit_does_not_promote(self):
        array = SetAssocArray(1, 2, policy="fifo")
        array.insert(0)
        array.insert(1)
        array.lookup(0)  # would save 0 under LRU
        victim = array.insert(2)
        assert victim == (0, False)  # FIFO still evicts the oldest insert

    def test_reinsert_does_not_refresh_age(self):
        array = SetAssocArray(1, 2, policy="fifo")
        array.insert(0)
        array.insert(1)
        array.insert(0)  # already present: age unchanged
        victim = array.insert(2)
        assert victim == (0, False)


class TestRandom:
    def test_eviction_deterministic_per_instance_sequence(self):
        def victims():
            array = SetAssocArray(1, 4, policy="random")
            out = []
            for block in range(12):
                victim = array.insert(block)
                if victim is not None:
                    out.append(victim[0])
            return out

        assert victims() == victims()

    def test_evicts_from_different_positions(self):
        # Unlike FIFO, random eviction sometimes removes a recent insert:
        # the victim stream is not simply the insertion order shifted.
        array = SetAssocArray(1, 4, policy="random")
        victims = []
        for block in range(50):
            victim = array.insert(block)
            if victim is not None:
                victims.append(victim[0])
        fifo_stream = list(range(50 - len(victims)))
        assert victims != fifo_stream
        assert array.occupancy() == 4

    def test_dirty_bit_travels_with_victim(self):
        array = SetAssocArray(1, 1, policy="random")
        array.insert(7, dirty=True)
        victim = array.insert(8)
        assert victim == (7, True)


@settings(max_examples=30)
@given(st.sampled_from(REPLACEMENT_POLICIES),
       st.lists(st.integers(0, 100), min_size=1, max_size=200))
def test_all_policies_respect_capacity(policy, blocks):
    array = SetAssocArray(4, 2, policy=policy)
    for block in blocks:
        if not array.lookup(block):
            array.insert(block)
    assert array.occupancy() <= 8
    for line_set in array.sets:
        assert len(line_set) <= 2


@settings(max_examples=30)
@given(st.sampled_from(REPLACEMENT_POLICIES),
       st.lists(st.integers(0, 30), min_size=1, max_size=100))
def test_most_recent_insert_always_resident(policy, blocks):
    array = SetAssocArray(2, 2, policy=policy)
    for block in blocks:
        array.insert(block)
    assert array.contains(blocks[-1])
