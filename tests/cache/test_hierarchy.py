"""Unit and property tests for the inclusive MESI-lite cache hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import L1, L2, L3, MEMORY, CacheHierarchy
from repro.mem.address_map import AddressMap
from repro.mem.dram import DramTimings
from repro.mem.hmc import HmcSystem
from repro.mem.link import OffChipChannel
from repro.sim.stats import Stats
from repro.system.config import SystemConfig
from repro.xbar.crossbar import Crossbar

N_CORES = 4


def make_hierarchy(l3_sets=16, l3_ways=2):
    stats = Stats()
    hmc = HmcSystem(
        AddressMap(n_hmcs=2, vaults_per_hmc=4, banks_per_vault=4),
        DramTimings.from_config(SystemConfig()),
        OffChipChannel(10.0, 10.0),
        tsv_bytes_per_cycle=4.0,
        stats=stats,
    )
    hierarchy = CacheHierarchy(
        n_cores=N_CORES,
        block_size=64,
        l1_sets=2, l1_ways=2,
        l2_sets=4, l2_ways=2,
        l3_sets=l3_sets, l3_ways=l3_ways,
        l1_latency=4, l2_latency=12, l3_latency=30,
        l3_banks=2, l3_bank_occupancy=2.0,
        crossbar=Crossbar(N_CORES + 2, 9.0, 6.0),
        hmc=hmc,
        stats=stats,
    )
    return hierarchy, stats


def addr(block):
    return block * 64


class TestBasicPath:
    def test_cold_miss_goes_to_memory(self):
        h, stats = make_hierarchy()
        result = h.access(0, addr(1), False, 0.0)
        assert result.level == MEMORY
        assert stats["dram.reads"] == 1

    def test_fill_creates_l1_hit(self):
        h, _ = make_hierarchy()
        h.access(0, addr(1), False, 0.0)
        result = h.access(0, addr(1), False, 100.0)
        assert result.level == L1
        assert result.finish - 100.0 == pytest.approx(4.0)

    def test_other_core_hits_l3(self):
        h, _ = make_hierarchy()
        h.access(0, addr(1), False, 0.0)
        result = h.access(1, addr(1), False, 1000.0)
        assert result.level == L3

    def test_l2_hit_after_l1_eviction(self):
        h, _ = make_hierarchy()
        # Fill L1 set 0 beyond capacity: blocks 0, 2, 4 share L1 set 0
        # (2 sets) but spread across L2's 4 sets, so the L1 victim
        # (block 0) survives in the L2.
        h.access(0, addr(0), False, 0.0)
        h.access(0, addr(2), False, 0.0)
        h.access(0, addr(4), False, 0.0)  # evicts block 0 from L1
        result = h.access(0, addr(0), False, 1000.0)
        assert result.level == L2

    def test_memory_latency_exceeds_l3(self):
        h, _ = make_hierarchy()
        miss = h.access(0, addr(1), False, 0.0)
        h2, _ = make_hierarchy()
        h2.access(0, addr(1), False, 0.0)
        l3_hit = h2.access(1, addr(1), False, 10000.0)
        assert (miss.finish - 0.0) > (l3_hit.finish - 10000.0)


class TestCoherence:
    def test_write_invalidates_other_sharers(self):
        h, stats = make_hierarchy()
        h.access(0, addr(1), False, 0.0)
        h.access(1, addr(1), False, 100.0)
        h.access(0, addr(1), True, 200.0)  # core 0 upgrades
        assert stats["coherence.invalidations"] >= 1
        # Core 1 must re-fetch (no L1/L2 hit possible).
        result = h.access(1, addr(1), False, 300.0)
        assert result.level == L3

    def test_dirty_copy_serviced_cache_to_cache(self):
        h, stats = make_hierarchy()
        h.access(0, addr(1), True, 0.0)  # core 0 owns dirty
        result = h.access(1, addr(1), False, 1000.0)
        assert result.level == L3
        assert stats["coherence.cache_to_cache"] == 1

    def test_read_leaves_previous_owner_clean_copy(self):
        h, _ = make_hierarchy()
        h.access(0, addr(1), True, 0.0)
        h.access(1, addr(1), False, 1000.0)
        # Core 0 still hits L1 (downgraded to shared/clean).
        assert h.access(0, addr(1), False, 2000.0).level == L1
        assert not h.l1[0].is_dirty(1)

    def test_write_after_remote_dirty_invalidates_owner(self):
        h, _ = make_hierarchy()
        h.access(0, addr(1), True, 0.0)
        h.access(1, addr(1), True, 1000.0)
        assert h.owner.get(1) == 1
        assert not h.l1[0].contains(1)

    def test_single_writer_invariant_after_writes(self):
        h, _ = make_hierarchy()
        for core in range(N_CORES):
            h.access(core, addr(7), True, core * 100.0)
        assert h.check_single_writer() == []


class TestInclusion:
    def test_l3_eviction_back_invalidates_privates(self):
        h, stats = make_hierarchy(l3_sets=1, l3_ways=2)
        h.access(0, addr(0), False, 0.0)
        h.access(0, addr(1), False, 100.0)
        h.access(0, addr(2), False, 200.0)  # L3 evicts block 0
        assert not h.l3.contains(0)
        assert not h.l1[0].contains(0)
        assert stats["coherence.back_invalidations"] >= 1
        assert h.check_inclusion() == []

    def test_dirty_l3_victim_written_back(self):
        h, stats = make_hierarchy(l3_sets=1, l3_ways=2)
        h.access(0, addr(0), True, 0.0)
        h.access(1, addr(1), False, 100.0)
        h.access(2, addr(2), False, 200.0)  # evicts dirty block 0
        assert stats["dram.writes"] >= 1


class TestFlushBlock:
    def test_flush_absent_block_is_free(self):
        h, _ = make_hierarchy()
        ready, wrote = h.flush_block(99, invalidate=True, time=10.0)
        assert ready == 10.0
        assert wrote is False

    def test_back_invalidation_removes_everywhere(self):
        h, stats = make_hierarchy()
        h.access(0, addr(1), True, 0.0)
        ready, wrote = h.flush_block(1, invalidate=True, time=100.0)
        assert wrote is True  # dirty data had to reach memory
        assert ready > 100.0
        assert not h.present(1)
        assert stats["pmu.back_invalidations"] == 1

    def test_back_writeback_keeps_clean_copies(self):
        h, stats = make_hierarchy()
        h.access(0, addr(1), True, 0.0)
        ready, wrote = h.flush_block(1, invalidate=False, time=100.0)
        assert wrote is True
        assert h.present(1)
        assert h.l1[0].contains(1)
        assert not h.l1[0].is_dirty(1)
        assert stats["pmu.back_writebacks"] == 1

    def test_clean_flush_writes_nothing(self):
        h, stats = make_hierarchy()
        h.access(0, addr(1), False, 0.0)
        _, wrote = h.flush_block(1, invalidate=False, time=100.0)
        assert wrote is False
        assert stats["dram.writes"] == 0

    def test_after_invalidate_next_access_misses(self):
        h, _ = make_hierarchy()
        h.access(0, addr(1), False, 0.0)
        h.flush_block(1, invalidate=True, time=100.0)
        assert h.access(0, addr(1), False, 200.0).level == MEMORY


class TestObserver:
    def test_l3_observer_sees_l3_accesses_only(self):
        h, _ = make_hierarchy()
        seen = []
        h.l3_observer = seen.append
        h.access(0, addr(1), False, 0.0)  # L3 (miss) access
        h.access(0, addr(1), False, 10.0)  # L1 hit: not seen
        assert seen == [1]


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, N_CORES - 1), st.integers(0, 40), st.booleans()),
    min_size=1, max_size=150,
))
def test_invariants_hold_under_random_traffic(ops):
    """Inclusion and single-writer hold after any access sequence."""
    h, _ = make_hierarchy(l3_sets=4, l3_ways=2)
    t = 0.0
    for core, block, is_write in ops:
        h.access(core, addr(block), is_write, t)
        t += 10.0
    assert h.check_inclusion() == []
    assert h.check_single_writer() == []


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, N_CORES - 1), st.integers(0, 40),
              st.booleans(), st.booleans()),
    min_size=1, max_size=100,
))
def test_invariants_hold_with_interleaved_flushes(ops):
    """flush_block (back-inval/back-writeback) never breaks the invariants."""
    h, _ = make_hierarchy(l3_sets=4, l3_ways=2)
    t = 0.0
    for core, block, is_write, flush in ops:
        if flush:
            h.flush_block(block, invalidate=is_write, time=t)
            if is_write:
                assert not h.present(block)
        else:
            h.access(core, addr(block), is_write, t)
        t += 10.0
    assert h.check_inclusion() == []
    assert h.check_single_writer() == []
