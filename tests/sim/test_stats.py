"""Tests for the statistics registry."""

from repro.sim.stats import Stats


class TestStats:
    def test_default_zero(self):
        stats = Stats()
        assert stats["anything"] == 0.0
        assert stats.get("other", 5.0) == 5.0

    def test_add(self):
        stats = Stats()
        stats.add("x")
        stats.add("x", 2.5)
        assert stats["x"] == 3.5

    def test_set_overwrites(self):
        stats = Stats()
        stats.add("x", 10)
        stats.set("x", 3)
        assert stats["x"] == 3

    def test_contains(self):
        stats = Stats()
        assert "x" not in stats
        stats.add("x")
        assert "x" in stats

    def test_merge(self):
        a, b = Stats(), Stats()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a["x"] == 3
        assert a["y"] == 3

    def test_scaled(self):
        stats = Stats()
        stats.add("x", 4)
        doubled = stats.scaled(2.0)
        assert doubled["x"] == 8
        assert stats["x"] == 4  # original untouched

    def test_items_sorted(self):
        stats = Stats()
        stats.add("b")
        stats.add("a")
        assert [k for k, _ in stats.items()] == ["a", "b"]

    def test_to_dict_and_clear(self):
        stats = Stats()
        stats.add("x", 1)
        assert stats.to_dict() == {"x": 1}
        stats.clear()
        assert stats.to_dict() == {}


class TestGauges:
    """Regression tests for the gauge-summed-on-merge hazard.

    ``runtime.cycles`` and the link byte totals are written through
    ``set()`` at collection time; summing them across per-core Stats (or
    scaling them with per-thread event counts) fabricates runtime/work
    that never happened.
    """

    def test_set_marks_gauge(self):
        stats = Stats()
        stats.add("events", 3)
        stats.set("runtime.cycles", 100.0)
        assert stats.is_gauge("runtime.cycles")
        assert not stats.is_gauge("events")
        assert stats.gauge_names == frozenset({"runtime.cycles"})

    def test_merge_takes_max_of_gauges(self):
        a, b = Stats(), Stats()
        a.set("runtime.cycles", 100.0)
        b.set("runtime.cycles", 250.0)
        a.merge(b)
        assert a["runtime.cycles"] == 250.0  # not 350

    def test_merge_gauge_on_either_side_suffices(self):
        # The receiving side never called set(): the incoming gauge mark
        # must still prevent summation (and propagate).
        a, b = Stats(), Stats()
        a.add("runtime.cycles", 100.0)
        b.set("runtime.cycles", 80.0)
        a.merge(b)
        assert a["runtime.cycles"] == 100.0
        assert a.is_gauge("runtime.cycles")

    def test_merge_still_sums_counters(self):
        a, b = Stats(), Stats()
        a.add("events", 2)
        b.add("events", 3)
        a.set("runtime.cycles", 10.0)
        b.set("runtime.cycles", 20.0)
        a.merge(b)
        assert a["events"] == 5.0
        assert a["runtime.cycles"] == 20.0

    def test_scaled_copies_gauges_unscaled(self):
        stats = Stats()
        stats.add("events", 4)
        stats.set("runtime.cycles", 100.0)
        half = stats.scaled(0.5)
        assert half["events"] == 2.0
        assert half["runtime.cycles"] == 100.0  # runtime is not halved
        assert half.is_gauge("runtime.cycles")

    def test_clear_resets_gauge_marks(self):
        stats = Stats()
        stats.set("runtime.cycles", 100.0)
        stats.clear()
        assert not stats.is_gauge("runtime.cycles")
        stats.add("runtime.cycles", 1.0)
        other = Stats()
        other.add("runtime.cycles", 2.0)
        stats.merge(other)
        assert stats["runtime.cycles"] == 3.0  # back to counter semantics
