"""Tests for the statistics registry."""

from repro.sim.stats import Stats


class TestStats:
    def test_default_zero(self):
        stats = Stats()
        assert stats["anything"] == 0.0
        assert stats.get("other", 5.0) == 5.0

    def test_add(self):
        stats = Stats()
        stats.add("x")
        stats.add("x", 2.5)
        assert stats["x"] == 3.5

    def test_set_overwrites(self):
        stats = Stats()
        stats.add("x", 10)
        stats.set("x", 3)
        assert stats["x"] == 3

    def test_contains(self):
        stats = Stats()
        assert "x" not in stats
        stats.add("x")
        assert "x" in stats

    def test_merge(self):
        a, b = Stats(), Stats()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a["x"] == 3
        assert a["y"] == 3

    def test_scaled(self):
        stats = Stats()
        stats.add("x", 4)
        doubled = stats.scaled(2.0)
        assert doubled["x"] == 8
        assert stats["x"] == 4  # original untouched

    def test_items_sorted(self):
        stats = Stats()
        stats.add("b")
        stats.add("a")
        assert [k for k, _ in stats.items()] == ["a", "b"]

    def test_to_dict_and_clear(self):
        stats = Stats()
        stats.add("x", 1)
        assert stats.to_dict() == {"x": 1}
        stats.clear()
        assert stats.to_dict() == {}
