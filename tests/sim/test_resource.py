"""Tests for the fluid-backlog resource model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.resource import BandwidthLink, BankedResource, Resource


class TestResource:
    def test_idle_starts_immediately(self):
        r = Resource()
        assert r.acquire(10.0, 5.0) == 10.0

    def test_back_to_back_queues(self):
        r = Resource()
        assert r.acquire(0.0, 5.0) == 0.0
        # Second arrival at the same instant waits for the first.
        assert r.acquire(0.0, 5.0) == 5.0

    def test_backlog_drains_with_time(self):
        r = Resource()
        r.acquire(0.0, 5.0)
        # Arriving after the backlog drained: no queueing.
        assert r.acquire(10.0, 5.0) == 10.0

    def test_partial_drain(self):
        r = Resource()
        r.acquire(0.0, 10.0)
        # At t=4, six cycles of backlog remain.
        assert r.acquire(4.0, 1.0) == pytest.approx(10.0)

    def test_out_of_order_arrival_not_blocked_by_future(self):
        # The motivating property: a far-future acquisition must not delay
        # earlier requests by a phantom reservation.
        r = Resource()
        r.acquire(100000.0, 2.0)
        start = r.acquire(100.0, 2.0)
        assert start < 1000.0

    def test_busy_accounting(self):
        r = Resource()
        r.acquire(0.0, 3.0)
        r.acquire(0.0, 4.0)
        assert r.busy_cycles == 7.0
        assert r.served == 2

    def test_utilization(self):
        r = Resource()
        r.acquire(0.0, 50.0)
        assert r.utilization(100.0) == pytest.approx(0.5)
        assert r.utilization(0.0) == 0.0
        assert r.utilization(10.0) == 1.0  # clamped

    def test_utilization_accumulates_across_acquires(self):
        r = Resource()
        r.acquire(0.0, 10.0)
        r.acquire(20.0, 30.0)
        assert r.utilization(100.0) == pytest.approx(0.4)
        assert r.utilization(-5.0) == 0.0  # degenerate horizon

    def test_utilization_idle_resource_is_zero(self):
        assert Resource().utilization(100.0) == 0.0

    def test_peek_does_not_mutate(self):
        r = Resource()
        r.acquire(0.0, 5.0)
        before = (r.clock, r.backlog)
        r.peek(1.0)
        assert (r.clock, r.backlog) == before

    def test_reset(self):
        r = Resource()
        r.acquire(0.0, 5.0)
        r.reset()
        assert r.acquire(0.0, 1.0) == 0.0
        assert r.busy_cycles == 1.0

    @given(st.lists(st.tuples(st.floats(0, 1e6), st.floats(0.1, 100)),
                    min_size=1, max_size=50))
    def test_monotone_arrivals_match_fcfs_queue(self, events):
        """For time-ordered arrivals the model is an exact FCFS queue."""
        events = sorted(events, key=lambda e: e[0])
        r = Resource()
        next_free = 0.0
        for arrival, occ in events:
            start = r.acquire(arrival, occ)
            expected = max(arrival, next_free)
            assert start == pytest.approx(expected, rel=1e-9, abs=1e-6)
            next_free = expected + occ

    @given(st.lists(st.tuples(st.floats(0, 1e5), st.floats(0.1, 50)),
                    min_size=1, max_size=50))
    def test_start_never_before_arrival(self, events):
        r = Resource()
        for arrival, occ in events:
            assert r.acquire(arrival, occ) >= arrival


class TestBandwidthLink:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            BandwidthLink("bad", 0)

    def test_transfer_time(self):
        link = BandwidthLink("l", 10.0)
        assert link.transfer(0.0, 100) == pytest.approx(10.0)

    def test_serialization(self):
        link = BandwidthLink("l", 10.0)
        link.transfer(0.0, 100)
        assert link.transfer(0.0, 100) == pytest.approx(20.0)

    def test_byte_accounting(self):
        link = BandwidthLink("l", 10.0)
        link.transfer(0.0, 100)
        link.transfer(50.0, 20)
        assert link.bytes_transferred == 120

    def test_reset_clears_bytes(self):
        link = BandwidthLink("l", 10.0)
        link.transfer(0.0, 100)
        link.reset()
        assert link.bytes_transferred == 0

    def test_zero_byte_transfer(self):
        link = BandwidthLink("l", 10.0)
        assert link.transfer(5.0, 0) == 5.0
        assert link.bytes_transferred == 0
        assert link.busy_cycles == 0.0

    def test_byte_accounting_independent_of_queueing(self):
        # Bytes count what was *sent*, regardless of when the link could
        # actually serve the transfer.
        link = BandwidthLink("l", 1.0)
        link.transfer(0.0, 50)
        finish = link.transfer(0.0, 30)  # queues behind the first transfer
        assert finish == pytest.approx(80.0)
        assert link.bytes_transferred == 80

    def test_utilization_matches_bytes_over_rate(self):
        link = BandwidthLink("l", 4.0)
        link.transfer(0.0, 100)
        link.transfer(10.0, 60)
        elapsed = 100.0
        expected = (160 / 4.0) / elapsed
        assert link.utilization(elapsed) == pytest.approx(expected)


class TestBankedResource:
    def test_bank_selection_wraps(self):
        banks = BankedResource("b", 4)
        banks.acquire(0, 0.0, 10.0)
        # Index 4 maps back to bank 0 and queues behind the first request.
        assert banks.acquire(4, 0.0, 10.0) == pytest.approx(10.0)
        # A different bank is free.
        assert banks.acquire(1, 0.0, 10.0) == 0.0

    def test_len(self):
        assert len(BankedResource("b", 8)) == 8

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BankedResource("b", 0)
