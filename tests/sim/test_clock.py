"""Tests for clock-domain conversion."""

import pytest

from repro.sim.clock import ClockDomain


class TestClockDomain:
    def test_same_domain_identity(self):
        clock = ClockDomain(4.0, 4.0)
        assert clock.cycles(10) == 10

    def test_slower_domain_scales_up(self):
        # 2 GHz device cycles are twice as long in 4 GHz host cycles.
        clock = ClockDomain(2.0, 4.0)
        assert clock.cycles(10) == 20

    def test_ns_conversion(self):
        clock = ClockDomain(1.0, 4.0)
        assert clock.from_ns(13.75) == pytest.approx(55.0)

    def test_bandwidth_conversion(self):
        clock = ClockDomain(1.0, 4.0)
        # 40 GB/s at 4 GHz = 10 bytes per host cycle.
        assert clock.bytes_per_host_cycle(40.0) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ClockDomain(0.0)
        with pytest.raises(ValueError):
            ClockDomain(1.0, -4.0)

    def test_repr(self):
        assert "2.0" in repr(ClockDomain(2.0))
