"""Tests for ``python -m repro.analysis determinism`` (replay fidelity)."""

from repro.analysis.__main__ import _fingerprint, main


class _FakeResult:
    def __init__(self, cycles=123.5):
        self.cycles = cycles
        self.instructions = 10
        self.per_core_instructions = [5, 5]
        self.stats = {"l1.hits": 4.0}


class _FakeTracer:
    def __init__(self, events=("e",), dropped=0):
        self.events = list(events)
        self.dropped = dropped


class TestFingerprint:
    def test_identical_runs_match(self):
        assert _fingerprint(_FakeResult(), _FakeTracer()) == \
            _fingerprint(_FakeResult(), _FakeTracer())

    def test_bit_level_float_drift_is_caught(self):
        drifted = _FakeResult(cycles=123.5 + 1e-12)
        assert _fingerprint(_FakeResult(), _FakeTracer()) != \
            _fingerprint(drifted, _FakeTracer())

    def test_event_stream_is_part_of_the_fingerprint(self):
        a = _fingerprint(_FakeResult(), _FakeTracer(events=("e1",)))
        b = _fingerprint(_FakeResult(), _FakeTracer(events=("e2",)))
        assert a != b


class TestCli:
    def test_small_run_is_replayable(self, capsys):
        status = main(["determinism", "-w", "PR", "-p", "locality-aware",
                       "--ops", "300"])
        out = capsys.readouterr().out
        assert status == 0
        assert "identical" in out and "replayable" in out

    def test_unknown_workload_is_a_usage_error(self, capsys):
        status = main(["determinism", "-w", "NOPE", "--ops", "10"])
        assert status == 2
