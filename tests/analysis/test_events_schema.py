"""Tests for the run-ledger event-stream schema checker."""

import json

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.telemetry import check_bundle_dir, check_events_jsonl
from repro.obs.events import EVENT_SCHEMA, RunLedger, worker_event


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def write_ledger(path):
    clock = FakeClock()
    ledger = RunLedger(clock=clock)
    clock.now = 0.1
    ledger.emit("request_planned", fingerprint="ab12", label="HG/host")
    clock.now = 0.2
    ledger.emit("cache_miss", fingerprint="ab12")
    clock.now = 0.9
    ledger.absorb([
        worker_event("simulate_start", fingerprint="ab12", worker=7),
        worker_event("simulate_end", fingerprint="ab12", worker=7,
                     dur_s=0.5, cycles=100.0, instructions=50)])
    return ledger.write_jsonl(path)


def rewrite(path, mutate):
    events = [json.loads(line) for line in
              path.read_text().splitlines() if line.strip()]
    mutate(events)
    path.write_text("".join(json.dumps(e) + "\n" for e in events))


class TestCheckEventsJsonl:
    def test_real_ledger_is_clean(self, tmp_path):
        path = write_ledger(tmp_path / "EVENTS_x.jsonl")
        assert check_events_jsonl(path) == []

    def test_empty_stream_is_a_problem(self, tmp_path):
        path = tmp_path / "EVENTS_x.jsonl"
        path.write_text("")
        assert any("empty" in p for p in check_events_jsonl(path))

    def test_torn_line_anywhere_is_a_problem(self, tmp_path):
        path = write_ledger(tmp_path / "EVENTS_x.jsonl")
        path.write_text(path.read_text() + '{"seq": 99, "t"')
        assert any("torn" in p for p in check_events_jsonl(path))

    def test_missing_header_is_a_problem(self, tmp_path):
        path = write_ledger(tmp_path / "EVENTS_x.jsonl")
        rewrite(path, lambda events: events.pop(0))
        assert any("ledger_start" in p for p in check_events_jsonl(path))

    def test_unknown_schema_version_diagnosed(self, tmp_path):
        path = write_ledger(tmp_path / "EVENTS_x.jsonl")

        def bump(events):
            events[0]["schema"] = "repro.obs.events/999"
        rewrite(path, bump)
        problems = check_events_jsonl(path)
        assert any("unknown ledger schema" in p and EVENT_SCHEMA in p
                   for p in problems)

    def test_unknown_kind_diagnosed(self, tmp_path):
        path = write_ledger(tmp_path / "EVENTS_x.jsonl")

        def rename(events):
            events[1]["kind"] = "request_imagined"
        rewrite(path, rename)
        assert any("unknown event kind 'request_imagined'" in p
                   for p in check_events_jsonl(path))

    def test_missing_required_field_diagnosed(self, tmp_path):
        path = write_ledger(tmp_path / "EVENTS_x.jsonl")

        def strip(events):
            del events[4]["dur_s"]   # simulate_end
        rewrite(path, strip)
        assert any("simulate_end event missing required field 'dur_s'" in p
                   for p in check_events_jsonl(path))

    def test_non_contiguous_seq_diagnosed(self, tmp_path):
        path = write_ledger(tmp_path / "EVENTS_x.jsonl")

        def skip(events):
            events[2]["seq"] = 7
        rewrite(path, skip)
        assert any("contiguous" in p for p in check_events_jsonl(path))

    def test_decreasing_time_diagnosed(self, tmp_path):
        path = write_ledger(tmp_path / "EVENTS_x.jsonl")

        def rewind(events):
            events[3]["t"] = -1.0
        rewrite(path, rewind)
        assert any("non-decreasing" in p for p in check_events_jsonl(path))

    def test_negative_duration_diagnosed(self, tmp_path):
        path = write_ledger(tmp_path / "EVENTS_x.jsonl")

        def negate(events):
            events[4]["dur_s"] = -0.5
        rewrite(path, negate)
        assert any("dur_s" in p for p in check_events_jsonl(path))


class TestDirectoryAndCli:
    def test_bundle_dir_picks_up_event_streams(self, tmp_path):
        write_ledger(tmp_path / "EVENTS_a.jsonl")
        write_ledger(tmp_path / "run.events.jsonl")
        results = check_bundle_dir(tmp_path)
        assert len(results) == 2
        assert all(problems == [] for problems in results.values())

    def test_cli_accepts_both_event_namings(self, tmp_path, capsys):
        a = write_ledger(tmp_path / "EVENTS_a.jsonl")
        b = write_ledger(tmp_path / "run.events.jsonl")
        assert analysis_main(["telemetry", str(a), str(b)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_fails_on_torn_stream(self, tmp_path, capsys):
        path = write_ledger(tmp_path / "EVENTS_a.jsonl")
        path.write_text(path.read_text() + '{"torn')
        assert analysis_main(["telemetry", str(path)]) == 1
        assert "torn" in capsys.readouterr().out
