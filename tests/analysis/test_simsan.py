"""Injected-fault tests for every simsan protocol check.

Each test hand-builds a short PEI/pfence event stream that violates exactly
one Section 4.3 invariant and asserts the matching SAN code fires exactly
once.  A final set of tests feeds protocol-conforming streams (and a real
simulated run, in the integration suite) and asserts the sanitizer stays
quiet.
"""

import pytest

from repro.analysis.simsan import CHECKS, sanitize_events, sanitize_tracer
from repro.core.tracer import FenceTrace, PeiTrace, PeiTracer

# Mnemonics from the ISA registry (Table 1): pim.inc is a no-output writer,
# pim.probe is a reader with output, pim.dot a reader with output.
WRITER = "pim.inc"
READER = "pim.probe"


def host_pei(core=0, op=WRITER, block=0x40, issue=0.0, grant=None,
             completion=None, decision=None):
    """A host-side PEI (no back-invalidation record)."""
    grant = issue if grant is None else grant
    completion = grant + 10.0 if completion is None else completion
    return PeiTrace(core=core, op=op, block=block, on_host=True,
                    issue_time=issue, grant_time=grant, completion=completion,
                    decision_time=decision)


def mem_pei(core=0, op=WRITER, block=0x40, issue=0.0, grant=None,
            completion=None, clean=None, clean_invalidate="auto"):
    """A memory-side PEI with a (by default correct) coherence record."""
    grant = issue if grant is None else grant
    completion = grant + 50.0 if completion is None else completion
    clean = grant if clean is None else clean
    if clean_invalidate == "auto":
        clean_invalidate = op == WRITER
    return PeiTrace(core=core, op=op, block=block, on_host=False,
                    issue_time=issue, grant_time=grant, completion=completion,
                    decision_time=issue, clean_time=clean,
                    clean_invalidate=clean_invalidate)


def codes(report):
    return [v.code for v in report.violations]


class TestWriterExclusion:
    def test_overlapping_writers_fire_san001(self):
        first = mem_pei(issue=0.0, grant=0.0, completion=100.0)
        second = mem_pei(core=1, issue=10.0, grant=50.0, completion=150.0)
        report = sanitize_events([first, second])
        assert codes(report) == ["SAN001"]
        assert report.violations[0].events == (first, second)

    def test_serialized_writers_are_clean(self):
        report = sanitize_events([
            mem_pei(issue=0.0, grant=0.0, completion=100.0),
            mem_pei(core=1, issue=10.0, grant=100.0, completion=200.0),
        ])
        assert report.ok

    def test_different_blocks_never_conflict(self):
        report = sanitize_events([
            mem_pei(block=0x40, issue=0.0, grant=0.0, completion=100.0),
            mem_pei(block=0x80, core=1, issue=0.0, grant=0.0, completion=100.0),
        ])
        assert report.ok


class TestReaderWriterOrdering:
    def test_reader_overlapping_writer_fires_san002(self):
        report = sanitize_events([
            mem_pei(op=WRITER, issue=0.0, grant=0.0, completion=100.0),
            mem_pei(op=READER, core=1, issue=10.0, grant=50.0, completion=120.0),
        ])
        assert codes(report) == ["SAN002"]

    def test_writer_overlapping_reader_fires_san002(self):
        report = sanitize_events([
            mem_pei(op=READER, issue=0.0, grant=0.0, completion=100.0),
            mem_pei(op=WRITER, core=1, issue=10.0, grant=50.0, completion=200.0),
        ])
        assert codes(report) == ["SAN002"]

    def test_concurrent_readers_are_clean(self):
        report = sanitize_events([
            mem_pei(op=READER, core=c, issue=0.0, grant=0.0, completion=100.0)
            for c in range(4)
        ])
        assert report.ok


class TestCoherenceActions:
    def test_missing_back_invalidation_fires_san003(self):
        trace = PeiTrace(core=0, op=WRITER, block=0x40, on_host=False,
                         issue_time=0.0, grant_time=0.0, completion=50.0)
        report = sanitize_events([trace])
        assert codes(report) == ["SAN003"]

    def test_wrong_action_for_writer_fires_san003(self):
        # Writer PEI recorded with a back-writeback instead of invalidation.
        report = sanitize_events([mem_pei(op=WRITER, clean_invalidate=False)])
        assert codes(report) == ["SAN003"]

    def test_clean_outside_pei_window_fires_san003(self):
        report = sanitize_events([
            mem_pei(issue=10.0, grant=10.0, completion=60.0, clean=5.0)])
        assert codes(report) == ["SAN003"]

    def test_host_pei_with_clean_record_fires_san003(self):
        bogus = PeiTrace(core=0, op=WRITER, block=0x40, on_host=True,
                         issue_time=0.0, grant_time=0.0, completion=10.0,
                         clean_time=5.0, clean_invalidate=True)
        report = sanitize_events([bogus])
        assert codes(report) == ["SAN003"]

    def test_correct_actions_are_clean(self):
        report = sanitize_events([
            mem_pei(op=WRITER, issue=0.0, grant=0.0, completion=50.0),
            mem_pei(op=READER, issue=60.0, grant=60.0, completion=110.0),
            host_pei(issue=120.0),
        ])
        assert report.ok


class TestMonotonicity:
    def test_grant_before_issue_fires_san004(self):
        report = sanitize_events([host_pei(issue=10.0, grant=5.0)])
        assert codes(report) == ["SAN004"]

    def test_completion_before_grant_fires_san004(self):
        report = sanitize_events([
            host_pei(issue=0.0, grant=10.0, completion=5.0)])
        assert codes(report) == ["SAN004"]

    def test_decision_out_of_order_fires_san004(self):
        report = sanitize_events([
            host_pei(issue=10.0, grant=10.0, decision=5.0)])
        assert codes(report) == ["SAN004"]

    def test_fence_releasing_before_issue_fires_san004(self):
        report = sanitize_events([
            FenceTrace(core=0, issue_time=10.0, release_time=5.0)])
        assert codes(report) == ["SAN004"]


class TestFenceHorizon:
    def test_fence_ignoring_writer_fires_san005(self):
        writer = host_pei(issue=0.0, grant=0.0, completion=100.0)
        fence = FenceTrace(core=0, issue_time=10.0, release_time=20.0)
        report = sanitize_events([writer, fence])
        assert codes(report) == ["SAN005"]
        assert report.violations[0].events == (writer, fence)

    def test_fence_covering_writers_is_clean(self):
        report = sanitize_events([
            host_pei(issue=0.0, grant=0.0, completion=100.0),
            FenceTrace(core=0, issue_time=10.0, release_time=100.0),
        ])
        assert report.ok

    def test_readers_do_not_constrain_fences(self):
        # pfence waits for writers only (Section 3.2).
        report = sanitize_events([
            host_pei(op=READER, issue=0.0, grant=0.0, completion=100.0),
            FenceTrace(core=0, issue_time=10.0, release_time=10.0),
        ])
        assert report.ok

    def test_fences_counted(self):
        report = sanitize_events([
            FenceTrace(core=0, issue_time=0.0, release_time=0.0)])
        assert report.ok and report.fences_checked == 1


class TestOperandBufferCapacity:
    def test_over_capacity_fires_san006(self):
        # Three host PEIs in flight on one core with a two-entry buffer.
        stream = [host_pei(block=0x40 * (i + 1), issue=float(i),
                           completion=100.0 + i) for i in range(3)]
        report = sanitize_events(stream, operand_buffer_entries=2)
        assert codes(report) == ["SAN006"]
        assert len(report.violations[0].events) == 3

    def test_within_capacity_is_clean(self):
        stream = [host_pei(block=0x40 * (i + 1), issue=float(i),
                           completion=100.0 + i) for i in range(3)]
        assert sanitize_events(stream, operand_buffer_entries=4).ok

    def test_completed_entries_are_reusable(self):
        # Sequential PEIs never exceed a single entry.
        stream = [host_pei(block=0x40 * (i + 1), issue=i * 20.0,
                           completion=i * 20.0 + 10.0) for i in range(8)]
        assert sanitize_events(stream, operand_buffer_entries=1).ok

    def test_offloaded_no_output_pei_frees_at_dispatch(self):
        # A memory-side no-output writer holds its host entry only until
        # grant; a burst of them never saturates the host buffer.
        stream = [mem_pei(block=0x40 * (i + 1), issue=float(i),
                          grant=float(i) + 0.5, completion=1000.0 + i)
                  for i in range(8)]
        assert sanitize_events(stream, operand_buffer_entries=2).ok

    def test_capacity_check_off_by_default(self):
        stream = [host_pei(block=0x40 * (i + 1), issue=float(i),
                           completion=100.0 + i) for i in range(8)]
        assert sanitize_events(stream).ok

    def test_cores_have_independent_buffers(self):
        stream = [host_pei(core=c, block=0x40 * (c + 1), issue=0.0,
                           completion=100.0) for c in range(4)]
        assert sanitize_events(stream, operand_buffer_entries=1).ok


class TestEntryExclusion:
    """SAN009: blocks 1 and 16 XOR-fold onto entry 1 of a 4-entry table."""

    def test_aliased_writers_overlapping_fire_san009(self):
        first = host_pei(block=1, issue=0.0, grant=0.0, completion=100.0)
        second = host_pei(core=1, block=16, issue=10.0, grant=50.0,
                          completion=150.0)
        report = sanitize_events([first, second], directory_entries=4)
        assert codes(report) == ["SAN009"]
        assert report.violations[0].events == (first, second)

    def test_reader_overlapping_aliased_writer_fires_san009(self):
        report = sanitize_events([
            host_pei(block=1, issue=0.0, grant=0.0, completion=100.0),
            host_pei(core=1, op=READER, block=16, issue=10.0, grant=50.0,
                     completion=150.0),
        ], directory_entries=4)
        assert codes(report) == ["SAN009"]

    def test_serialized_aliased_blocks_are_clean(self):
        report = sanitize_events([
            host_pei(block=1, issue=0.0, grant=0.0, completion=100.0),
            host_pei(core=1, block=16, issue=10.0, grant=100.0,
                     completion=200.0),
        ], directory_entries=4)
        assert report.ok

    def test_aliased_readers_may_share_the_entry(self):
        report = sanitize_events([
            host_pei(op=READER, block=1, issue=0.0, grant=0.0,
                     completion=100.0),
            host_pei(core=1, op=READER, block=16, issue=0.0, grant=0.0,
                     completion=100.0),
        ], directory_entries=4)
        assert report.ok

    def test_non_aliased_blocks_never_conflict(self):
        report = sanitize_events([
            host_pei(block=1, issue=0.0, grant=0.0, completion=100.0),
            host_pei(core=1, block=2, issue=0.0, grant=0.0, completion=100.0),
        ], directory_entries=4)
        assert report.ok

    def test_entry_checks_off_without_geometry(self):
        report = sanitize_events([
            host_pei(block=1, issue=0.0, grant=0.0, completion=100.0),
            host_pei(core=1, block=16, issue=10.0, grant=50.0,
                     completion=150.0),
        ])
        assert report.ok

    def test_non_power_of_two_entry_count_rejected(self):
        with pytest.raises(ValueError):
            sanitize_events([host_pei()], directory_entries=3)


class TestReaderCounterWidth:
    def test_over_width_readers_fire_san010(self):
        # A 1-bit counter holds a single reader; two in flight overflow it.
        report = sanitize_events([
            host_pei(op=READER, block=1, issue=0.0, grant=0.0,
                     completion=100.0),
            host_pei(core=1, op=READER, block=1, issue=5.0, grant=10.0,
                     completion=110.0),
        ], directory_entries=4, reader_counter_bits=1)
        assert codes(report) == ["SAN010"]
        assert len(report.violations[0].events) == 2

    def test_serialized_readers_fit_any_width(self):
        report = sanitize_events([
            host_pei(op=READER, block=1, issue=0.0, grant=0.0,
                     completion=100.0),
            host_pei(core=1, op=READER, block=1, issue=5.0, grant=100.0,
                     completion=200.0),
        ], directory_entries=4, reader_counter_bits=1)
        assert report.ok

    def test_default_width_admits_many_readers(self):
        report = sanitize_events([
            host_pei(core=c, op=READER, block=1, issue=0.0, grant=0.0,
                     completion=100.0)
            for c in range(8)
        ], directory_entries=4)
        assert report.ok


class TestTraceIntegrity:
    def test_dropped_events_fire_san007(self):
        report = sanitize_events([host_pei()], dropped=3)
        assert codes(report) == ["SAN007"]

    def test_unknown_mnemonic_fires_san008(self):
        bogus = PeiTrace(core=0, op="pim.bogus", block=0x40, on_host=True,
                         issue_time=0.0, grant_time=0.0, completion=10.0)
        report = sanitize_events([bogus])
        assert codes(report) == ["SAN008"]

    def test_sanitize_tracer_carries_dropped_count(self):
        tracer = PeiTracer(capacity=1)
        tracer.record(host_pei(issue=0.0))
        tracer.record(host_pei(issue=20.0))
        report = sanitize_tracer(tracer)
        assert codes(report) == ["SAN007"]


class TestReporting:
    def test_violation_str_includes_trace_slice(self):
        report = sanitize_events([host_pei(issue=10.0, grant=5.0)])
        text = str(report.violations[0])
        assert "SAN004" in text and "offending trace slice" in text
        assert "PeiTrace" in text

    def test_report_format(self):
        clean = sanitize_events([host_pei()])
        assert "clean" in clean.format()
        dirty = sanitize_events([host_pei(issue=10.0, grant=5.0)])
        assert "1 violation" in dirty.format()

    def test_checks_catalogue_matches_codes(self):
        assert set(CHECKS) == {f"SAN{i:03d}" for i in range(1, 11)}


class TestCleanStream:
    def test_mixed_protocol_conforming_stream(self):
        """A realistic interleaving with every event type stays clean."""
        events = [
            host_pei(core=0, op=READER, block=0x40, issue=0.0,
                     completion=20.0),
            mem_pei(core=1, op=WRITER, block=0x80, issue=0.0, grant=5.0,
                    completion=80.0),
            mem_pei(core=2, op=READER, block=0xc0, issue=1.0, grant=6.0,
                    completion=90.0),
            # Second writer of 0x80 waits for the first.
            mem_pei(core=3, op=WRITER, block=0x80, issue=10.0, grant=80.0,
                    completion=160.0),
            FenceTrace(core=1, issue_time=100.0, release_time=160.0),
            host_pei(core=1, op=WRITER, block=0x80, issue=160.0,
                     completion=170.0),
        ]
        report = sanitize_events(events, operand_buffer_entries=4)
        assert report.ok, report.format()
        assert report.peis_checked == 5
        assert report.fences_checked == 1
