"""Injected-fault tests for every simlint rule.

Each test writes a small source tree into ``tmp_path``, runs the linter on
it, and asserts the expected rule code fires exactly where expected — and
nowhere else.  The final test pins the acceptance criterion: the *real*
``src/repro`` tree lints clean.
"""

from pathlib import Path

import pytest

from repro.analysis.simlint import RULES, format_violations, lint_paths

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def lint_source(tmp_path, source, rel="mod.py", select=None):
    """Write one module into a tmp tree and lint it."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return lint_paths([tmp_path], select=select)


def codes(violations):
    return [v.code for v in violations]


class TestWallClock:
    def test_time_time_fires(self, tmp_path):
        out = lint_source(tmp_path, "import time\nstart = time.time()\n")
        assert codes(out) == ["SIM001"]
        assert out[0].line == 2

    def test_perf_counter_and_datetime_fire(self, tmp_path):
        out = lint_source(
            tmp_path,
            "import time\nfrom datetime import datetime\n"
            "a = time.perf_counter()\nb = datetime.now()\n",
        )
        assert codes(out) == ["SIM001", "SIM001"]

    def test_simulated_time_attribute_is_fine(self, tmp_path):
        out = lint_source(
            tmp_path,
            "def step(core):\n    core.time += 1.0\n    return core.time\n",
        )
        assert out == []


class TestUnseededRandomness:
    def test_bare_random_module_fires(self, tmp_path):
        out = lint_source(tmp_path, "import random\nx = random.random()\n")
        assert codes(out) == ["SIM002"]

    def test_np_default_rng_fires(self, tmp_path):
        out = lint_source(
            tmp_path, "import numpy as np\nrng = np.random.default_rng()\n")
        assert codes(out) == ["SIM002"]

    def test_make_rng_is_fine(self, tmp_path):
        out = lint_source(
            tmp_path,
            "from repro.util.rng import make_rng\nrng = make_rng(42, 'pr')\n"
            "x = rng.random()\n",
        )
        assert out == []

    def test_rng_module_itself_is_exempt(self, tmp_path):
        out = lint_source(
            tmp_path,
            "import numpy as np\n\ndef make_rng(seed):\n"
            "    return np.random.default_rng(seed)\n",
            rel="util/rng.py",
        )
        assert out == []


class TestTimestampEquality:
    def test_equality_on_time_names_fires(self, tmp_path):
        out = lint_source(
            tmp_path,
            "def check(a, b):\n    return a.grant_time == b.completion\n")
        assert codes(out) == ["SIM003"]

    def test_inequality_fires(self, tmp_path):
        out = lint_source(
            tmp_path, "def check(t):\n    return t.issue_time != 0.0\n")
        assert codes(out) == ["SIM003"]

    def test_ordering_comparison_is_fine(self, tmp_path):
        out = lint_source(
            tmp_path,
            "def check(a, b):\n    return a.grant_time <= b.completion\n")
        assert out == []

    def test_non_time_names_are_fine(self, tmp_path):
        out = lint_source(
            tmp_path, "def check(row, open_row):\n    return row == open_row\n")
        assert out == []


class TestDefaultArguments:
    def test_type_lying_none_default_fires(self, tmp_path):
        out = lint_source(
            tmp_path,
            "from repro.sim.stats import Stats\n\n"
            "def build(stats: Stats = None):\n    return stats\n",
        )
        assert codes(out) == ["SIM004"]

    def test_optional_default_is_fine(self, tmp_path):
        out = lint_source(
            tmp_path,
            "from typing import Optional\nfrom repro.sim.stats import Stats\n\n"
            "def build(stats: Optional[Stats] = None):\n    return stats\n",
        )
        assert out == []

    def test_pipe_none_annotation_is_fine(self, tmp_path):
        out = lint_source(
            tmp_path,
            "def build(stats: 'Stats | None' = None):\n    return stats\n")
        assert out == []

    def test_mutable_default_fires(self, tmp_path):
        out = lint_source(tmp_path, "def f(xs=[]):\n    return xs\n")
        assert codes(out) == ["SIM004"]

    def test_annotated_class_attribute_fires(self, tmp_path):
        out = lint_source(
            tmp_path,
            "class Workload:\n    def __init__(self):\n"
            "        self.space: AddressSpace = None\n",
        )
        assert codes(out) == ["SIM004"]


class TestRawUnitLiterals:
    def test_ns_default_fires(self, tmp_path):
        out = lint_source(
            tmp_path, "def from_ns(t_cl_ns: float = 13.75):\n    return t_cl_ns\n")
        assert codes(out) == ["SIM005"]

    def test_ghz_keyword_fires(self, tmp_path):
        out = lint_source(
            tmp_path,
            "def build(make_clock):\n    return make_clock(freq_ghz=2.0)\n")
        assert codes(out) == ["SIM005"]

    def test_assignment_fires(self, tmp_path):
        out = lint_source(tmp_path, "t_retrain_ns = 50.0\n")
        assert codes(out) == ["SIM005"]

    def test_parameter_tables_are_exempt(self, tmp_path):
        source = "core_freq_ghz: float = 4.0\ndram_t_cl_ns: float = 13.75\n"
        assert lint_source(tmp_path, source, rel="system/config.py") == []
        assert lint_source(tmp_path, source, rel="sim/clock.py") == []
        assert codes(lint_source(tmp_path, source, rel="mem/dram.py")) == [
            "SIM005", "SIM005"]

    def test_passing_config_value_is_fine(self, tmp_path):
        out = lint_source(
            tmp_path,
            "def build(config, make):\n"
            "    return make(t_cl_ns=config.dram_t_cl_ns)\n",
        )
        assert out == []


class TestIntrinsicRegistry:
    ISA = (
        "REGISTERED = object()\n"
        "ROGUE = object()\n"
        "PIM_OPS = {op.mnemonic: op for op in (REGISTERED,)}\n"
    )

    def write_pair(self, tmp_path, intrinsics):
        (tmp_path / "core").mkdir(parents=True, exist_ok=True)
        (tmp_path / "core" / "isa.py").write_text(self.ISA)
        (tmp_path / "core" / "intrinsics.py").write_text(intrinsics)
        return lint_paths([tmp_path])

    def test_registered_op_is_fine(self, tmp_path):
        out = self.write_pair(
            tmp_path,
            "from core.isa import REGISTERED\n\n"
            "def pim_inc(addr):\n    return Pei(REGISTERED, addr)\n",
        )
        assert out == []

    def test_unregistered_op_fires(self, tmp_path):
        out = self.write_pair(
            tmp_path,
            "from core.isa import ROGUE\n\n"
            "def pim_rogue(addr):\n    return Pei(ROGUE, addr)\n",
        )
        assert codes(out) == ["SIM006"]

    def test_intrinsic_without_pei_record_fires(self, tmp_path):
        out = self.write_pair(
            tmp_path, "def pim_nop(addr):\n    return None\n")
        assert codes(out) == ["SIM006"]


class TestStatsKeyRegistry:
    REGISTRY = (
        'CACHE_KEYS = (\n    "l1.hits",\n    "l1.accesses",\n)\n'
        'GAUGE_KEYS = ("tsv.bytes",)\n'
        'NOT_KEYS_LIST = ("never.declared",)\n'
    )

    def write_pair(self, tmp_path, consumer):
        (tmp_path / "sim").mkdir(parents=True, exist_ok=True)
        (tmp_path / "sim" / "stat_keys.py").write_text(self.REGISTRY)
        (tmp_path / "mod.py").write_text(consumer)
        return lint_paths([tmp_path])

    def test_declared_key_is_fine(self, tmp_path):
        out = self.write_pair(
            tmp_path,
            "def tick(self):\n"
            "    self.stats.add('l1.hits')\n"
            "    self.stats.set('tsv.bytes', 4.0)\n",
        )
        assert out == []

    def test_typoed_key_fires(self, tmp_path):
        out = self.write_pair(
            tmp_path, "def tick(stats):\n    stats.add('l1.hitz')\n")
        assert codes(out) == ["SIM007"]
        assert "l1.hitz" in out[0].message

    def test_only_keys_suffixed_groups_declare(self, tmp_path):
        # NOT_KEYS_LIST does not end in _KEYS, so its strings don't count.
        out = self.write_pair(
            tmp_path, "def tick(stats):\n    stats.add('never.declared')\n")
        assert codes(out) == ["SIM007"]

    def test_dynamic_key_is_skipped(self, tmp_path):
        out = self.write_pair(
            tmp_path,
            "def flush(stats, gauges):\n"
            "    for name, value in gauges.items():\n"
            "        stats.set(name, value)\n",
        )
        assert out == []

    def test_non_stats_receiver_is_skipped(self, tmp_path):
        out = self.write_pair(
            tmp_path, "def grow(self):\n    self.blocks.add('l1.hitz')\n")
        assert out == []

    def test_missing_registry_disables_rule(self, tmp_path):
        out = lint_source(
            tmp_path, "def tick(stats):\n    stats.add('anything.goes')\n")
        assert out == []


class TestHotLoopStats:
    def test_stats_add_in_hot_module_fires(self, tmp_path):
        out = lint_source(
            tmp_path,
            "def access(self, block):\n    self.stats.add('cache.hits')\n",
            rel="core/executor.py")
        assert codes(out) == ["SIM009"]
        assert out[0].line == 2

    def test_bare_stats_name_fires(self, tmp_path):
        out = lint_source(
            tmp_path, "def tick(stats):\n    stats.add('x', 2.0)\n",
            rel="cache/hierarchy.py")
        assert codes(out) == ["SIM009"]

    def test_cold_module_is_fine(self, tmp_path):
        out = lint_source(
            tmp_path,
            "def report(self):\n    self.stats.add('bench.runs')\n",
            rel="bench/runner.py")
        assert out == []

    def test_stats_set_is_fine(self, tmp_path):
        # One-shot summary writes at end of run are not per-event cost.
        out = lint_source(
            tmp_path,
            "def finish(self):\n    self.stats.set('run.cycles', 1.0)\n",
            rel="system/system.py")
        assert out == []

    def test_slot_fast_path_is_fine(self, tmp_path):
        out = lint_source(
            tmp_path,
            "def access(self):\n    self._slots[KEY] += 1.0\n",
            rel="core/pmu.py")
        assert out == []

    def test_waiver_applies(self, tmp_path):
        out = lint_source(
            tmp_path,
            "def rare(self):\n"
            "    self.stats.add('cold.path')"
            "  # simlint: ignore[SIM009] -- once per run, not per op\n",
            rel="mem/hmc.py")
        assert out == []


class TestWaivers:
    def test_justified_waiver_suppresses(self, tmp_path):
        out = lint_source(
            tmp_path,
            "t_retrain_ns = 50.0  # simlint: ignore[SIM005] -- vendor-quoted\n")
        assert out == []

    def test_standalone_waiver_covers_next_line(self, tmp_path):
        out = lint_source(
            tmp_path,
            "# simlint: ignore[SIM005] -- vendor-quoted retrain time\n"
            "t_retrain_ns = 50.0\n",
        )
        assert out == []

    def test_unjustified_waiver_is_reported(self, tmp_path):
        # An unjustified pragma is flagged (SIM000) and does NOT suppress
        # the underlying violation.
        out = lint_source(
            tmp_path, "t_retrain_ns = 50.0  # simlint: ignore[SIM005]\n")
        assert codes(out) == ["SIM000", "SIM005"]

    def test_waiver_for_other_code_does_not_suppress(self, tmp_path):
        # The SIM005 violation survives, and the SIM001 waiver — justified
        # but matching nothing — is reported as stale.
        out = lint_source(
            tmp_path,
            "t_retrain_ns = 50.0  # simlint: ignore[SIM001] -- wrong code\n")
        assert codes(out) == ["SIM005", "SIM008"]

    def test_stale_waiver_is_reported(self, tmp_path):
        out = lint_source(
            tmp_path,
            "# simlint: ignore[SIM005] -- excused a literal removed since\n"
            "t_retrain = table.lookup()\n",
        )
        assert codes(out) == ["SIM008"]
        assert out[0].line == 1

    def test_stale_waiver_ignored_when_rule_not_selected(self, tmp_path):
        # With SIM005 not running, the linter cannot know whether the
        # waiver suppresses anything, so it stays silent.
        out = lint_source(
            tmp_path,
            "# simlint: ignore[SIM005] -- excused a literal removed since\n"
            "t_retrain = table.lookup()\n",
            select=["SIM001"],
        )
        assert out == []

    def test_unjustified_match_is_used_not_stale(self, tmp_path):
        # A pragma that matches a violation but lacks a justification gets
        # SIM000 only — it is not *also* stale.
        out = lint_source(
            tmp_path, "t_retrain_ns = 50.0  # simlint: ignore[SIM005]\n")
        assert "SIM008" not in codes(out)

    def test_pragma_text_in_docstring_is_not_a_waiver(self, tmp_path):
        out = lint_source(
            tmp_path,
            '"""Example waiver::\n\n'
            "    x = 1.0  # simlint: ignore[SIM005] -- vendor-quoted\n"
            '"""\n',
        )
        assert out == []


class TestDriver:
    def test_select_restricts_rules(self, tmp_path):
        source = "import time\nx = time.time()\nys=[]\ndef f(xs=[]):\n    return xs\n"
        out = lint_source(tmp_path, source, select=["SIM001"])
        assert codes(out) == ["SIM001"]

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        out = lint_source(tmp_path, "def broken(:\n")
        assert codes(out) == ["SIM999"]

    def test_format_violations(self, tmp_path):
        out = lint_source(tmp_path, "import time\nx = time.time()\n")
        text = format_violations(out)
        assert "SIM001" in text and "1 violation" in text
        assert format_violations([]) == "simlint: clean"

    def test_rule_registry_is_complete(self):
        assert set(RULES) == {
            "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006",
            "SIM007", "SIM009"}
        for rule in RULES.values():
            assert rule.title and rule.rationale


class TestRealTree:
    def test_src_repro_lints_clean(self):
        """Acceptance criterion: the shipped tree passes every rule."""
        violations = lint_paths([REPO_SRC])
        assert violations == [], format_violations(violations)
