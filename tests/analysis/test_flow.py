"""simflow: project model, flow passes, waivers, baseline, mutants.

Pass-behavior tests build small synthetic trees in ``tmp_path`` (the
purity pass keys off the ``system/system.py:System._run_trace`` anchor,
which a synthetic tree can provide under the same relative path).
Model-precision and cleanliness tests run against the real ``src/repro``
tree — the analyzer's reason to exist is that tree, and its call-graph
precision claims (the hot set excludes the functional/bench world) are
only meaningful there.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.flow import (
    FLOW_CODES,
    MUTANTS,
    load_baseline,
    run_flow,
    run_mutants,
    write_baseline,
)
from repro.analysis.flow.engine import HYGIENE_CODE
from repro.analysis.flow.model import ProjectModel
from repro.analysis.flow.purity import hot_set
from repro.analysis.source import parse_project, parse_waivers

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def write_tree(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return tmp_path


PURITY_TREE = {
    "system/system.py": (
        "class System:\n"                       # 1
        "    def _run_trace(self):\n"           # 2
        "        while True:\n"                 # 3
        "            self.step()\n"             # 4
        "        self._collect()\n"             # 5
        "\n"                                    # 6
        "    def step(self):\n"                 # 7
        "        waiting = {1, 2}\n"            # 8  FLW008 (set display)
        "        for item in waiting:\n"        # 9  FLW007 (set iteration)
        "            pass\n"                    # 10
        "        self.stats.add('x', 1.0)\n"    # 11 FLW009
        "\n"
        "    def _collect(self):\n"
        "        summary = {}\n"
        "        return summary\n"
    ),
}


def codes_of(report):
    return sorted(f.code for f in report.findings)


# ----------------------------------------------------------------------
# Real tree: cleanliness and call-graph precision
# ----------------------------------------------------------------------


class TestRealTree:
    @pytest.fixture(scope="class")
    def model(self):
        project, errors = parse_project([REPO_SRC], tool="simflow",
                                        syntax_error_code="FLW999")
        assert not errors
        return ProjectModel(project)

    def test_tree_is_clean_without_baseline(self):
        report = run_flow([REPO_SRC])
        assert report.findings == []

    def test_hot_set_contains_the_engine_callees(self, model):
        hot = hot_set(model)
        assert "core/executor.py:PeiExecutor._execute" in hot
        assert "cpu/core.py:CoreModel.do_load" in hot
        assert "cache/hierarchy.py:CacheHierarchy.flush_block" in hot

    def test_hot_set_excludes_functional_and_bench_world(self, model):
        """The precision claim: replay never re-runs workload generation,
        the bench runner, or the golden model."""
        hot = hot_set(model)
        leaked = sorted(q for q in hot if q.startswith(
            ("workloads/", "bench/", "verify/")))
        assert leaked == []

    def test_type_inference_resolves_the_engine_dispatch(self, model):
        assert model.return_types.get("build_machine") == "Machine"
        assert model.attr_types.get(("Machine", "executor")) == "PeiExecutor"
        assert model.attr_types.get(("PeiExecutor", "tracer")) == "PeiTracer"


# ----------------------------------------------------------------------
# Unit/dimension taint (FLW004-FLW006) on a synthetic tree
# ----------------------------------------------------------------------


class TestUnitsPass:
    def test_cross_dimension_add_fires(self, tmp_path):
        write_tree(tmp_path, {"mod.py": (
            "def mix(t_ns, freq_ghz):\n"
            "    return t_ns + freq_ghz\n")})
        assert codes_of(run_flow([tmp_path])) == ["FLW004"]

    def test_sanctioned_conversion_is_clean(self, tmp_path):
        write_tree(tmp_path, {"mod.py": (
            "def convert(t_ns, freq_ghz):\n"
            "    return t_ns * freq_ghz\n")})
        assert codes_of(run_flow([tmp_path])) == []

    def test_cross_dimension_compare_fires(self, tmp_path):
        write_tree(tmp_path, {"mod.py": (
            "def check(budget_cycles, freq_ghz):\n"
            "    return budget_cycles > freq_ghz\n")})
        assert codes_of(run_flow([tmp_path])) == ["FLW005"]

    def test_mis_suffixed_assignment_fires(self, tmp_path):
        write_tree(tmp_path, {"mod.py": (
            "def mislabel(delay_ns):\n"
            "    total_cycles = delay_ns\n"
            "    return total_cycles\n")})
        assert codes_of(run_flow([tmp_path])) == ["FLW006"]

    def test_flow_is_tracked_through_locals(self, tmp_path):
        """The flow-sensitive part: the dimension rides the assignment."""
        write_tree(tmp_path, {"mod.py": (
            "def relay(t_ns, freq_ghz):\n"
            "    elapsed = t_ns\n"
            "    return elapsed + freq_ghz\n")})
        assert codes_of(run_flow([tmp_path])) == ["FLW004"]


# ----------------------------------------------------------------------
# Hot-path purity (FLW007-FLW009) on a synthetic tree
# ----------------------------------------------------------------------


class TestPurityPass:
    def test_loop_reachable_impurities_fire(self, tmp_path):
        write_tree(tmp_path, PURITY_TREE)
        assert codes_of(run_flow([tmp_path])) == [
            "FLW007", "FLW008", "FLW009"]

    def test_once_per_run_work_is_not_hot(self, tmp_path):
        """_collect sits outside every while loop: its dict display is
        outside the hot set even though _run_trace calls it."""
        write_tree(tmp_path, PURITY_TREE)
        report = run_flow([tmp_path], select=["FLW008"])
        assert [f.line for f in report.findings] == [8]  # the set display only

    def test_no_engine_anchor_means_no_hot_set(self, tmp_path):
        write_tree(tmp_path, {"mod.py": (
            "def helper():\n"
            "    return [1, 2]\n")})
        assert codes_of(run_flow([tmp_path])) == []

    def test_select_filters_passes(self, tmp_path):
        write_tree(tmp_path, PURITY_TREE)
        report = run_flow([tmp_path], select=["FLW009"])
        assert codes_of(report) == ["FLW009"]


# ----------------------------------------------------------------------
# Waivers: justification, spans, multi-line pragma comments
# ----------------------------------------------------------------------


class TestFlowWaivers:
    def test_justified_waiver_suppresses(self, tmp_path):
        tree = dict(PURITY_TREE)
        tree["system/system.py"] = tree["system/system.py"].replace(
            "        waiting = {1, 2}\n",
            "        waiting = {1, 2}  # simflow: ignore[FLW008] -- reuse\n")
        write_tree(tmp_path, tree)
        assert codes_of(run_flow([tmp_path])) == ["FLW007", "FLW009"]

    def test_unjustified_waiver_reports_hygiene(self, tmp_path):
        tree = dict(PURITY_TREE)
        tree["system/system.py"] = tree["system/system.py"].replace(
            "        waiting = {1, 2}\n",
            "        waiting = {1, 2}  # simflow: ignore[FLW008]\n")
        write_tree(tmp_path, tree)
        assert HYGIENE_CODE in codes_of(run_flow([tmp_path]))

    def test_own_line_pragma_skips_continuation_comments(self, tmp_path):
        """A justification that wraps onto following comment lines still
        targets the next *code* line (the real-tree waivers are written
        this way)."""
        tree = dict(PURITY_TREE)
        tree["system/system.py"] = tree["system/system.py"].replace(
            "        waiting = {1, 2}\n",
            "        # simflow: ignore[FLW008] -- justification that\n"
            "        # wraps onto a second comment line\n"
            "        waiting = {1, 2}\n")
        write_tree(tmp_path, tree)
        assert codes_of(run_flow([tmp_path])) == ["FLW007", "FLW009"]

    def test_simlint_namespace_does_not_silence_flow(self, tmp_path):
        tree = dict(PURITY_TREE)
        tree["system/system.py"] = tree["system/system.py"].replace(
            "        waiting = {1, 2}\n",
            "        waiting = {1, 2}  # simlint: ignore[FLW008] -- wrong\n")
        write_tree(tmp_path, tree)
        assert "FLW008" in codes_of(run_flow([tmp_path]))


class TestWaiverSpans:
    """Statement-span matching regressions (shared source model)."""

    def test_own_line_pragma_targets_next_code_line(self):
        waivers = parse_waivers(
            "# simlint: ignore[SIM001] -- reason\n"
            "# continuation comment\n"
            "\n"
            "x = 1\n")
        assert [w.line for w in waivers] == [4]

    def test_trailing_pragma_targets_its_own_line(self):
        waivers = parse_waivers("x = 1  # simlint: ignore[SIM001] -- r\n")
        assert [w.line for w in waivers] == [1]

    def test_pragma_inside_multiline_call_suppresses_first_line(self, tmp_path):
        """The finding reports at the call's first line; a pragma on a later
        physical line of the same statement must still match."""
        write_tree(tmp_path, {"system/system.py": (
            "class System:\n"
            "    def _run_trace(self):\n"
            "        while True:\n"
            "            self.step()\n"
            "\n"
            "    def step(self):\n"
            "        self.stats.add(\n"
            "            'x',  # simflow: ignore[FLW009] -- span test\n"
            "            1.0)\n")})
        assert codes_of(run_flow([tmp_path])) == []

    def test_pragma_on_decorator_suppresses_def_line_finding(self, tmp_path):
        """simlint reports SIM004 at the def line; the decorator belongs to
        the same statement span."""
        from repro.analysis.simlint import lint_paths
        target = tmp_path / "mod.py"
        target.write_text(
            "import functools\n"
            "\n"
            "@functools.lru_cache  # simlint: ignore[SIM004] -- span test\n"
            "def f(xs=[]):\n"
            "    return xs\n",
            encoding="utf-8")
        assert lint_paths([tmp_path]) == []


# ----------------------------------------------------------------------
# Baseline: round-trip, suppression counting, stale entries
# ----------------------------------------------------------------------


class TestBaseline:
    def test_round_trip_suppresses_and_counts(self, tmp_path):
        root = write_tree(tmp_path / "tree", PURITY_TREE)
        baseline = tmp_path / "flow-baseline.json"
        dirty = run_flow([root])
        assert len(dirty.findings) == 3
        write_baseline(baseline, dirty.findings)
        assert len(load_baseline(baseline)) == 3
        clean = run_flow([root], baseline=baseline)
        assert clean.findings == []
        assert clean.baselined == 3

    def test_stale_entry_reports_hygiene(self, tmp_path):
        root = write_tree(tmp_path / "tree", PURITY_TREE)
        baseline = tmp_path / "flow-baseline.json"
        write_baseline(baseline, run_flow([root]).findings)
        # Fix one defect: the matching entry goes stale and must surface.
        fixed = PURITY_TREE["system/system.py"].replace(
            "        self.stats.add('x', 1.0)\n", "        pass\n")
        (root / "system/system.py").write_text(fixed, encoding="utf-8")
        report = run_flow([root], baseline=baseline)
        assert codes_of(report) == [HYGIENE_CODE]
        assert "stale baseline entry" in report.findings[0].message

    def test_malformed_entry_rejected(self, tmp_path):
        baseline = tmp_path / "flow-baseline.json"
        baseline.write_text(json.dumps(
            {"entries": [{"code": "FLW008"}]}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(baseline)

    def test_checked_in_baseline_is_loadable(self):
        checked_in = REPO_SRC.parents[1] / "flow-baseline.json"
        assert checked_in.exists()
        load_baseline(checked_in)  # must not raise


# ----------------------------------------------------------------------
# Mutants: the catalogue itself
# ----------------------------------------------------------------------


class TestMutants:
    def test_catalogue_covers_every_rule(self):
        assert {m.code for m in MUTANTS} == set(FLOW_CODES)

    def test_fingerprint_mutant_is_killed(self, tmp_path):
        """One end-to-end kill (the full gauntlet is `make flow-mutants`)."""
        subset = [m for m in MUTANTS
                  if m.name == "fingerprint-enumerates-subset"]
        results, pristine = run_mutants([REPO_SRC], mutants=subset)
        assert pristine.findings == []
        assert results[0].killed

    def test_drifted_anchor_fails_loudly(self, tmp_path):
        from repro.analysis.flow.mutants import Mutant
        bogus = Mutant(name="bogus", code="FLW001", description="",
                       edits=(("system/config.py", "NO SUCH ANCHOR", "x"),))
        with pytest.raises(ValueError):
            run_mutants([REPO_SRC], mutants=[bogus])
