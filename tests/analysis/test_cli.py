"""Exit-code contract of ``python -m repro.analysis``.

The CI jobs and Makefile targets key off these codes: 0 = clean,
1 = findings (or surviving mutants), 2 = bad arguments / unreadable
inputs.  Tests drive :func:`repro.analysis.__main__.main` in-process —
same code path as the console, without interpreter-spawn overhead.
"""

import json

import pytest

from repro.analysis.__main__ import main

from .test_flow import write_tree

CLEAN_MODULE = "def add(a, b):\n    return a + b\n"

# SIM004 (simlint): a mutable default is shared across calls.
LINT_DIRTY_MODULE = (
    "def collect(items=[]):\n"
    "    return items\n"
)

# FLW004 (simflow): ns + GHz has no physical meaning.
FLOW_DIRTY_MODULE = (
    "def mix(t_ns, freq_ghz):\n"
    "    return t_ns + freq_ghz\n"
)


class TestLintExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": CLEAN_MODULE})
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": LINT_DIRTY_MODULE})
        assert main(["lint", str(tmp_path)]) == 1
        assert "SIM004" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path):
        assert main(["lint", str(tmp_path / "nope")]) == 2

    def test_unknown_select_code_exits_two(self, tmp_path):
        write_tree(tmp_path, {"mod.py": CLEAN_MODULE})
        assert main(["lint", str(tmp_path), "--select", "SIM999"]) == 2

    def test_list_rules_exits_zero(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "SIM001" in capsys.readouterr().out

    def test_bench_flag_prints_timing_line(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": CLEAN_MODULE})
        assert main(["lint", "--bench", str(tmp_path)]) == 0
        assert "lint-bench:" in capsys.readouterr().out


class TestFlowExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": CLEAN_MODULE})
        assert main(["flow", str(tmp_path), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": FLOW_DIRTY_MODULE})
        assert main(["flow", str(tmp_path), "--no-baseline"]) == 1
        assert "FLW004" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path):
        assert main(["flow", str(tmp_path / "nope"), "--no-baseline"]) == 2

    def test_unknown_select_code_exits_two(self, tmp_path):
        write_tree(tmp_path, {"mod.py": CLEAN_MODULE})
        assert main(["flow", str(tmp_path), "--no-baseline",
                     "--select", "FLW123"]) == 2

    def test_missing_baseline_file_exits_two(self, tmp_path):
        write_tree(tmp_path, {"mod.py": CLEAN_MODULE})
        assert main(["flow", str(tmp_path),
                     "--baseline", str(tmp_path / "absent.json")]) == 2

    def test_malformed_baseline_exits_two(self, tmp_path):
        write_tree(tmp_path, {"mod.py": CLEAN_MODULE})
        bad = tmp_path / "bad.json"
        bad.write_text("{\"entries\": 7}", encoding="utf-8")
        assert main(["flow", str(tmp_path), "--baseline", str(bad)]) == 2

    def test_list_rules_exits_zero(self, capsys):
        assert main(["flow", "--list-rules"]) == 0
        assert "FLW001" in capsys.readouterr().out

    def test_json_and_sarif_are_written(self, tmp_path):
        write_tree(tmp_path, {"mod.py": FLOW_DIRTY_MODULE})
        out_json = tmp_path / "report.json"
        out_sarif = tmp_path / "report.sarif"
        assert main(["flow", str(tmp_path), "--no-baseline",
                     "--json", str(out_json),
                     "--sarif", str(out_sarif)]) == 1
        payload = json.loads(out_json.read_text(encoding="utf-8"))
        assert [f["code"] for f in payload["findings"]] == ["FLW004"]
        sarif = json.loads(out_sarif.read_text(encoding="utf-8"))
        assert sarif["version"] == "2.1.0"
        results = sarif["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["FLW004"]


class TestBaselineRoundTripViaCli:
    """--update-baseline then a rerun must accept the same tree as clean."""

    def test_update_then_rerun_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"mod.py": FLOW_DIRTY_MODULE})
        baseline = tmp_path / "baseline.json"
        assert main(["flow", str(tmp_path), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["flow", str(tmp_path),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_update_baseline_without_path_exits_two(self, tmp_path):
        write_tree(tmp_path, {"mod.py": CLEAN_MODULE})
        assert main(["flow", str(tmp_path), "--no-baseline",
                     "--update-baseline"]) == 2


class TestFlowMutantsExitCodes:
    def test_missing_path_exits_two(self, tmp_path):
        assert main(["flow-mutants", str(tmp_path / "nope")]) == 2

    def test_drifted_anchor_exits_two(self, tmp_path):
        # A tree without the mutants' anchor lines must refuse to run
        # (a gauntlet that silently tests nothing would be worse than
        # none), not report a vacuous pass.
        write_tree(tmp_path, {"mod.py": CLEAN_MODULE})
        assert main(["flow-mutants", str(tmp_path), "--no-baseline"]) == 2


# RCE003 (simrace): a truncating write in a durable-artifact module.
RACE_DIRTY_MODULE = (
    "def save(path, text):\n"
    "    with open(path, 'w') as fh:\n"
    "        fh.write(text)\n"
)


class TestRaceExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"bench/mod.py": CLEAN_MODULE})
        assert main(["race", str(tmp_path), "--no-baseline"]) == 0
        assert "simrace: clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write_tree(tmp_path, {"bench/mod.py": RACE_DIRTY_MODULE})
        assert main(["race", str(tmp_path), "--no-baseline"]) == 1
        assert "RCE003" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path):
        assert main(["race", str(tmp_path / "nope"), "--no-baseline"]) == 2

    def test_unknown_select_code_exits_two(self, tmp_path):
        write_tree(tmp_path, {"bench/mod.py": CLEAN_MODULE})
        assert main(["race", str(tmp_path), "--no-baseline",
                     "--select", "RCE042"]) == 2

    def test_missing_baseline_file_exits_two(self, tmp_path):
        write_tree(tmp_path, {"bench/mod.py": CLEAN_MODULE})
        assert main(["race", str(tmp_path),
                     "--baseline", str(tmp_path / "nope.json")]) == 2

    def test_malformed_baseline_exits_two(self, tmp_path):
        write_tree(tmp_path, {"bench/mod.py": CLEAN_MODULE})
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"entries": [{"code": "RCE003"}]}),
                       encoding="utf-8")
        assert main(["race", str(tmp_path), "--baseline", str(bad)]) == 2

    def test_list_rules_exits_zero(self, capsys):
        assert main(["race", "--list-rules"]) == 0
        assert "RCE001" in capsys.readouterr().out

    def test_json_and_sarif_are_written(self, tmp_path):
        write_tree(tmp_path, {"bench/mod.py": RACE_DIRTY_MODULE})
        out_json = tmp_path / "report.json"
        out_sarif = tmp_path / "report.sarif"
        assert main(["race", str(tmp_path), "--no-baseline",
                     "--json", str(out_json),
                     "--sarif", str(out_sarif)]) == 1
        payload = json.loads(out_json.read_text(encoding="utf-8"))
        assert [f["code"] for f in payload["findings"]] == ["RCE003"]
        sarif = json.loads(out_sarif.read_text(encoding="utf-8"))
        assert sarif["version"] == "2.1.0"
        results = sarif["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["RCE003"]


class TestRaceBaselineRoundTripViaCli:
    def test_update_then_rerun_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"bench/mod.py": RACE_DIRTY_MODULE})
        baseline = tmp_path / "baseline.json"
        assert main(["race", str(tmp_path), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["race", str(tmp_path),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_update_baseline_without_path_exits_two(self, tmp_path):
        write_tree(tmp_path, {"bench/mod.py": CLEAN_MODULE})
        assert main(["race", str(tmp_path), "--no-baseline",
                     "--update-baseline"]) == 2


class TestRaceMutantsExitCodes:
    def test_missing_path_exits_two(self, tmp_path):
        assert main(["race-mutants", str(tmp_path / "nope")]) == 2

    def test_drifted_anchor_exits_two(self, tmp_path):
        # Same contract as flow-mutants: a tree without the anchor lines
        # must refuse to run, not report a vacuous pass.
        write_tree(tmp_path, {"mod.py": CLEAN_MODULE})
        assert main(["race-mutants", str(tmp_path), "--no-baseline"]) == 2
