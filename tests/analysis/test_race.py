"""simrace: worker slice, race passes, waivers, baseline, mutants.

Pass-behavior tests build small synthetic trees in ``tmp_path`` (the
durable and ordering rules key off ``bench/``/``obs/`` path segments and
the payload rules off pool-construction shapes, all of which a synthetic
tree can provide).  Cleanliness and end-to-end mutant tests run against
the real ``src/repro`` tree — the frontier that analyzer exists to guard.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.race import (
    RACE_CODES,
    RACE_MUTANTS,
    load_baseline,
    run_race,
    run_race_mutants,
    write_baseline,
)
from repro.analysis.race.engine import HYGIENE_CODE
from repro.analysis.race.payload import worker_unsafe_classes
from repro.analysis.race.worker import build_context
from repro.analysis.flow.model import ProjectModel
from repro.analysis.source import parse_project

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def write_tree(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return tmp_path


def codes_of(report):
    return sorted(f.code for f in report.findings)


#: A minimal frontier: a pool, a submit, a worker function.
POOL_PREFIX = (
    "from concurrent.futures import ProcessPoolExecutor, wait\n"
    "\n"
    "def _work(payload):\n"
    "    return payload\n"
    "\n"
)


# ----------------------------------------------------------------------
# Real tree: the frontier this analyzer exists to guard
# ----------------------------------------------------------------------


class TestRealTree:
    def test_tree_is_clean_without_baseline(self):
        report = run_race([REPO_SRC])
        assert report.findings == [], "\n".join(map(str, report.findings))

    def test_worker_slice_is_rooted_at_the_payload_executor(self):
        project, _ = parse_project([REPO_SRC], tool="simrace")
        ctx = build_context(ProjectModel(project))
        assert any(q.endswith(":_execute_payload") for q in ctx.entries)
        # The slice reaches the simulation core the workers actually run.
        assert any("system/system.py" in q for q in ctx.worker_slice)

    def test_settings_env_vars_are_pinned(self):
        project, _ = parse_project([REPO_SRC], tool="simrace")
        ctx = build_context(ProjectModel(project))
        assert "REPRO_BENCH_SEED" in ctx.pinned

    def test_run_ledger_is_structurally_process_unsafe(self):
        project, _ = parse_project([REPO_SRC], tool="simrace")
        unsafe = worker_unsafe_classes(ProjectModel(project))
        assert "RunLedger" in unsafe


# ----------------------------------------------------------------------
# RCE001/RCE002: payload safety
# ----------------------------------------------------------------------


class TestPayloadPass:
    def test_lambda_payload_fires(self, tmp_path):
        write_tree(tmp_path, {"bench/run.py": POOL_PREFIX + (
            "def batch(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(_work, lambda: 1)\n"
        )})
        assert "RCE001" in codes_of(run_race([tmp_path]))

    def test_lambda_submit_target_fires(self, tmp_path):
        write_tree(tmp_path, {"bench/run.py": POOL_PREFIX + (
            "def batch(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(lambda: _work(1))\n"
        )})
        assert "RCE001" in codes_of(run_race([tmp_path]))

    def test_callback_param_traced_through_payload_tuple(self, tmp_path):
        write_tree(tmp_path, {"bench/run.py": POOL_PREFIX + (
            "def batch(items, on_progress):\n"
            "    payloads = [(item, on_progress) for item in items]\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        for payload in payloads:\n"
            "            pool.submit(_work, payload)\n"
        )})
        assert "RCE001" in codes_of(run_race([tmp_path]))

    def test_unsafe_class_instance_fires_rce002(self, tmp_path):
        write_tree(tmp_path, {"bench/run.py": POOL_PREFIX + (
            "class Ledger:\n"
            "    def __init__(self, listener=None):\n"
            "        self.listener = listener\n"
            "\n"
            "def batch(items):\n"
            "    ledger = Ledger()\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(_work, (items, ledger))\n"
        )})
        assert "RCE002" in codes_of(run_race([tmp_path]))

    def test_frozen_data_payload_is_clean(self, tmp_path):
        write_tree(tmp_path, {"bench/run.py": POOL_PREFIX + (
            "def batch(items, seed):\n"
            "    payloads = [(item, seed) for item in items]\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        for payload in payloads:\n"
            "            pool.submit(_work, payload)\n"
        )})
        assert codes_of(run_race([tmp_path])) == []


# ----------------------------------------------------------------------
# RCE003/RCE004: durable-write discipline
# ----------------------------------------------------------------------


class TestDurablePass:
    def test_truncating_open_fires(self, tmp_path):
        write_tree(tmp_path, {"bench/writer.py": (
            "def save(path, text):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(text)\n"
        )})
        assert "RCE003" in codes_of(run_race([tmp_path]))

    def test_buffered_append_fires(self, tmp_path):
        write_tree(tmp_path, {"obs/stream.py": (
            "def log(path, line):\n"
            "    with open(path, 'a') as fh:\n"
            "        fh.write(line)\n"
        )})
        assert "RCE004" in codes_of(run_race([tmp_path]))

    def test_write_text_fires(self, tmp_path):
        write_tree(tmp_path, {"obs/export.py": (
            "def save(path, text):\n"
            "    path.write_text(text)\n"
        )})
        assert "RCE003" in codes_of(run_race([tmp_path]))

    def test_reads_and_non_durable_modules_are_clean(self, tmp_path):
        write_tree(tmp_path, {
            "bench/reader.py": (
                "def load(path):\n"
                "    with open(path) as fh:\n"
                "        return fh.read()\n"),
            "tools/scratch.py": (
                "def save(path, text):\n"
                "    with open(path, 'w') as fh:\n"
                "        fh.write(text)\n"),
        })
        assert codes_of(run_race([tmp_path])) == []

    def test_sanctioned_fsio_defs_are_exempt(self, tmp_path):
        write_tree(tmp_path, {"obs/fsio.py": (
            "def atomic_write_text(path, text):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(text)\n"
        )})
        assert codes_of(run_race([tmp_path])) == []


# ----------------------------------------------------------------------
# RCE005-RCE007: fork/worker hygiene
# ----------------------------------------------------------------------


class TestWorkerPass:
    def test_worker_global_mutation_fires(self, tmp_path):
        write_tree(tmp_path, {"bench/run.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_STATS = {}\n"
            "\n"
            "def _work(payload):\n"
            "    _STATS['runs'] = _STATS.get('runs', 0) + 1\n"
            "    return payload\n"
            "\n"
            "def batch(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        for item in items:\n"
            "            pool.submit(_work, item)\n"
        )})
        assert "RCE005" in codes_of(run_race([tmp_path]))

    def test_parent_side_global_mutation_is_clean(self, tmp_path):
        # Same mutation, but nothing submits the function to a pool.
        write_tree(tmp_path, {"bench/run.py": (
            "_STATS = {}\n"
            "\n"
            "def count(payload):\n"
            "    _STATS['runs'] = _STATS.get('runs', 0) + 1\n"
            "    return payload\n"
        )})
        assert codes_of(run_race([tmp_path])) == []

    def test_unpinned_env_read_fires_and_pinned_is_clean(self, tmp_path):
        write_tree(tmp_path, {"bench/run.py": (
            "import os\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "\n"
            "class BenchSettings:\n"
            "    seed_env = 'REPRO_BENCH_SEED'\n"
            "\n"
            "def _work(payload):\n"
            "    os.environ.get('REPRO_BENCH_SEED')\n"  # pinned: clean
            "    os.environ.get('REPRO_SECRET_KNOB')\n"  # RCE006
            "    return payload\n"
            "\n"
            "def batch(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        for item in items:\n"
            "            pool.submit(_work, item)\n"
        )})
        assert codes_of(run_race([tmp_path])) == ["RCE006"]

    def test_global_rng_fires_tree_wide(self, tmp_path):
        write_tree(tmp_path, {"workloads/gen.py": (
            "import random\n"
            "\n"
            "def jitter():\n"
            "    return random.random()\n"
        )})
        assert "RCE007" in codes_of(run_race([tmp_path]))

    def test_seeded_generator_calls_are_clean(self, tmp_path):
        write_tree(tmp_path, {"workloads/gen.py": (
            "def sample(rng):\n"
            "    return rng.random()\n"
        )})
        assert codes_of(run_race([tmp_path])) == []


# ----------------------------------------------------------------------
# RCE008/RCE009: ordering soundness
# ----------------------------------------------------------------------


class TestOrderingPass:
    def test_completion_order_append_fires(self, tmp_path):
        write_tree(tmp_path, {"bench/run.py": POOL_PREFIX + (
            "def batch(payloads):\n"
            "    results = []\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pending = {pool.submit(_work, p): i\n"
            "                   for i, p in enumerate(payloads)}\n"
            "        while pending:\n"
            "            done, _ = wait(pending)\n"
            "            for fut in done:\n"
            "                pending.pop(fut)\n"
            "                results.append(fut.result())\n"
            "    return results\n"
        )})
        assert "RCE008" in codes_of(run_race([tmp_path]))

    def test_indexed_reorder_is_clean(self, tmp_path):
        write_tree(tmp_path, {"bench/run.py": POOL_PREFIX + (
            "def batch(payloads):\n"
            "    results = [None] * len(payloads)\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pending = {pool.submit(_work, p): i\n"
            "                   for i, p in enumerate(payloads)}\n"
            "        while pending:\n"
            "            done, _ = wait(pending)\n"
            "            for fut in done:\n"
            "                i = pending.pop(fut)\n"
            "                results[i] = fut.result()\n"
            "    return results\n"
        )})
        assert codes_of(run_race([tmp_path])) == []

    def test_set_iteration_into_output_fires(self, tmp_path):
        write_tree(tmp_path, {"bench/report.py": (
            "def delta(before, after):\n"
            "    entry = {}\n"
            "    for key in set(before) | set(after):\n"
            "        entry[key] = after.get(key, 0) - before.get(key, 0)\n"
            "    return entry\n"
        )})
        assert "RCE009" in codes_of(run_race([tmp_path]))

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        write_tree(tmp_path, {"bench/report.py": (
            "def delta(before, after):\n"
            "    entry = {}\n"
            "    for key in sorted(set(before) | set(after)):\n"
            "        entry[key] = after.get(key, 0) - before.get(key, 0)\n"
            "    return entry\n"
        )})
        assert codes_of(run_race([tmp_path])) == []

    def test_select_filters_passes(self, tmp_path):
        write_tree(tmp_path, {"bench/report.py": (
            "def delta(before, after):\n"
            "    entry = {}\n"
            "    for key in set(before) | set(after):\n"
            "        entry[key] = after.get(key, 0)\n"
            "    return entry\n"
            "\n"
            "def save(path, text):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(text)\n"
        )})
        assert codes_of(run_race([tmp_path])) == ["RCE003", "RCE009"]
        only = run_race([tmp_path], select=["RCE009"])
        assert codes_of(only) == ["RCE009"]


# ----------------------------------------------------------------------
# Waivers and baseline
# ----------------------------------------------------------------------


class TestRaceWaivers:
    def test_justified_waiver_suppresses(self, tmp_path):
        write_tree(tmp_path, {"workloads/gen.py": (
            "import random\n"
            "\n"
            "def jitter():\n"
            "    return random.random()  "
            "# simrace: ignore[RCE007] -- test-only jitter\n"
        )})
        assert codes_of(run_race([tmp_path])) == []

    def test_unjustified_waiver_reports_hygiene(self, tmp_path):
        write_tree(tmp_path, {"workloads/gen.py": (
            "import random\n"
            "\n"
            "def jitter():\n"
            "    return random.random()  # simrace: ignore[RCE007]\n"
        )})
        # Unjustified pragmas do not suppress: both hygiene and the
        # original finding report.
        assert codes_of(run_race([tmp_path])) == [HYGIENE_CODE, "RCE007"]

    def test_simflow_namespace_does_not_silence_race(self, tmp_path):
        write_tree(tmp_path, {"workloads/gen.py": (
            "import random\n"
            "\n"
            "def jitter():\n"
            "    return random.random()  "
            "# simflow: ignore[RCE007] -- wrong tool\n"
        )})
        assert "RCE007" in codes_of(run_race([tmp_path]))


class TestBaseline:
    def test_round_trip_suppresses_and_counts(self, tmp_path):
        write_tree(tmp_path, {"workloads/gen.py": (
            "import random\n"
            "\n"
            "def jitter():\n"
            "    return random.random()\n"
        )})
        report = run_race([tmp_path])
        assert codes_of(report) == ["RCE007"]
        baseline = tmp_path / "race-baseline.json"
        write_baseline(baseline, report.findings)
        again = run_race([tmp_path], baseline=baseline)
        assert again.findings == []
        assert again.baselined == 1

    def test_stale_entry_reports_hygiene(self, tmp_path):
        write_tree(tmp_path, {"workloads/gen.py": "X = 1\n"})
        baseline = tmp_path / "race-baseline.json"
        baseline.write_text(json.dumps({"entries": [
            {"code": "RCE007", "rel": "workloads/gen.py",
             "message": "long gone"}]}), encoding="utf-8")
        report = run_race([tmp_path], baseline=baseline)
        assert codes_of(report) == [HYGIENE_CODE]

    def test_checked_in_baseline_is_loadable(self):
        checked_in = REPO_SRC.parents[1] / "race-baseline.json"
        assert checked_in.exists()
        load_baseline(checked_in)  # must not raise


# ----------------------------------------------------------------------
# Mutants: the catalogue itself
# ----------------------------------------------------------------------


class TestMutants:
    def test_catalogue_covers_every_rule(self):
        assert {m.code for m in RACE_MUTANTS} == set(RACE_CODES)

    def test_callback_mutant_is_killed(self, tmp_path):
        """One end-to-end kill (the full gauntlet is `make race-mutants`)."""
        subset = [m for m in RACE_MUTANTS
                  if m.name == "payload-captures-callback"]
        results, pristine = run_race_mutants([REPO_SRC], mutants=subset)
        assert pristine.findings == []
        assert results[0].killed

    def test_drifted_anchor_fails_loudly(self, tmp_path):
        from repro.analysis.race.mutants import Mutant
        bogus = Mutant(name="bogus", code="RCE001", description="",
                       edits=(("bench/frontier.py", "NO SUCH ANCHOR", "x"),))
        with pytest.raises(ValueError):
            run_race_mutants([REPO_SRC], mutants=[bogus])
