"""Tests for the telemetry artifact schema checks (repro.analysis.telemetry)."""

import json

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.telemetry import (
    check_bundle_dir,
    check_chrome_trace,
    check_interval_jsonl,
    check_run_bundle,
    format_problems,
)


def interval_record(seq, t, final=False, **stats):
    base = {"pei.issued": float(seq), "runtime.cycles": t}
    base.update(stats)
    return {"seq": seq, "t": t, "final": final, "stats": base,
            "delta": {}, "derived": {}}


def write_jsonl(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


def good_trace():
    return {
        "traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "host cores"}},
            {"name": "pim.fadd", "cat": "pei,host", "ph": "X", "pid": 1,
             "tid": 0, "ts": 0.0, "dur": 10.0},
        ],
    }


class TestCheckIntervalJsonl:
    def test_good_series_passes(self, tmp_path):
        path = write_jsonl(tmp_path / "a.intervals.jsonl", [
            interval_record(0, 100.0),
            interval_record(1, 200.0),
            interval_record(2, 250.0, final=True),
        ])
        assert check_interval_jsonl(path) == []

    def test_empty_file_flagged(self, tmp_path):
        path = tmp_path / "a.intervals.jsonl"
        path.write_text("")
        assert any("empty" in p for p in check_interval_jsonl(path))

    def test_invalid_json_flagged(self, tmp_path):
        path = tmp_path / "a.intervals.jsonl"
        path.write_text("{not json\n")
        assert any("invalid JSON" in p for p in check_interval_jsonl(path))

    def test_missing_key_flagged(self, tmp_path):
        record = interval_record(0, 1.0, final=True)
        del record["delta"]
        path = write_jsonl(tmp_path / "a.intervals.jsonl", [record])
        assert any("'delta'" in p for p in check_interval_jsonl(path))

    def test_seq_gap_flagged(self, tmp_path):
        path = write_jsonl(tmp_path / "a.intervals.jsonl", [
            interval_record(0, 1.0),
            interval_record(2, 2.0, final=True),
        ])
        assert any("seq" in p for p in check_interval_jsonl(path))

    def test_time_regression_flagged(self, tmp_path):
        path = write_jsonl(tmp_path / "a.intervals.jsonl", [
            interval_record(0, 200.0),
            interval_record(1, 100.0, final=True),
        ])
        assert any("non-decreasing" in p for p in check_interval_jsonl(path))

    def test_missing_final_flagged(self, tmp_path):
        path = write_jsonl(tmp_path / "a.intervals.jsonl", [
            interval_record(0, 1.0),
            interval_record(1, 2.0),
        ])
        assert any("final" in p for p in check_interval_jsonl(path))

    def test_decreasing_counter_flagged(self, tmp_path):
        path = write_jsonl(tmp_path / "a.intervals.jsonl", [
            interval_record(0, 1.0, **{"dram.reads": 10.0}),
            interval_record(1, 2.0, final=True, **{"dram.reads": 5.0}),
        ])
        assert any("dram.reads" in p for p in check_interval_jsonl(path))

    def test_non_numeric_stat_flagged(self, tmp_path):
        record = interval_record(0, 1.0, final=True)
        record["stats"]["pei.issued"] = "lots"
        path = write_jsonl(tmp_path / "a.intervals.jsonl", [record])
        assert any("finite" in p for p in check_interval_jsonl(path))


class TestCheckChromeTrace:
    def test_good_trace_passes(self, tmp_path):
        path = tmp_path / "a.trace.json"
        path.write_text(json.dumps(good_trace()))
        assert check_chrome_trace(path) == []

    def test_missing_trace_events_flagged(self, tmp_path):
        path = tmp_path / "a.trace.json"
        path.write_text("{}")
        assert any("traceEvents" in p for p in check_chrome_trace(path))

    def test_invalid_phase_flagged(self, tmp_path):
        payload = good_trace()
        payload["traceEvents"][1]["ph"] = "Z"
        path = tmp_path / "a.trace.json"
        path.write_text(json.dumps(payload))
        assert any("phase" in p for p in check_chrome_trace(path))

    def test_negative_duration_flagged(self, tmp_path):
        payload = good_trace()
        payload["traceEvents"][1]["dur"] = -1.0
        path = tmp_path / "a.trace.json"
        path.write_text(json.dumps(payload))
        assert any("negative" in p for p in check_chrome_trace(path))

    def test_non_integer_tid_flagged(self, tmp_path):
        payload = good_trace()
        payload["traceEvents"][1]["tid"] = "core0"
        path = tmp_path / "a.trace.json"
        path.write_text(json.dumps(payload))
        assert any("tid" in p for p in check_chrome_trace(path))

    def test_sliceless_trace_flagged(self, tmp_path):
        payload = good_trace()
        payload["traceEvents"] = payload["traceEvents"][:1]  # metadata only
        path = tmp_path / "a.trace.json"
        path.write_text(json.dumps(payload))
        assert any("no complete" in p for p in check_chrome_trace(path))


class TestCheckRunBundle:
    def good_bundle(self):
        return {
            "result": {"workload": "HG"},
            "telemetry": {"metrics": {
                "pei.latency": {"type": "histogram", "p50": 1.0, "p95": 2.0,
                                "p99": 3.0},
            }},
        }

    def test_good_bundle_passes(self, tmp_path):
        path = tmp_path / "a.run.json"
        path.write_text(json.dumps(self.good_bundle()))
        assert check_run_bundle(path) == []

    def test_missing_telemetry_section_flagged(self, tmp_path):
        path = tmp_path / "a.run.json"
        path.write_text(json.dumps({"result": {}}))
        assert any("telemetry" in p for p in check_run_bundle(path))

    def test_unordered_quantiles_flagged(self, tmp_path):
        bundle = self.good_bundle()
        bundle["telemetry"]["metrics"]["pei.latency"]["p95"] = 10.0
        bundle["telemetry"]["metrics"]["pei.latency"]["p99"] = 5.0
        path = tmp_path / "a.run.json"
        path.write_text(json.dumps(bundle))
        assert any("ordered" in p for p in check_run_bundle(path))

    def test_missing_quantile_flagged(self, tmp_path):
        bundle = self.good_bundle()
        del bundle["telemetry"]["metrics"]["pei.latency"]["p95"]
        path = tmp_path / "a.run.json"
        path.write_text(json.dumps(bundle))
        assert any("p50/p95/p99" in p for p in check_run_bundle(path))


class TestCheckBundleDir:
    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            check_bundle_dir(tmp_path)

    def test_collects_all_artifact_kinds(self, tmp_path):
        write_jsonl(tmp_path / "a.intervals.jsonl",
                    [interval_record(0, 1.0, final=True)])
        (tmp_path / "a.trace.json").write_text(json.dumps(good_trace()))
        (tmp_path / "a.run.json").write_text(
            json.dumps({"result": None, "telemetry": {"metrics": {}}}))
        results = check_bundle_dir(tmp_path)
        assert len(results) == 3
        assert not any(results.values())


class TestFormatProblems:
    def test_clean_verdict(self):
        out = format_problems({"a": []})
        assert "clean" in out

    def test_problem_count(self):
        out = format_problems({"a": ["bad thing"]})
        assert "1 problem(s)" in out
        assert "bad thing" in out


class TestAnalysisTelemetryCli:
    def test_directory_clean(self, tmp_path, capsys):
        write_jsonl(tmp_path / "a.intervals.jsonl",
                    [interval_record(0, 1.0, final=True)])
        (tmp_path / "a.trace.json").write_text(json.dumps(good_trace()))
        assert analysis_main(["telemetry", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_individual_file_with_problems(self, tmp_path, capsys):
        path = tmp_path / "bad.intervals.jsonl"
        path.write_text("")
        assert analysis_main(["telemetry", str(path)]) == 1

    def test_empty_directory_errors(self, tmp_path, capsys):
        assert analysis_main(["telemetry", str(tmp_path)]) == 2
        assert "no telemetry artifacts" in capsys.readouterr().err

    def test_unknown_suffix_errors(self, tmp_path, capsys):
        path = tmp_path / "something.txt"
        path.write_text("x")
        assert analysis_main(["telemetry", str(path)]) == 2
