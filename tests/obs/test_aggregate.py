"""Tests for cross-worker telemetry aggregation (repro.obs.aggregate)."""

import pytest

from repro.obs.aggregate import (
    FRONTIER_SCHEMA,
    FrontierAggregator,
    merge_profiles,
    registry_from_dict,
)
from repro.obs.metrics import MetricRegistry


def make_registry(values):
    registry = MetricRegistry()
    registry.counter("pei.issued").inc(10)
    registry.gauge("queue.peak").set(4.0)
    histogram = registry.histogram("pei.latency")
    for value in values:
        histogram.record(value)
    return registry


class TestRegistryRoundTrip:
    def test_counters_gauges_histograms_restored_exactly(self):
        original = make_registry([1.0, 2.0, 4.0, 0.0, 100.0])
        rebuilt = registry_from_dict(original.to_dict())
        assert rebuilt.to_dict() == original.to_dict()

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown type"):
            registry_from_dict({"m": {"type": "meter", "value": 1.0}})

    def test_merge_of_rebuilt_equals_merge_of_live(self):
        a = make_registry([1.0, 3.0, 9.0])
        b = make_registry([2.0, 8.0, 32.0])
        live = make_registry([1.0, 3.0, 9.0])
        live.merge(b)
        rebuilt = registry_from_dict(a.to_dict())
        rebuilt.merge(registry_from_dict(b.to_dict()))
        assert rebuilt.to_dict() == live.to_dict()


class TestMergeProfiles:
    def test_calls_and_total_add_peak_maxes(self):
        into = {"executor.pei": {"calls": 2, "total_s": 1.0, "peak_s": 0.6}}
        merge_profiles(into, {"executor.pei": {"calls": 3, "total_s": 0.5,
                                               "peak_s": 0.4},
                              "pmu.directory": {"calls": 1, "total_s": 0.1,
                                                "peak_s": 0.1}})
        assert into["executor.pei"] == {"calls": 5, "total_s": 1.5,
                                        "peak_s": 0.6}
        assert into["pmu.directory"]["calls"] == 1


def envelope(pid, dur, telemetry=None):
    return {"result": {}, "events": [],
            "worker": {"pid": pid, "dur_s": dur}, "telemetry": telemetry}


class TestFrontierAggregator:
    def test_summary_schema_and_latency(self):
        agg = FrontierAggregator()
        agg.add_batch(2.0)
        for dur in (0.1, 0.2, 0.3, 0.4):
            agg.add_payload(envelope(pid=1000, dur=dur))
        summary = agg.summary()
        assert summary["schema"] == FRONTIER_SCHEMA
        assert summary["batches"] == 1
        latency = summary["simulate_latency_s"]
        assert latency["count"] == 4
        assert latency["mean"] == pytest.approx(0.25)
        assert latency["max"] == pytest.approx(0.4)
        assert 0.0 < latency["p50"] <= latency["p95"] <= latency["max"] * 1.2

    def test_per_worker_utilization(self):
        agg = FrontierAggregator()
        agg.add_batch(2.0)
        agg.add_payload(envelope(pid=11, dur=1.0))
        agg.add_payload(envelope(pid=11, dur=0.5))
        agg.add_payload(envelope(pid=22, dur=0.4))
        workers = agg.summary()["workers"]
        assert workers["11"]["payloads"] == 2
        assert workers["11"]["utilization"] == pytest.approx(0.75)
        assert workers["22"]["utilization"] == pytest.approx(0.2)

    def test_telemetry_snapshots_merge(self):
        agg = FrontierAggregator()
        agg.add_batch(1.0)
        a = make_registry([1.0, 2.0])
        b = make_registry([4.0, 8.0])
        agg.add_payload(envelope(1, 0.1, telemetry={
            "metrics": a.to_dict(),
            "profile": {"executor.pei": {"calls": 1, "total_s": 0.2,
                                         "peak_s": 0.2}}}))
        agg.add_payload(envelope(2, 0.1, telemetry={
            "metrics": b.to_dict(),
            "profile": {"executor.pei": {"calls": 2, "total_s": 0.3,
                                         "peak_s": 0.25}}}))
        summary = agg.summary()
        assert summary["metrics"]["pei.issued"]["value"] == 20
        assert summary["metrics"]["pei.latency"]["count"] == 4
        assert summary["profile"]["executor.pei"]["calls"] == 3
        assert agg.telemetry_payloads == 2

    def test_accounting_derives_cache_trace_and_throughput(self):
        agg = FrontierAggregator()
        agg.add_batch(1.0)
        agg.add_payload(envelope(1, 0.5))
        summary = agg.summary(accounting={
            "simulations": 2.0, "memo_hits": 6.0, "disk_hits": 2.0,
            "instructions": 1000.0, "sim_wall_seconds": 0.5,
            "trace_captures": 1.0, "trace_hits": 3.0})
        assert summary["cache"]["hit_rate"] == pytest.approx(0.8)
        assert summary["traces"]["hit_rate"] == pytest.approx(0.75)
        assert summary["sim_ops_per_second"] == pytest.approx(2000.0)

    def test_empty_aggregator_summary_is_well_formed(self):
        summary = FrontierAggregator().summary()
        assert summary["simulate_latency_s"]["count"] == 0
        assert summary["workers"] == {}
        assert "metrics" not in summary
