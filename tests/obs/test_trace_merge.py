"""Tests for frontier-level trace stitching (merge + ledger rendering)."""

import pytest

from repro.analysis.telemetry import check_chrome_trace
from repro.core.tracer import PeiTracer, PeiTrace
from repro.obs.events import RunLedger, worker_event
from repro.obs.trace_export import (
    FRONTIER_PID,
    WORKER_PID_STRIDE,
    ChromeTraceExporter,
    ledger_to_trace,
    merge_chrome_traces,
)


def make_trace(core, vault_of=None):
    tracer = PeiTracer()
    tracer.record(PeiTrace(core=core, op="pim.fadd", block=3, on_host=False,
                           issue_time=0.0, grant_time=5.0, completion=30.0))
    return ChromeTraceExporter(vault_of=vault_of).export(tracer)


def tracks(payload):
    return {(e["pid"], e.get("tid")) for e in payload["traceEvents"]
            if e.get("ph") == "X"}


class TestPidBase:
    def test_default_pids_unchanged(self):
        exporter = ChromeTraceExporter()
        assert exporter.host_pid == 1
        assert exporter.vault_pid == 2

    def test_pid_base_offsets_every_event(self):
        tracer = PeiTracer()
        tracer.record(PeiTrace(core=0, op="pim.fadd", block=1, on_host=True,
                               issue_time=0.0, grant_time=1.0,
                               completion=2.0))
        payload = ChromeTraceExporter(pid_base=300).export(tracer)
        assert {e["pid"] for e in payload["traceEvents"]} == {301}

    def test_pid_base_must_be_stride_aligned(self):
        with pytest.raises(ValueError, match="multiple"):
            ChromeTraceExporter(pid_base=150)
        with pytest.raises(ValueError, match="multiple"):
            ChromeTraceExporter(pid_base=-100)

    def test_two_pid_based_exports_never_collide(self):
        a = ChromeTraceExporter(pid_base=100).export(_tracer_for_core(0))
        b = ChromeTraceExporter(pid_base=200).export(_tracer_for_core(0))
        assert not (tracks(a) & tracks(b))


def _tracer_for_core(core):
    tracer = PeiTracer()
    tracer.record(PeiTrace(core=core, op="pim.fadd", block=1, on_host=True,
                           issue_time=0.0, grant_time=1.0, completion=2.0))
    return tracer


class TestMergeChromeTraces:
    def test_merged_traces_share_no_track(self):
        # Identical source traces — the worst case for collisions: every
        # pid/tid pair exists in both.
        a = make_trace(core=0, vault_of=lambda b: b % 4)
        b = make_trace(core=0, vault_of=lambda b: b % 4)
        merged = merge_chrome_traces([a, b])
        track_owner = {}
        for i, source in enumerate((a, b)):
            base = (i + 1) * WORKER_PID_STRIDE
            for pid, tid in tracks(source):
                key = (base + pid % WORKER_PID_STRIDE, tid)
                assert key not in track_owner or track_owner[key] == i
                track_owner[key] = i
        assert len(tracks(merged)) == len(tracks(a)) + len(tracks(b))

    def test_deterministic_namespace_per_index(self):
        traces = [make_trace(core=i) for i in range(3)]
        merged = merge_chrome_traces(traces)
        pids = {e["pid"] // WORKER_PID_STRIDE
                for e in merged["traceEvents"]}
        assert pids == {1, 2, 3}
        # Merging again yields the identical assignment.
        assert merge_chrome_traces(traces) == merged

    def test_labels_prefix_process_names(self):
        merged = merge_chrome_traces([make_trace(0)], labels=["sc_aware"])
        names = [e["args"]["name"] for e in merged["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "process_name"]
        assert names and all(n.startswith("sc_aware: ") for n in names)

    def test_label_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="labels"):
            merge_chrome_traces([make_trace(0)], labels=["a", "b"])

    def test_dropped_counts_aggregate(self):
        a = make_trace(0)
        a["otherData"]["dropped_events"] = 3
        b = make_trace(1)
        b["otherData"]["dropped_events"] = 4
        merged = merge_chrome_traces([a, b])
        assert merged["otherData"]["dropped_events"] == 7
        assert merged["otherData"]["merged_traces"] == 2

    def test_merged_trace_passes_schema_check(self, tmp_path):
        import json

        merged = merge_chrome_traces([make_trace(0), make_trace(1)])
        path = tmp_path / "merged.trace.json"
        path.write_text(json.dumps(merged))
        assert check_chrome_trace(path) == []


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLedgerToTrace:
    def make_ledger(self):
        clock = FakeClock()
        ledger = RunLedger(clock=clock)
        clock.now = 0.1
        ledger.emit("request_planned", fingerprint="ab", label="HG/host")
        clock.now = 0.2
        ledger.emit("cache_miss", fingerprint="ab")
        clock.now = 1.0
        ledger.absorb([
            worker_event("simulate_start", fingerprint="ab", worker=42),
            worker_event("simulate_end", fingerprint="ab", worker=42,
                         dur_s=0.5, cycles=100.0, instructions=50)])
        return ledger

    def test_simulate_slices_land_on_worker_track(self):
        payload = ledger_to_trace(self.make_ledger().events)
        (sim,) = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert sim["pid"] == FRONTIER_PID
        assert sim["tid"] == 42
        assert sim["dur"] == pytest.approx(0.5e6)
        # start = absorb time minus duration, in microseconds
        assert sim["ts"] == pytest.approx(0.5e6)

    def test_cache_events_become_instants(self):
        payload = ledger_to_trace(self.make_ledger().events)
        instants = [e["name"] for e in payload["traceEvents"]
                    if e.get("ph") == "i"]
        assert instants == ["request_planned", "cache_miss"]

    def test_worker_thread_named_once(self):
        ledger = self.make_ledger()
        ledger.absorb([worker_event("simulate_end", fingerprint="cd",
                                    worker=42, dur_s=0.1, cycles=1.0,
                                    instructions=1)])
        payload = ledger_to_trace(ledger.events)
        worker_names = [e for e in payload["traceEvents"]
                        if e.get("ph") == "M" and e["name"] == "thread_name"
                        and e["tid"] == 42]
        assert len(worker_names) == 1
