"""Tests for the sweep dashboard and the hardened obs CLI."""

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.dashboard import collect_sources, render_html, write_dashboard
from repro.obs.events import EVENT_SCHEMA


def write_record(directory, runid, sims=4, memo=2, disk=2, ops=1e6,
                 wall=3.0):
    payload = {
        "schema": "repro.bench.trajectory/1",
        "runid": runid,
        "jobs": 2,
        "cache": {"enabled": True},
        "settings": {},
        "engine": {},
        "observability": {
            "schema": "repro.obs.frontier/1",
            "cache": {"memo_hits": memo, "disk_hits": disk,
                      "simulations": sims,
                      "hit_rate": (memo + disk) / (memo + disk + sims)},
            "simulate_latency_s": {"count": sims, "mean": 0.2, "p50": 0.2,
                                   "p95": 0.3, "max": 0.4},
            "workers": {"11": {"payloads": sims, "busy_s": 1.0,
                               "utilization": 0.8}},
            "sim_ops_per_second": ops,
        },
        "experiments": [
            {"name": "fig6", "wall_seconds": wall * 0.6, "simulations": sims,
             "memo_hits": memo, "disk_hits": 0, "instructions": 5e5,
             "sim_wall_seconds": wall * 0.5, "sim_ops_per_second": ops},
            {"name": "fig10", "wall_seconds": wall * 0.4, "simulations": 0,
             "memo_hits": 0, "disk_hits": disk, "instructions": 0,
             "sim_wall_seconds": 0.0, "sim_ops_per_second": 0.0},
        ],
        "totals": {"wall_seconds": wall, "simulations": sims,
                   "memo_hits": memo, "disk_hits": disk,
                   "instructions": 5e5, "sim_wall_seconds": wall * 0.5,
                   "trace_captures": 1, "trace_hits": 3,
                   "sim_ops_per_second": ops},
    }
    path = directory / f"BENCH_{runid}.json"
    path.write_text(json.dumps(payload))
    return path


def write_ledger(directory, name="EVENTS_r1.jsonl", durations=(0.1, 0.3)):
    lines = [json.dumps({"seq": 0, "t": 0.0, "kind": "ledger_start",
                         "schema": EVENT_SCHEMA})]
    for i, dur in enumerate(durations):
        lines.append(json.dumps({
            "seq": i + 1, "t": 0.5 * (i + 1), "kind": "simulate_end",
            "fingerprint": "ab", "worker": 9, "dur_s": dur,
            "cycles": 10.0, "instructions": 5}))
    path = directory / name
    path.write_text("\n".join(lines) + "\n")
    return path


class TestCollect:
    def test_collects_all_three_kinds(self, tmp_path):
        write_record(tmp_path, "r1")
        write_ledger(tmp_path)
        (tmp_path / "sc.run.json").write_text(json.dumps(
            {"result": {"workload": "SC", "policy": "locality-aware",
                        "cycles": 100.0, "instructions": 50},
             "telemetry": None, "files": {}}))
        sources = collect_sources(tmp_path)
        assert len(sources["records"]) == 1
        assert len(sources["ledgers"]) == 1
        assert len(sources["bundles"]) == 1

    def test_file_target_scans_parent_directory(self, tmp_path):
        write_record(tmp_path, "r1")
        bundle = tmp_path / "sc.run.json"
        bundle.write_text(json.dumps({"result": {}, "telemetry": None}))
        sources = collect_sources(bundle)
        assert sources["directory"] == tmp_path
        assert len(sources["records"]) == 1

    def test_torn_files_are_skipped_not_fatal(self, tmp_path):
        write_record(tmp_path, "r1")
        (tmp_path / "BENCH_torn.json").write_text('{"schema": ')
        (tmp_path / "torn.events.jsonl").write_text('{"seq": 0\n{"x"\n')
        sources = collect_sources(tmp_path)
        assert len(sources["records"]) == 1
        assert sources["ledgers"] == []


class TestRenderHtml:
    def test_self_contained_document(self, tmp_path):
        write_record(tmp_path, "r1", ops=8e5)
        write_record(tmp_path, "r2", ops=1e6)
        write_ledger(tmp_path)
        html_text = render_html(collect_sources(tmp_path))
        assert html_text.startswith("<!DOCTYPE html>")
        assert html_text.rstrip().endswith("</html>")
        # Self-contained: no external scripts, stylesheets, or images.
        assert "<script" not in html_text
        assert "<link" not in html_text
        assert "http" not in html_text.split("</title>")[1]
        # Every advertised panel is present.
        assert "Per-experiment wall time" in html_text
        assert "Cache breakdown" in html_text
        assert "simulate spans" in html_text       # latency histogram
        assert "<svg" in html_text                 # throughput sparkline
        assert "memo hits" in html_text            # legend, not color-alone
        assert "fig6" in html_text and "fig10" in html_text

    def test_empty_directory_degrades_gracefully(self, tmp_path):
        html_text = render_html(collect_sources(tmp_path))
        assert "no BENCH_*.json records" in html_text
        assert html_text.startswith("<!DOCTYPE html>")

    def test_labels_are_escaped(self, tmp_path):
        path = write_record(tmp_path, "r1")
        payload = json.loads(path.read_text())
        payload["experiments"][0]["name"] = "<script>alert(1)</script>"
        path.write_text(json.dumps(payload))
        html_text = render_html(collect_sources(tmp_path))
        assert "<script>" not in html_text

    def test_write_dashboard_default_output(self, tmp_path):
        write_record(tmp_path, "r1")
        out = write_dashboard(tmp_path)
        assert out == tmp_path / "dashboard.html"
        assert out.read_text().startswith("<!DOCTYPE html>")


class TestDashboardCli:
    def test_cli_renders(self, tmp_path, capsys):
        write_record(tmp_path, "r1")
        out = tmp_path / "dash.html"
        assert obs_main(["dashboard", str(tmp_path), "-o", str(out)]) == 0
        assert out.exists()
        assert "dashboard ->" in capsys.readouterr().out

    def test_cli_missing_target_exits_2(self, tmp_path, capsys):
        assert obs_main(["dashboard", str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestReportHardening:
    def test_missing_bundle_exits_2(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "gone.run.json")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_truncated_bundle_exits_2_with_message(self, tmp_path, capsys):
        torn = tmp_path / "torn.run.json"
        torn.write_text('{"result": {"workload": "SC", "cyc')
        assert obs_main(["report", str(torn)]) == 2
        err = capsys.readouterr().err
        assert "not a valid telemetry bundle" in err
        assert "torn.run.json" in err

    def test_non_object_bundle_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.run.json"
        bad.write_text("[1, 2, 3]")
        assert obs_main(["report", str(bad)]) == 2
        assert "not a valid telemetry bundle" in capsys.readouterr().err


class TestMergeTraceCli:
    def test_merges_directory(self, tmp_path, capsys):
        trace = {"traceEvents": [{"name": "x", "cat": "c", "ph": "X",
                                  "pid": 1, "tid": 0, "ts": 0.0,
                                  "dur": 1.0}],
                 "otherData": {"dropped_events": 0}}
        (tmp_path / "a.trace.json").write_text(json.dumps(trace))
        (tmp_path / "b.trace.json").write_text(json.dumps(trace))
        assert obs_main(["merge-trace", str(tmp_path)]) == 0
        merged = json.loads((tmp_path / "merged.trace.json").read_text())
        pids = {e["pid"] for e in merged["traceEvents"]}
        assert pids == {101, 201}

    def test_includes_frontier_track_when_ledger_present(self, tmp_path):
        trace = {"traceEvents": [{"name": "x", "cat": "c", "ph": "X",
                                  "pid": 1, "tid": 0, "ts": 0.0,
                                  "dur": 1.0}]}
        (tmp_path / "a.trace.json").write_text(json.dumps(trace))
        write_ledger(tmp_path, name="run.events.jsonl")
        assert obs_main(["merge-trace", str(tmp_path)]) == 0
        merged = json.loads((tmp_path / "merged.trace.json").read_text())
        assert merged["otherData"]["frontier_ledger"] == "run.events.jsonl"
        assert any(e["pid"] == 90 for e in merged["traceEvents"])

    def test_empty_directory_exits_2(self, tmp_path, capsys):
        assert obs_main(["merge-trace", str(tmp_path)]) == 2
        assert "no readable" in capsys.readouterr().err
