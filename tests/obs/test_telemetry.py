"""End-to-end tests for the Telemetry facade and the report CLI."""

import json

import pytest

from repro.analysis.telemetry import (
    check_bundle_dir,
    check_chrome_trace,
    check_interval_jsonl,
    check_run_bundle,
)
from repro.core.dispatch import DispatchPolicy
from repro.core.tracer import PeiTracer
from repro.obs.__main__ import main as obs_main
from repro.obs.telemetry import Telemetry
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.analytics.histogram import Histogram

RUN_OPS = 400


def telemetry_run(interval=500.0, policy=DispatchPolicy.LOCALITY_AWARE):
    telemetry = Telemetry(interval=interval)
    system = System(tiny_config(), policy, telemetry=telemetry)
    result = system.run(Histogram(n_values=2000),
                        max_ops_per_thread=RUN_OPS)
    return telemetry, result


@pytest.fixture(scope="module")
def run():
    return telemetry_run()


class TestTelemetryRun:
    def test_final_sample_matches_run_result_stats(self, run):
        """The ISSUE acceptance criterion: the final cumulative interval
        record equals RunResult.stats exactly (same keys, same values)."""
        telemetry, result = run
        last = telemetry.sampler.last()
        assert last["final"] is True
        assert last["stats"] == result.stats

    def test_interior_samples_taken(self, run):
        telemetry, result = run
        assert len(telemetry.sampler) >= 2  # boundaries + final
        times = [r["t"] for r in telemetry.sampler.records]
        assert times == sorted(times)
        assert times[-1] == result.cycles

    def test_hooks_populated_histograms(self, run):
        telemetry, _ = run
        metrics = telemetry.obs.metrics
        assert metrics.histogram("pei.latency").count > 0
        assert metrics.histogram("pei.lock_wait").count > 0
        assert metrics.histogram("pei.decision_to_completion").count > 0
        assert metrics.histogram("queue.host_operand_buffer").count > 0

    def test_memory_side_run_populates_dram_and_queue_histograms(self):
        # Host-side runs of a cache-resident workload never miss to DRAM;
        # a PIM_ONLY run exercises the vault/off-chip instrumentation.
        telemetry, _ = telemetry_run(policy=DispatchPolicy.PIM_ONLY)
        metrics = telemetry.obs.metrics
        assert metrics.histogram("dram.pim_read_latency").count > 0
        assert metrics.histogram("queue.vault_operand_buffer").count > 0
        assert metrics.histogram("queue.vault_tsv_backlog").count > 0
        assert metrics.histogram("queue.offchip_request_backlog").count > 0
        assert metrics.histogram("pmu.clean_latency").count > 0
        assert metrics.histogram("pei.latency.mem").count > 0

    def test_profiler_saw_hot_spans(self, run):
        telemetry, _ = run
        spans = telemetry.obs.profiler.spans
        assert spans["executor.pei"].calls > 0
        assert spans["pmu.directory"].calls > 0

    def test_tracer_recorded_peis(self, run):
        telemetry, _ = run
        assert len(telemetry.tracer) > 0

    def test_attach_shares_preexisting_tracer(self):
        telemetry = Telemetry()
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        existing = PeiTracer()
        system.executor.tracer = existing
        telemetry.attach(system.machine)
        assert telemetry.tracer is existing
        assert system.executor.tracer is existing

    def test_summary_schema(self, run):
        telemetry, _ = run
        summary = telemetry.summary()
        assert set(summary) == {"metrics", "profile", "intervals", "trace"}
        assert summary["intervals"]["count"] == len(telemetry.sampler)
        assert summary["trace"]["events"] == len(telemetry.tracer.events)
        json.dumps(summary)  # must be JSON-safe


class TestTelemetryWrite:
    def test_bundle_files_written_and_schema_clean(self, run, tmp_path):
        telemetry, result = run
        paths = telemetry.write(tmp_path, "hg_aware", result=result)
        assert set(paths) == {"intervals", "trace", "run"}
        assert check_interval_jsonl(paths["intervals"]) == []
        assert check_chrome_trace(paths["trace"]) == []
        assert check_run_bundle(paths["run"]) == []
        results = check_bundle_dir(tmp_path)
        assert len(results) == 3
        assert not any(results.values())

    def test_run_bundle_embeds_result(self, run, tmp_path):
        telemetry, result = run
        paths = telemetry.write(tmp_path, "hg_aware", result=result)
        bundle = json.loads(paths["run"].read_text())
        assert bundle["result"]["workload"] == result.workload
        assert bundle["result"]["stats"] == result.stats
        assert bundle["files"]["intervals"] == "hg_aware.intervals.jsonl"
        assert bundle["files"]["trace"] == "hg_aware.trace.json"


class TestReportCli:
    @pytest.fixture()
    def bundle_path(self, run, tmp_path):
        telemetry, result = run
        return telemetry.write(tmp_path, "hg_aware", result=result)["run"]

    def test_report_renders_histograms_and_profile(self, bundle_path, capsys):
        assert obs_main(["report", str(bundle_path)]) == 0
        out = capsys.readouterr().out
        assert "pei.latency" in out
        assert "p95" in out
        assert "executor.pei" in out
        assert "hg_aware.trace.json" in out

    def test_report_json_mode(self, bundle_path, capsys):
        assert obs_main(["report", str(bundle_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "telemetry" in payload

    def test_report_on_bare_run_result(self, run, tmp_path, capsys):
        _, result = run
        path = tmp_path / "bare.json"
        path.write_text(result.to_json())
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no telemetry section" in out

    def test_report_missing_file(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope.run.json")]) == 2
        assert "no such file" in capsys.readouterr().err
