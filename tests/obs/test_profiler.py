"""Tests for the scope profiler and the observability hook API."""

from repro.obs.hooks import NULL_OBS, NullObs, Obs
from repro.obs.profiler import NULL_SPAN, ScopeProfiler, SpanStats


class FakeClock:
    """A deterministic injectable clock: advances by `step` per read."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpanStats:
    def test_accumulates(self):
        s = SpanStats("x")
        s.add(2.0)
        s.add(3.0)
        assert s.calls == 2
        assert s.total_s == 5.0
        assert s.peak_s == 3.0

    def test_to_dict(self):
        s = SpanStats("x")
        s.add(1.0)
        assert s.to_dict() == {"calls": 1, "total_s": 1.0, "peak_s": 1.0}


class TestScopeProfiler:
    def test_span_measures_with_injected_clock(self):
        profiler = ScopeProfiler(clock=FakeClock(step=1.0))
        with profiler.span("work"):
            pass  # clock reads: enter=0, exit=1
        stats = profiler.spans["work"]
        assert stats.calls == 1
        assert stats.total_s == 1.0

    def test_repeated_spans_accumulate_under_one_name(self):
        profiler = ScopeProfiler(clock=FakeClock(step=2.0))
        for _ in range(3):
            with profiler.span("work"):
                pass
        assert profiler.spans["work"].calls == 3
        assert profiler.spans["work"].total_s == 6.0

    def test_hottest_sorted_by_total(self):
        profiler = ScopeProfiler(clock=FakeClock(step=1.0))
        with profiler.span("cold"):
            pass
        for _ in range(5):
            with profiler.span("hot"):
                pass
        names = [s.name for s in profiler.hottest(top=2)]
        assert names == ["hot", "cold"]

    def test_to_dict_sorted(self):
        profiler = ScopeProfiler(clock=FakeClock())
        with profiler.span("b"):
            pass
        with profiler.span("a"):
            pass
        assert list(profiler.to_dict()) == ["a", "b"]


class TestNullObs:
    def test_singleton_is_disabled(self):
        assert NULL_OBS.enabled is False
        assert isinstance(NULL_OBS, NullObs)

    def test_span_returns_shared_null_span(self):
        assert NULL_OBS.span("anything") is NULL_SPAN
        with NULL_OBS.span("anything"):
            pass  # must be a working (no-op) context manager

    def test_hooks_are_noops(self):
        assert NULL_OBS.count("x") is None
        assert NULL_OBS.gauge("x", 1.0) is None
        assert NULL_OBS.observe("x", 1.0) is None

    def test_no_instance_state(self):
        assert NullObs.__slots__ == ()


class TestObs:
    def test_enabled(self):
        assert Obs().enabled is True

    def test_is_drop_in_for_null_obs(self):
        assert isinstance(Obs(), NullObs)

    def test_hooks_write_through(self):
        obs = Obs()
        obs.count("events", 2)
        obs.gauge("depth", 4.0)
        obs.observe("latency", 9.0)
        assert obs.metrics.counter("events").value == 2.0
        assert obs.metrics.gauge("depth").value == 4.0
        assert obs.metrics.histogram("latency").count == 1

    def test_span_records_into_profiler(self):
        obs = Obs(profiler=ScopeProfiler(clock=FakeClock()))
        with obs.span("region"):
            pass
        assert obs.profiler.spans["region"].calls == 1
