"""Tests for the interval sampler and the shared live-gauge overlay."""

import json

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import FP_ADD
from repro.obs.sampler import DELTA_COUNTERS, IntervalSampler, live_gauges
from repro.system.builder import build_machine
from repro.system.config import tiny_config

VADDR = 0x90000


@pytest.fixture
def machine():
    return build_machine(tiny_config(), DispatchPolicy.LOCALITY_AWARE)


def run_peis(machine, n, start=0):
    for i in range(start, start + n):
        machine.executor.execute(machine.cores[0], FP_ADD, VADDR + 64 * i,
                                 False)


class TestLiveGauges:
    def test_keys(self, machine):
        gauges = live_gauges(machine, 123.0)
        assert set(gauges) == {"offchip.request_bytes",
                               "offchip.response_bytes", "tsv.bytes",
                               "xbar.bytes", "runtime.cycles"}
        assert gauges["runtime.cycles"] == 123.0

    def test_reads_live_link_counters(self, machine):
        before = live_gauges(machine, 0.0)
        run_peis(machine, 8)
        after = live_gauges(machine, 0.0)
        assert after["xbar.bytes"] > before["xbar.bytes"]


class TestIntervalSampler:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            IntervalSampler(interval=0.0)

    def test_no_sample_before_first_boundary(self, machine):
        sampler = IntervalSampler(interval=100.0)
        sampler.advance(machine, 99.9)
        assert len(sampler) == 0

    def test_emits_one_record_per_boundary_passed(self, machine):
        sampler = IntervalSampler(interval=100.0)
        sampler.advance(machine, 350.0)  # crosses t=100, 200, 300
        assert len(sampler) == 3
        assert [r["t"] for r in sampler.records] == [100.0, 200.0, 300.0]

    def test_seq_consecutive_and_not_final(self, machine):
        sampler = IntervalSampler(interval=50.0)
        sampler.advance(machine, 160.0)
        assert [r["seq"] for r in sampler.records] == [0, 1, 2]
        assert not any(r["final"] for r in sampler.records)

    def test_finalize_marks_final(self, machine):
        sampler = IntervalSampler(interval=100.0)
        sampler.advance(machine, 150.0)
        sampler.finalize(machine, 170.0)
        last = sampler.last()
        assert last["final"] is True
        assert last["t"] == 170.0
        assert sum(r["final"] for r in sampler.records) == 1

    def test_record_schema(self, machine):
        sampler = IntervalSampler(interval=10.0)
        sampler.finalize(machine, 10.0)
        record = sampler.last()
        assert set(record) == {"seq", "t", "final", "stats", "delta",
                               "derived"}
        assert set(record["delta"]) == set(DELTA_COUNTERS)
        for key in ("pim_fraction", "monitor_hit_rate",
                    "offchip_request_utilization", "host_pcu_utilization"):
            assert key in record["derived"]

    def test_delta_is_difference_between_samples(self, machine):
        sampler = IntervalSampler(interval=1e9)
        run_peis(machine, 4)
        sampler.finalize(machine, 1.0)
        first_issued = sampler.last()["stats"]["pei.issued"]
        assert sampler.last()["delta"]["pei.issued"] == first_issued == 4.0
        run_peis(machine, 3, start=4)
        sampler.finalize(machine, 2.0)
        assert sampler.last()["delta"]["pei.issued"] == 3.0
        assert sampler.last()["stats"]["pei.issued"] == 7.0

    def test_stats_include_live_gauges(self, machine):
        sampler = IntervalSampler(interval=100.0)
        run_peis(machine, 4)
        sampler.advance(machine, 100.0)
        record = sampler.last()
        assert record["stats"]["runtime.cycles"] == 100.0
        assert record["stats"]["xbar.bytes"] == \
            live_gauges(machine, 100.0)["xbar.bytes"]

    def test_jsonl_round_trip(self, machine, tmp_path):
        sampler = IntervalSampler(interval=50.0)
        run_peis(machine, 2)
        sampler.advance(machine, 120.0)
        sampler.finalize(machine, 130.0)
        path = tmp_path / "series.intervals.jsonl"
        sampler.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(sampler)
        restored = [json.loads(line) for line in lines]
        assert restored == sampler.records

    def test_last_empty(self):
        assert IntervalSampler().last() is None
