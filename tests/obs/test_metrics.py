"""Tests for the typed metric instruments (counters, gauges, histograms)."""

import random

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0.0

    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_monotonic(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1.0)

    def test_merge_sums(self):
        a, b = Counter("c"), Counter("c")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7.0

    def test_to_dict(self):
        c = Counter("c")
        c.inc(2)
        assert c.to_dict() == {"type": "counter", "value": 2.0}


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(10.0)
        g.set(3.0)
        assert g.value == 3.0

    def test_merge_takes_max(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(5.0)
        b.set(9.0)
        a.merge(b)
        assert a.value == 9.0
        b.merge(a)
        assert b.value == 9.0  # not summed to 18

    def test_to_dict(self):
        g = Gauge("g")
        g.set(1.5)
        assert g.to_dict() == {"type": "gauge", "value": 1.5}


class TestHistogram:
    def test_growth_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", growth=1.0)

    def test_empty(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0

    def test_quantile_range_validation(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_mean_exact(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.mean == pytest.approx(2.0)

    def test_zero_values_get_dedicated_bucket(self):
        h = Histogram("h")
        h.record(0.0)
        h.record(0.0)
        h.record(100.0)
        assert h.zeros == 2
        assert h.count == 3
        assert h.quantile(0.5) == 0.0  # median sits in the zero bucket

    def test_quantile_clamped_to_observed_extremes(self):
        h = Histogram("h")
        h.record(7.0)
        assert h.quantile(0.0) <= 7.0
        assert h.quantile(1.0) == 7.0
        assert h.quantile(0.5) == 7.0  # single value: clamp to min == max

    def test_quantile_relative_error_bounded_by_growth(self):
        """Estimated quantiles land within one bucket of the exact ones."""
        rng = random.Random(7)
        values = [rng.lognormvariate(4.0, 2.0) for _ in range(5000)]
        h = Histogram("h")
        for v in values:
            h.record(v)
        ordered = sorted(values)
        for q in (0.50, 0.95, 0.99):
            exact = ordered[min(len(ordered) - 1, int(q * len(ordered)))]
            estimate = h.quantile(q)
            assert estimate == pytest.approx(exact, rel=h.growth - 1.0 + 0.05)

    def test_percentiles_ordered(self):
        rng = random.Random(3)
        h = Histogram("h")
        for _ in range(1000):
            h.record(rng.expovariate(0.01))
        p = h.percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_merge(self):
        a, b = Histogram("h"), Histogram("h")
        for v in (1.0, 2.0, 0.0):
            a.record(v)
        for v in (4.0, 8.0):
            b.record(v)
        a.merge(b)
        assert a.count == 5
        assert a.zeros == 1
        assert a.min == 0.0
        assert a.max == 8.0
        assert a.total == pytest.approx(15.0)

    def test_merge_growth_mismatch_rejected(self):
        a = Histogram("h", growth=2.0)
        b = Histogram("h", growth=4.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_to_dict_schema(self):
        h = Histogram("h")
        h.record(3.0)
        payload = h.to_dict()
        for key in ("type", "count", "sum", "mean", "min", "max", "growth",
                    "zeros", "buckets", "p50", "p95", "p99"):
            assert key in payload
        assert payload["type"] == "histogram"
        assert payload["p50"] <= payload["p95"] <= payload["p99"]


class TestMetricRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_collision_rejected(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_write_paths(self):
        reg = MetricRegistry()
        reg.count("events", 2)
        reg.set_gauge("depth", 7.0)
        reg.observe("latency", 12.0)
        assert reg.counter("events").value == 2.0
        assert reg.gauge("depth").value == 7.0
        assert reg.histogram("latency").count == 1

    def test_len_and_contains(self):
        reg = MetricRegistry()
        reg.count("a")
        reg.set_gauge("b", 1.0)
        reg.observe("c", 1.0)
        assert len(reg) == 3
        assert "a" in reg and "b" in reg and "c" in reg
        assert "missing" not in reg

    def test_merge_respects_types(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.count("events", 1)
        b.count("events", 2)
        a.set_gauge("depth", 5.0)
        b.set_gauge("depth", 3.0)
        a.observe("latency", 1.0)
        b.observe("latency", 100.0)
        a.merge(b)
        assert a.counter("events").value == 3.0   # counters add
        assert a.gauge("depth").value == 5.0      # gauges take max
        assert a.histogram("latency").count == 2  # histograms merge

    def test_to_dict_sorted_and_typed(self):
        reg = MetricRegistry()
        reg.observe("b.latency", 4.0)
        reg.count("a.events")
        payload = reg.to_dict()
        assert list(payload) == ["a.events", "b.latency"]
        assert payload["a.events"]["type"] == "counter"
        assert payload["b.latency"]["type"] == "histogram"
