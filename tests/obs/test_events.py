"""Tests for the frontier run ledger (repro.obs.events)."""

import json

import pytest

from repro.obs.events import (
    ENVELOPE_FIELDS,
    EVENT_FIELDS,
    EVENT_SCHEMA,
    NULL_LEDGER,
    NullLedger,
    RunLedger,
    read_events,
    worker_event,
)


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


class TestNullLedger:
    def test_disabled_and_inert(self):
        assert NULL_LEDGER.enabled is False
        assert NULL_LEDGER.emit("request_planned", fingerprint="x") is None
        assert NULL_LEDGER.absorb([{"kind": "memo_hit"}]) is None

    def test_run_ledger_is_a_null_ledger(self):
        # The bench layer holds NullLedger-typed slots; a live ledger must
        # substitute transparently.
        assert isinstance(RunLedger(clock=FakeClock()), NullLedger)


class TestRunLedger:
    def test_starts_with_schema_header(self):
        ledger = RunLedger(clock=FakeClock())
        head = ledger.events[0]
        assert head["kind"] == "ledger_start"
        assert head["schema"] == EVENT_SCHEMA
        assert head["seq"] == 0

    def test_emit_stamps_contiguous_seq_and_relative_time(self):
        clock = FakeClock(start=50.0)
        ledger = RunLedger(clock=clock)
        clock.now = 50.5
        event = ledger.emit("request_planned", fingerprint="ab", label="x")
        assert event["seq"] == 1
        assert event["t"] == pytest.approx(0.5)
        assert event["fingerprint"] == "ab"

    def test_time_never_decreases(self):
        clock = FakeClock()
        ledger = RunLedger(clock=clock)
        clock.now = 110.0
        ledger.emit("memo_hit", fingerprint="a")
        clock.now = 90.0   # clock anomaly
        event = ledger.emit("memo_hit", fingerprint="b")
        assert event["t"] == pytest.approx(10.0)

    def test_absorb_restamps_worker_events_in_order(self):
        ledger = RunLedger(clock=FakeClock())
        batch = [worker_event("simulate_start", fingerprint="aa", worker=7),
                 worker_event("simulate_end", fingerprint="aa", worker=7,
                              dur_s=0.2, cycles=10.0, instructions=5)]
        ledger.absorb(batch)
        kinds = [e["kind"] for e in ledger.events]
        assert kinds == ["ledger_start", "simulate_start", "simulate_end"]
        assert [e["seq"] for e in ledger.events] == [0, 1, 2]
        # Worker payload fields survive the restamp.
        assert ledger.events[2]["dur_s"] == 0.2

    def test_absorb_strips_stale_envelopes(self):
        ledger = RunLedger(clock=FakeClock())
        ledger.absorb([{"kind": "memo_hit", "seq": 99, "t": 1e9,
                        "fingerprint": "zz"}])
        event = ledger.events[-1]
        assert event["seq"] == 1
        assert event["t"] < 1e9

    def test_listener_sees_every_emit(self):
        seen = []
        ledger = RunLedger(clock=FakeClock(), listener=seen.append)
        ledger.emit("memo_hit", fingerprint="a")
        assert [e["kind"] for e in seen] == ["ledger_start", "memo_hit"]

    def test_absorb_notify_false_skips_listener_but_keeps_events(self):
        seen = []
        ledger = RunLedger(clock=FakeClock(), listener=seen.append)
        ledger.absorb([worker_event("memo_hit", fingerprint="a")],
                      notify=False)
        assert [e["kind"] for e in seen] == ["ledger_start"]
        assert ledger.events[-1]["kind"] == "memo_hit"
        # The listener is restored for subsequent emits.
        ledger.emit("disk_hit", fingerprint="b")
        assert seen[-1]["kind"] == "disk_hit"

    def test_counts_excludes_header(self):
        ledger = RunLedger(clock=FakeClock())
        ledger.emit("memo_hit", fingerprint="a")
        ledger.emit("memo_hit", fingerprint="b")
        ledger.emit("disk_hit", fingerprint="c")
        assert ledger.counts() == {"memo_hit": 2, "disk_hit": 1}
        assert len(ledger) == 4

    def test_every_emitted_kind_is_in_the_schema_table(self):
        for kind in EVENT_FIELDS:
            for field in EVENT_FIELDS[kind]:
                assert field not in ENVELOPE_FIELDS


class TestSerialization:
    def test_jsonl_round_trip(self, tmp_path):
        ledger = RunLedger(clock=FakeClock())
        ledger.emit("request_planned", fingerprint="ab", label="HG/host")
        path = ledger.write_jsonl(tmp_path / "events.jsonl")
        events = read_events(path)
        assert events == ledger.events

    def test_read_events_drops_torn_final_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 0, "t": 0.0, "kind": "ledger_start", '
                        '"schema": "%s"}\n{"seq": 1, "t"' % EVENT_SCHEMA)
        events = read_events(path)
        assert len(events) == 1
        assert events[0]["kind"] == "ledger_start"

    def test_read_events_strict_raises_on_torn_final_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 0, "t": 0.0, "kind": "ledger_start"}\n'
                        '{"torn')
        with pytest.raises(ValueError, match="torn or invalid"):
            read_events(path, strict=True)

    def test_read_events_raises_on_torn_middle_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 0, "t": 0.0, "kind": "ledger_start"}\n'
                        '{"torn\n'
                        '{"seq": 1, "t": 0.1, "kind": "memo_hit"}\n')
        with pytest.raises(ValueError, match="torn or invalid"):
            read_events(path)

    def test_read_events_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('[1, 2, 3]\n{"seq": 0, "kind": "x", "t": 0.0}\n')
        with pytest.raises(ValueError, match="not an object"):
            read_events(path)

    def test_jsonl_is_plain_json_per_line(self, tmp_path):
        ledger = RunLedger(clock=FakeClock())
        ledger.emit("memo_hit", fingerprint="a")
        for line in ledger.to_jsonl().splitlines():
            assert isinstance(json.loads(line), dict)
