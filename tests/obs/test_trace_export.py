"""Tests for the Chrome Trace Event Format exporter."""

import json

import pytest

from repro.analysis.telemetry import check_chrome_trace
from repro.core.dispatch import DispatchPolicy
from repro.core.isa import FP_ADD
from repro.core.tracer import FenceTrace, PeiTracer, PeiTrace
from repro.obs.trace_export import HOST_PID, VAULT_PID, ChromeTraceExporter
from repro.system.builder import build_machine
from repro.system.config import tiny_config

VADDR = 0x90000


def slices(payload, pid=None):
    return [e for e in payload["traceEvents"]
            if e["ph"] == "X" and (pid is None or e["pid"] == pid)]


def names(payload, pid=None):
    return [e["name"] for e in slices(payload, pid)]


class TestHandBuiltTraces:
    def test_host_pei_gets_core_slice(self):
        tracer = PeiTracer()
        tracer.record(PeiTrace(core=2, op="pim.fadd", block=5, on_host=True,
                               issue_time=10.0, grant_time=12.0,
                               completion=40.0))
        payload = ChromeTraceExporter().export(tracer)
        (pei,) = slices(payload, HOST_PID)
        assert pei["name"] == "pim.fadd"
        assert pei["cat"] == "pei,host"
        assert pei["tid"] == 2
        assert pei["ts"] == 10.0
        assert pei["dur"] == 30.0
        assert pei["args"] == {"block": 5, "on_host": True, "lock_wait": 2.0}

    def test_decide_and_clean_nested_slices(self):
        tracer = PeiTracer()
        tracer.record(PeiTrace(core=0, op="pim.fadd", block=1, on_host=False,
                               issue_time=0.0, grant_time=5.0, completion=50.0,
                               decision_time=8.0, clean_time=20.0,
                               clean_invalidate=True))
        payload = ChromeTraceExporter().export(tracer)
        by_name = {e["name"]: e for e in slices(payload)}
        assert by_name["decide"]["dur"] == 8.0
        assert by_name["clean.invalidate"]["ts"] == 8.0
        assert by_name["clean.invalidate"]["dur"] == 12.0

    def test_memory_pei_gets_vault_slice(self):
        tracer = PeiTracer()
        tracer.record(PeiTrace(core=1, op="pim.fadd", block=35, on_host=False,
                               issue_time=0.0, grant_time=10.0,
                               completion=60.0))
        payload = ChromeTraceExporter(vault_of=lambda block: block % 8) \
            .export(tracer)
        (vault_slice,) = slices(payload, VAULT_PID)
        assert vault_slice["tid"] == 35 % 8
        assert vault_slice["ts"] == 10.0  # starts at grant (no clean)
        assert vault_slice["dur"] == 50.0
        assert vault_slice["args"]["core"] == 1

    def test_vault_slice_starts_after_clean(self):
        tracer = PeiTracer()
        tracer.record(PeiTrace(core=0, op="pim.fadd", block=0, on_host=False,
                               issue_time=0.0, grant_time=10.0,
                               completion=60.0, decision_time=5.0,
                               clean_time=25.0, clean_invalidate=False))
        payload = ChromeTraceExporter(vault_of=lambda block: 0).export(tracer)
        (vault_slice,) = slices(payload, VAULT_PID)
        assert vault_slice["ts"] == 25.0

    def test_no_vault_track_without_address_map(self):
        tracer = PeiTracer()
        tracer.record(PeiTrace(core=0, op="pim.fadd", block=0, on_host=False,
                               issue_time=0.0, grant_time=1.0,
                               completion=2.0))
        payload = ChromeTraceExporter().export(tracer)
        assert slices(payload, VAULT_PID) == []

    def test_fence_slice(self):
        tracer = PeiTracer()
        tracer.record_fence(FenceTrace(core=3, issue_time=100.0,
                                       release_time=140.0))
        payload = ChromeTraceExporter().export(tracer)
        (fence,) = slices(payload)
        assert fence["name"] == "pfence"
        assert fence["tid"] == 3
        assert fence["dur"] == 40.0

    def test_zero_duration_clamped_nonnegative(self):
        tracer = PeiTracer()
        tracer.record(PeiTrace(core=0, op="pim.fadd", block=0, on_host=True,
                               issue_time=5.0, grant_time=5.0,
                               completion=5.0))
        payload = ChromeTraceExporter().export(tracer)
        (pei,) = slices(payload)
        assert pei["dur"] == 0.0

    def test_metadata_names_tracks(self):
        tracer = PeiTracer()
        tracer.record(PeiTrace(core=4, op="pim.fadd", block=9, on_host=False,
                               issue_time=0.0, grant_time=1.0,
                               completion=2.0))
        payload = ChromeTraceExporter(vault_of=lambda block: 9).export(tracer)
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        labels = {(e["name"], e["pid"], e["tid"]): e["args"]["name"]
                  for e in meta}
        assert labels[("process_name", HOST_PID, 0)] == "host cores"
        assert labels[("thread_name", HOST_PID, 4)] == "core 4"
        assert labels[("process_name", VAULT_PID, 0)] == "HMC vaults"
        assert labels[("thread_name", VAULT_PID, 9)] == "vault 9"

    def test_numpy_block_indices_serialize(self):
        # PR/SSSP address arithmetic produces numpy integer blocks; the
        # exporter must coerce them at the JSON boundary.
        numpy = pytest.importorskip("numpy")
        tracer = PeiTracer()
        tracer.record(PeiTrace(core=0, op="pim.fadd",
                               block=numpy.int64(7213256), on_host=False,
                               issue_time=0.0, grant_time=1.0,
                               completion=2.0))
        payload = ChromeTraceExporter(vault_of=lambda block: block % 8) \
            .export(tracer)
        json.dumps(payload)  # must not raise
        (vault_slice,) = slices(payload, VAULT_PID)
        assert type(vault_slice["tid"]) is int
        assert type(vault_slice["args"]["block"]) is int

    def test_dropped_events_recorded(self):
        tracer = PeiTracer(capacity=1)
        for i in range(3):
            tracer.record(PeiTrace(core=0, op="pim.fadd", block=i,
                                   on_host=True, issue_time=0.0,
                                   grant_time=0.0, completion=1.0))
        payload = ChromeTraceExporter().export(tracer)
        assert payload["otherData"]["dropped_events"] == 2


class TestForMachine:
    def test_real_run_produces_vault_tracks(self, tmp_path):
        machine = build_machine(tiny_config(), DispatchPolicy.PIM_ONLY)
        tracer = PeiTracer()
        machine.executor.tracer = tracer
        for i in range(12):
            machine.executor.execute(machine.cores[0], FP_ADD,
                                     VADDR + 64 * i, False)
        machine.executor.fence(machine.cores[0])
        exporter = ChromeTraceExporter.for_machine(machine)
        payload = exporter.export(tracer)
        assert len(slices(payload, VAULT_PID)) == 12  # every PEI went to PIM
        assert "pfence" in names(payload, HOST_PID)
        vaults = {e["tid"] for e in slices(payload, VAULT_PID)}
        assert len(vaults) > 1  # block-interleaved stride spreads vaults
        # The written file passes the schema checker.
        path = tmp_path / "run.trace.json"
        exporter.write(tracer, path)
        assert check_chrome_trace(path) == []
        assert json.loads(path.read_text())["otherData"]["time_unit"] == \
            "host-core cycles"
