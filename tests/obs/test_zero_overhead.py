"""Telemetry must never perturb the simulation.

Hooks only observe — they never return values into the timing model — so a
run with full telemetry attached must produce an identical RunResult to a
bare run of the same workload, and a bare run must carry only the shared
NULL_OBS singleton (no per-run observability allocation).
"""

from repro.core.dispatch import DispatchPolicy
from repro.obs.hooks import NULL_OBS
from repro.obs.telemetry import Telemetry
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.analytics.histogram import Histogram


def run_once(telemetry=None, policy=DispatchPolicy.LOCALITY_AWARE):
    system = System(tiny_config(), policy, telemetry=telemetry)
    return system.run(Histogram(n_values=2000), max_ops_per_thread=300)


class TestZeroOverhead:
    def test_results_identical_with_and_without_telemetry(self):
        bare = run_once()
        instrumented = run_once(telemetry=Telemetry(interval=1_000.0))
        assert instrumented.cycles == bare.cycles
        assert instrumented.instructions == bare.instructions
        assert instrumented.per_core_instructions == \
            bare.per_core_instructions
        assert instrumented.stats == bare.stats
        assert instrumented.energy.total_pj == bare.energy.total_pj

    def test_identical_under_every_policy(self):
        for policy in (DispatchPolicy.HOST_ONLY, DispatchPolicy.PIM_ONLY,
                       DispatchPolicy.LOCALITY_BALANCED):
            bare = run_once(policy=policy)
            instrumented = run_once(telemetry=Telemetry(interval=500.0),
                                    policy=policy)
            assert instrumented.stats == bare.stats, policy

    def test_bare_system_uses_shared_null_obs(self):
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        machine = system.machine
        assert machine.executor.obs is NULL_OBS
        assert machine.pmu.obs is NULL_OBS
        assert machine.hmc.obs is NULL_OBS
        assert machine.hmc.channel.obs is NULL_OBS
        assert all(vault.obs is NULL_OBS for vault in machine.hmc.vaults)
        assert machine.executor.tracer is None

    def test_telemetry_attaches_live_obs_everywhere(self):
        telemetry = Telemetry()
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE,
                        telemetry=telemetry)
        machine = system.machine
        assert machine.executor.obs is telemetry.obs
        assert machine.pmu.obs is telemetry.obs
        assert machine.hmc.obs is telemetry.obs
        assert machine.hmc.channel.obs is telemetry.obs
        assert all(vault.obs is telemetry.obs
                   for vault in machine.hmc.vaults)
        assert machine.executor.tracer is telemetry.tracer
