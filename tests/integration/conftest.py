"""Integration-suite fixtures: the simsan protocol sanitizer.

Every ``System.run`` executed by an integration test is traced and the
resulting event stream is checked against the Section 4.3 protocol
invariants (``repro.analysis.simsan``).  This turns the whole integration
suite into a sanitizer workload for free: any protocol regression —
overlapping writers, a skipped back-invalidation, a pfence releasing too
early — fails the test that triggered it, with the offending trace slice
in the failure message.  Disable with ``pytest --no-simsan`` (e.g. when
bisecting an unrelated failure).
"""

import pytest

from repro.analysis.simsan import sanitize_tracer
from repro.core.tracer import PeiTracer
from repro.system.system import System


@pytest.fixture(autouse=True)
def simsan_guard(request, monkeypatch):
    """Wrap ``System.run`` to sanitize every successful simulated run."""
    if request.config.getoption("--no-simsan"):
        yield
        return

    original_run = System.run

    def run_with_sanitizer(self, *args, **kwargs):
        executor = self.machine.executor
        prior = executor.tracer
        tracer = PeiTracer()
        executor.tracer = tracer
        try:
            result = original_run(self, *args, **kwargs)
        finally:
            executor.tracer = prior
        directory = self.machine.directory
        report = sanitize_tracer(
            tracer,
            operand_buffer_entries=self.config.pcu_operand_buffer_entries,
            directory_entries=None if directory.ideal else directory.entries,
        )
        assert report.ok, f"simsan protocol violation:\n{report.format()}"
        return result

    monkeypatch.setattr(System, "run", run_with_sanitizer)
    yield
