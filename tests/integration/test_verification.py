"""Integration: every workload's functional result is correct end-to-end,
under every dispatch policy — the core PEI contract that the execution
location is invisible to software."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.analytics.hash_join import HashJoin
from repro.workloads.analytics.histogram import Histogram
from repro.workloads.analytics.radix_partition import RadixPartition
from repro.workloads.graph.atf import AverageTeenageFollower
from repro.workloads.graph.bfs import BreadthFirstSearch
from repro.workloads.graph.pagerank import PageRank
from repro.workloads.graph.sssp import SingleSourceShortestPath
from repro.workloads.graph.wcc import WeaklyConnectedComponents
from repro.workloads.ml.streamcluster import Streamcluster
from repro.workloads.ml.svm_rfe import SvmRfe

GRAPH = dict(n_vertices=150, avg_degree=3.0, seed=13)

FACTORIES = {
    "ATF": lambda: AverageTeenageFollower(**GRAPH),
    "BFS": lambda: BreadthFirstSearch(**GRAPH),
    "PR": lambda: PageRank(**GRAPH, iterations=1),
    "SP": lambda: SingleSourceShortestPath(**GRAPH),
    "WCC": lambda: WeaklyConnectedComponents(**GRAPH),
    "HJ": lambda: HashJoin(build_rows=128, probe_rows=256, seed=13),
    "HG": lambda: Histogram(n_values=2000, seed=13),
    "RP": lambda: RadixPartition(n_rows=1024, passes=1, seed=13),
    "SC": lambda: Streamcluster(n_points=48, dims=16, n_centers=4, seed=13),
    "SVM": lambda: SvmRfe(n_instances=12, n_features=16, passes=1, seed=13),
}

POLICIES = [
    DispatchPolicy.IDEAL_HOST,
    DispatchPolicy.HOST_ONLY,
    DispatchPolicy.PIM_ONLY,
    DispatchPolicy.LOCALITY_AWARE,
    DispatchPolicy.LOCALITY_BALANCED,
]


@pytest.mark.parametrize("policy", POLICIES, ids=[p.value for p in POLICIES])
@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_workload_verifies_under_policy(name, policy):
    workload = FACTORIES[name]()
    system = System(tiny_config(), policy)
    result = system.run(workload)
    workload.verify()
    assert result.cycles > 0
    assert result.instructions > 0


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_cache_invariants_after_full_run(name):
    workload = FACTORIES[name]()
    system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
    system.run(workload)
    assert system.hierarchy.check_inclusion() == []
    assert system.hierarchy.check_single_writer() == []
