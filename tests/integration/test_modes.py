"""Integration: qualitative cross-configuration behaviour from Section 7.

These assertions encode the paper's *shape* claims on a miniature machine:
which configuration wins in which locality regime, traffic directions, and
the adaptivity of Locality-Aware.
"""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.graph.pagerank import PageRank
from repro.workloads.analytics.histogram import Histogram

P = DispatchPolicy
CAP = 4000


def run_pr(policy, n_vertices, avg_degree=6.0):
    system = System(tiny_config(), policy)
    workload = PageRank(n_vertices=n_vertices, avg_degree=avg_degree,
                        iterations=3, seed=21)
    return system.run(workload, max_ops_per_thread=CAP)


# tiny_config L3 = 64 KB = 1024 blocks; "cached" PR at 300 vertices (2.4 KB
# of PEI targets), "oversized" at 40000 vertices (320 KB of PEI targets).
CACHED, OVERSIZED = 300, 40_000


class TestLocalityRegimes:
    def test_pim_only_loses_when_data_fits_in_cache(self):
        ideal = run_pr(P.IDEAL_HOST, CACHED)
        pim = run_pr(P.PIM_ONLY, CACHED)
        assert pim.cycles > ideal.cycles

    def test_pim_only_wins_when_data_exceeds_cache(self):
        ideal = run_pr(P.IDEAL_HOST, OVERSIZED)
        pim = run_pr(P.PIM_ONLY, OVERSIZED)
        assert pim.cycles < ideal.cycles

    def test_locality_aware_tracks_host_on_cached_data(self):
        host = run_pr(P.HOST_ONLY, CACHED)
        aware = run_pr(P.LOCALITY_AWARE, CACHED)
        pim = run_pr(P.PIM_ONLY, CACHED)
        assert aware.cycles < pim.cycles
        assert aware.cycles < 1.25 * host.cycles

    def test_locality_aware_tracks_pim_on_oversized_data(self):
        host = run_pr(P.HOST_ONLY, OVERSIZED)
        aware = run_pr(P.LOCALITY_AWARE, OVERSIZED)
        assert aware.cycles < host.cycles

    def test_ideal_host_at_least_as_fast_as_host_only(self):
        for size in (CACHED, OVERSIZED):
            ideal = run_pr(P.IDEAL_HOST, size)
            host = run_pr(P.HOST_ONLY, size)
            assert ideal.cycles <= host.cycles * 1.01


class TestAdaptivity:
    def test_pim_fraction_grows_with_input_size(self):
        """Fig. 8's core claim: offload fraction rises with graph size."""
        small = run_pr(P.LOCALITY_AWARE, CACHED)
        large = run_pr(P.LOCALITY_AWARE, OVERSIZED)
        assert small.pim_fraction < 0.2
        assert large.pim_fraction > 0.5
        assert large.pim_fraction > small.pim_fraction

    def test_host_only_and_pim_only_ignore_monitor(self):
        host = run_pr(P.HOST_ONLY, OVERSIZED)
        pim = run_pr(P.PIM_ONLY, OVERSIZED)
        assert host.pim_fraction == 0.0
        assert pim.pim_fraction == 1.0


class TestOffchipTraffic:
    def test_pim_only_reduces_traffic_on_oversized_data(self):
        """Fig. 7: in-memory execution cuts off-chip transfer for large
        inputs."""
        ideal = run_pr(P.IDEAL_HOST, OVERSIZED)
        pim = run_pr(P.PIM_ONLY, OVERSIZED)
        assert pim.offchip_bytes < ideal.offchip_bytes

    def test_pim_only_inflates_traffic_on_cached_data(self):
        """Fig. 7: always-offloading wastes bandwidth when data is cached."""
        ideal = run_pr(P.IDEAL_HOST, CACHED)
        pim = run_pr(P.PIM_ONLY, CACHED)
        assert pim.offchip_bytes > 2 * ideal.offchip_bytes

    def test_pim_only_inflates_dram_accesses_on_cached_data(self):
        """Section 7.1: PIM-Only always accesses DRAM (17x on small)."""
        ideal = run_pr(P.IDEAL_HOST, CACHED)
        pim = run_pr(P.PIM_ONLY, CACHED)
        assert pim.dram_accesses > 5 * max(ideal.dram_accesses, 1)


class TestEnergy:
    def test_locality_aware_not_worse_than_pim_only_on_cached_data(self):
        """Fig. 12: adaptive execution avoids PIM-Only's DRAM energy blowup
        on cache-resident inputs."""
        aware = run_pr(P.LOCALITY_AWARE, CACHED)
        pim = run_pr(P.PIM_ONLY, CACHED)
        assert aware.energy.total_pj < pim.energy.total_pj


class TestStreamingWorkload:
    def test_histogram_streams_prefer_memory_side(self):
        """HG's single-pass streams have no reuse: the monitor offloads a
        large share even at small sizes (the Section 7.1 'HG excluded'
        remark)."""
        system = System(tiny_config(), P.LOCALITY_AWARE)
        # 4x the tiny L3 so the stream cannot be cache-resident.
        workload = Histogram(n_values=64_000, seed=5)
        result = system.run(workload, max_ops_per_thread=CAP)
        assert result.pim_fraction > 0.5
