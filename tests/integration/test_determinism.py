"""Integration: runs are bit-deterministic given a seed and configuration."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.graph.pagerank import PageRank
from repro.workloads.analytics.hash_join import HashJoin


def run_once(policy, seed):
    system = System(tiny_config(), policy)
    workload = PageRank(n_vertices=200, avg_degree=4.0, iterations=1, seed=seed)
    result = system.run(workload, max_ops_per_thread=3000)
    return result


class TestDeterminism:
    @pytest.mark.parametrize("policy", [DispatchPolicy.LOCALITY_AWARE,
                                        DispatchPolicy.PIM_ONLY])
    def test_cycles_reproducible(self, policy):
        a = run_once(policy, seed=42)
        b = run_once(policy, seed=42)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert a.stats == b.stats

    def test_seed_changes_timing(self):
        a = run_once(DispatchPolicy.LOCALITY_AWARE, seed=1)
        b = run_once(DispatchPolicy.LOCALITY_AWARE, seed=2)
        assert a.cycles != b.cycles

    def test_policy_does_not_change_instruction_stream_work(self):
        # Identical workload, different execution locations: the issued PEI
        # count must match exactly (the op cap cuts identical work).
        a = run_once(DispatchPolicy.HOST_ONLY, seed=42)
        b = run_once(DispatchPolicy.PIM_ONLY, seed=42)
        assert a.stats["pei.issued"] == b.stats["pei.issued"]
        assert a.stats["core.loads"] == b.stats["core.loads"]

    def test_hash_join_deterministic(self):
        results = []
        for _ in range(2):
            system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
            workload = HashJoin(build_rows=256, probe_rows=512, seed=42)
            results.append(system.run(workload).cycles)
        assert results[0] == results[1]
