"""Regression guard: the default single-hop channel and the hop-aware API
agree, so enabling chain modeling only ever adds latency, never changes
traffic accounting or functional behaviour."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.graph.pagerank import PageRank

P = DispatchPolicy


def run(model_chain_hops):
    system = System(tiny_config(model_chain_hops=model_chain_hops), P.PIM_ONLY)
    workload = PageRank(n_vertices=200, avg_degree=4.0, iterations=1, seed=5)
    result = system.run(workload)
    workload.verify()
    return result


class TestChainRegression:
    def test_traffic_identical(self):
        flat, chained = run(False), run(True)
        assert flat.offchip_bytes == chained.offchip_bytes
        assert flat.dram_accesses == chained.dram_accesses

    def test_chain_only_adds_latency(self):
        # Extra hops add latency on average; contention reshuffling under
        # the perturbed timings can shave a hair off, so allow 2% slack.
        flat, chained = run(False), run(True)
        assert chained.cycles >= flat.cycles * 0.98

    def test_zero_hop_latency_nearly_flat(self):
        system = System(
            tiny_config(model_chain_hops=True, chain_hop_latency=0.0),
            P.PIM_ONLY,
        )
        workload = PageRank(n_vertices=200, avg_degree=4.0, iterations=1,
                            seed=5)
        result = system.run(workload)
        flat = run(False)
        # Remaining delta is only per-hop serialization of lightly loaded
        # links: small.
        assert result.cycles <= flat.cycles * 1.10
