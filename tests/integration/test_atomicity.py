"""Integration: PEI atomicity under contention.

Hammers a handful of cache blocks with writer PEIs from every core under a
deliberately tiny (highly aliased) PIM directory, and checks both the
functional outcome and the directory's serialization bookkeeping.
"""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import FP_ADD, INT_INCREMENT
from repro.cpu.trace import Barrier, PFence, Pei
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.base import Workload


class CounterStorm(Workload):
    """Every thread increments every one of a few shared counters."""

    name = "counter-storm"

    def __init__(self, n_counters=4, increments_per_thread=50):
        super().__init__()
        self.n_counters = n_counters
        self.increments = increments_per_thread
        self.counters = None

    def prepare(self, space):
        self.space = space
        self.region = space.alloc("counters", self.n_counters * 64)
        self.counters = [0] * self.n_counters

    def make_threads(self, n_threads):
        def thread(t):
            for i in range(self.increments):
                idx = (t + i) % self.n_counters
                self.counters[idx] += 1  # functional atomic increment
                yield Pei(INT_INCREMENT, self.region.base + idx * 64)
            yield PFence()
            yield Barrier()
        return [thread(t) for t in range(n_threads)]


@pytest.mark.parametrize("policy", [
    DispatchPolicy.HOST_ONLY,
    DispatchPolicy.PIM_ONLY,
    DispatchPolicy.LOCALITY_AWARE,
])
def test_all_increments_accounted(policy):
    system = System(tiny_config(), policy)
    storm = CounterStorm()
    result = system.run(storm)
    assert sum(storm.counters) == 4 * 50
    assert result.peis_executed == 4 * 50


def test_tiny_directory_serializes_but_stays_correct():
    """A 4-entry directory aliases heavily: more conflicts, same results."""
    big = System(tiny_config(), DispatchPolicy.HOST_ONLY)
    small = System(tiny_config(pim_directory_entries=4),
                   DispatchPolicy.HOST_ONLY)
    result_big = big.run(CounterStorm(n_counters=16))
    result_small = small.run(CounterStorm(n_counters=16))
    assert result_small.stats.get("pim_directory.conflicts", 0) >= \
        result_big.stats.get("pim_directory.conflicts", 0)
    # Aliasing costs time, never correctness.
    assert result_small.cycles >= result_big.cycles * 0.99


def test_contended_block_serializes_writers():
    """All threads hammering ONE block: runtime reflects serialization."""
    contended = System(tiny_config(), DispatchPolicy.HOST_ONLY)
    spread = System(tiny_config(), DispatchPolicy.HOST_ONLY)
    one = contended.run(CounterStorm(n_counters=1, increments_per_thread=100))
    many = spread.run(CounterStorm(n_counters=64, increments_per_thread=100))
    assert one.cycles > many.cycles


def test_fp_add_storm_is_exact():
    """Floating-point adds commute here (equal addends): exact totals."""

    class FpStorm(CounterStorm):
        def make_threads(self, n_threads):
            def thread(t):
                for i in range(self.increments):
                    idx = (t + i) % self.n_counters
                    self.counters[idx] += 0.5
                    yield Pei(FP_ADD, self.region.base + idx * 64)
                yield PFence()
                yield Barrier()
            return [thread(t) for t in range(n_threads)]

    system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
    storm = FpStorm()
    system.run(storm)
    assert sum(storm.counters) == pytest.approx(4 * 50 * 0.5)
