"""Self-validation: every seeded protocol defect must be killed.

This is the acceptance criterion for the checker itself — a harness that
cannot detect a dropped handoff penalty or a skipped back-invalidation
would pass silently on a broken simulator too.
"""

from repro.verify.mutants import MUTANTS, run_mutants


class TestCatalogue:
    def test_at_least_five_mutants(self):
        assert len(MUTANTS) >= 5

    def test_names_are_unique_and_described(self):
        names = [mutant.name for mutant in MUTANTS]
        assert len(names) == len(set(names))
        for mutant in MUTANTS:
            assert mutant.description

    def test_catalogue_covers_both_layers(self):
        # Directory-timing defects and machine-level coherence defects.
        assert any(mutant.needs_machine for mutant in MUTANTS)
        assert any(not mutant.needs_machine for mutant in MUTANTS)


class TestKills:
    def test_every_mutant_is_killed(self):
        report = run_mutants()
        assert report.ok, report.summary()
        assert len(report.outcomes) == len(MUTANTS)
        for outcome in report.outcomes:
            assert outcome.killed, outcome.describe()
            assert outcome.codes  # at least one VER/SAN code fired


class TestBaselineStillClean:
    def test_unmutated_simulator_passes_kill_bounds(self):
        # The mutant harness's own bounds must be green on the real code,
        # or a kill would be indistinguishable from a flaky bound.
        from repro.verify.differential import run_all
        from repro.verify.mutants import kill_bounds
        assert run_all(kill_bounds()).ok
