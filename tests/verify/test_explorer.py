"""Tests for the bounded exhaustive explorer and its invariant checks."""

from repro.verify.explorer import (
    ExploreReport,
    Violation,
    check_invariants,
    explore,
    replay,
)
from repro.verify.schedule import (
    DirectoryCase,
    ExploreBounds,
    FENCE,
    PeiStep,
    Schedule,
    count_schedules,
    enumerate_schedules,
)

TINY = ExploreBounds(max_peis=2, n_blocks=2, durations=(3.0,),
                     strides=(0.0, 7.0), include_fences=True,
                     include_memory_side=True)

CASE = DirectoryCase(name="unit", entries=4, latency=2.0,
                     handoff_penalty=10.0, ideal=False, blocks=(1, 4))


def writer(block=0, host=True, duration=3.0):
    return PeiStep(is_writer=True, on_host=host, block=block,
                   duration=duration)


def reader(block=0, host=True, duration=3.0):
    return PeiStep(is_writer=False, on_host=host, block=block,
                   duration=duration)


class TestEnumeration:
    def test_count_matches_enumeration(self):
        schedules = list(enumerate_schedules(TINY))
        assert len(schedules) == count_schedules(TINY)

    def test_every_stride_appears(self):
        strides = {sched.stride for sched in enumerate_schedules(TINY)}
        assert strides == {0.0, 7.0}

    def test_fences_can_be_excluded(self):
        bare = ExploreBounds(max_peis=2, n_blocks=2, durations=(3.0,),
                             strides=(0.0,), include_fences=False)
        for sched in enumerate_schedules(bare):
            assert FENCE not in sched.steps


class TestReplay:
    def test_contended_writers_serialize_with_handoff(self):
        sched = Schedule(steps=(writer(), writer()), stride=0.0)
        result = replay(CASE, sched, memory_lead=6.0)
        first, second = result.peis
        assert first.grant == 2.0            # issue + latency
        assert first.completion == 5.0
        assert second.grant == 15.0          # completion + handoff
        assert check_invariants(CASE, sched, result) == []

    def test_memory_side_occupancy_includes_lead(self):
        sched = Schedule(steps=(writer(host=False),), stride=0.0)
        result = replay(CASE, sched, memory_lead=6.0)
        assert result.peis[0].completion == result.peis[0].grant + 9.0

    def test_fence_waits_for_writer(self):
        sched = Schedule(steps=(writer(), FENCE), stride=0.0)
        result = replay(CASE, sched, memory_lead=6.0)
        assert result.fences[0].release >= result.peis[0].completion


class TestInvariants:
    def test_overlapping_writers_fire_ver001(self):
        sched = Schedule(steps=(writer(), writer()), stride=0.0)
        result = replay(CASE, sched, memory_lead=6.0)
        # Tamper: pull the second writer's grant inside the first's window.
        tampered = result.peis[1]
        result.peis[1] = type(tampered)(
            step_index=tampered.step_index, step=tampered.step,
            block=tampered.block, entry=tampered.entry,
            issue=tampered.issue, grant=3.0, completion=6.0)
        codes = {v.code for v in check_invariants(CASE, sched, result)}
        assert "VER001" in codes

    def test_early_grant_fires_ver004(self):
        sched = Schedule(steps=(writer(),), stride=0.0)
        result = replay(CASE, sched, memory_lead=6.0)
        pei = result.peis[0]
        result.peis[0] = type(pei)(
            step_index=pei.step_index, step=pei.step, block=pei.block,
            entry=pei.entry, issue=pei.issue, grant=0.5, completion=3.5)
        codes = {v.code for v in check_invariants(CASE, sched, result)}
        assert "VER004" in codes

    def test_fence_below_writer_completion_fires_ver005(self):
        sched = Schedule(steps=(writer(), FENCE), stride=0.0)
        result = replay(CASE, sched, memory_lead=6.0)
        fence = result.fences[0]
        result.fences[0] = type(fence)(step_index=fence.step_index,
                                       issue=fence.issue, release=1.0)
        codes = {v.code for v in check_invariants(CASE, sched, result)}
        assert "VER005" in codes


class TestExplore:
    def test_tiny_sweep_is_clean(self):
        report = explore(TINY)
        assert report.ok, report.summary()
        assert report.schedules == count_schedules(TINY)
        assert report.replays > report.schedules  # several geometries each

    def test_report_caps_kept_violations(self):
        report = ExploreReport(max_kept=2)
        for i in range(5):
            report.record([Violation(code="VER001", case="c",
                                     schedule=f"s{i}", detail="d")])
        assert len(report.violations) == 2
        assert report.by_code["VER001"] == 5
        assert not report.ok
