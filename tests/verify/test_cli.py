"""Smoke tests for the ``python -m repro.verify`` command-line driver."""

from repro.verify.__main__ import main


class TestVerifyCli:
    def test_explore_tiny_bound_passes(self, capsys):
        status = main(["explore", "--max-peis", "2", "--durations", "3",
                       "--strides", "0", "--no-fences"])
        out = capsys.readouterr().out
        assert status == 0
        assert "PASS" in out

    def test_diff_tiny_bound_passes(self, capsys):
        status = main(["diff", "--max-peis", "2", "--durations", "3",
                       "--strides", "0", "--no-fences"])
        assert status == 0
        assert "explore+diff" in capsys.readouterr().out

    def test_mutants_pass_and_are_listed(self, capsys):
        status = main(["mutants"])
        out = capsys.readouterr().out
        assert status == 0
        assert "KILLED" in out and "SURVIVED" not in out
