"""Unit tests for the golden reference model (paper-literal protocol)."""

import pytest

from repro.verify.golden import (
    GoldenCacheState,
    GoldenDirectory,
    GoldenEntry,
    GoldenError,
)


def make_directory(latency=2.0, handoff=10.0, ideal=False, entries=4):
    return GoldenDirectory(index_fn=lambda block: block % entries,
                           entries=entries, latency=latency,
                           handoff_penalty=handoff, ideal=ideal)


class TestAdmission:
    def test_uncontended_pei_granted_at_arrival(self):
        d = make_directory()
        record = d.admit_pei(block=1, is_writer=True, issue=10.0,
                             occupancy=5.0)
        assert record.grant == 12.0          # issue + directory latency
        assert record.completion == 17.0
        assert not record.blocked

    def test_reader_blocks_behind_writer_with_handoff(self):
        d = make_directory(latency=0.0)
        d.admit_pei(block=1, is_writer=True, issue=0.0, occupancy=50.0)
        record = d.admit_pei(block=1, is_writer=False, issue=1.0,
                             occupancy=5.0)
        assert record.blocked
        assert record.grant == 60.0          # writer completion + handoff

    def test_readers_share_the_entry(self):
        d = make_directory(latency=0.0)
        d.admit_pei(block=1, is_writer=False, issue=0.0, occupancy=50.0)
        record = d.admit_pei(block=1, is_writer=False, issue=1.0,
                             occupancy=5.0)
        assert not record.blocked
        assert record.grant == 1.0

    def test_writer_waits_for_readers(self):
        d = make_directory(latency=0.0)
        d.admit_pei(block=1, is_writer=False, issue=0.0, occupancy=30.0)
        d.admit_pei(block=1, is_writer=False, issue=0.0, occupancy=80.0)
        record = d.admit_pei(block=1, is_writer=True, issue=1.0,
                             occupancy=5.0)
        assert record.blocked
        assert record.grant == 90.0          # latest reader + handoff

    def test_aliased_blocks_serialize(self):
        d = make_directory(latency=0.0, entries=4)
        d.admit_pei(block=1, is_writer=True, issue=0.0, occupancy=50.0)
        record = d.admit_pei(block=5, is_writer=True, issue=1.0,
                             occupancy=5.0)
        assert record.blocked                # 1 and 5 fold onto entry 1

    def test_ideal_directory_has_no_latency(self):
        d = make_directory(latency=2.0, ideal=True)
        record = d.admit_pei(block=1, is_writer=True, issue=10.0,
                             occupancy=5.0)
        assert record.grant == 10.0

    def test_index_escaping_table_raises(self):
        d = GoldenDirectory(index_fn=lambda block: 99, entries=4,
                            latency=0.0, handoff_penalty=0.0)
        with pytest.raises(GoldenError):
            d.admit_pei(block=1, is_writer=True, issue=0.0, occupancy=1.0)


class TestFenceSemantics:
    def test_fence_covers_writers(self):
        d = make_directory(latency=0.0)
        d.admit_pei(block=1, is_writer=True, issue=0.0, occupancy=100.0)
        assert d.fence(issue=10.0).release == 100.0

    def test_fence_ignores_readers(self):
        d = make_directory(latency=0.0)
        d.admit_pei(block=1, is_writer=False, issue=0.0, occupancy=100.0)
        assert d.fence(issue=10.0).release == 10.0

    def test_fence_pays_directory_latency(self):
        d = make_directory(latency=2.0)
        assert d.fence(issue=10.0).release == 12.0

    def test_quiesce_includes_readers(self):
        d = make_directory(latency=0.0)
        d.admit_pei(block=1, is_writer=False, issue=0.0, occupancy=100.0)
        assert d.quiesce(issue=10.0) == 100.0


class TestCounterWidths:
    def test_two_overlapping_writers_overflow_the_writer_bit(self):
        entry = GoldenEntry()
        entry.admit(is_writer=True, grant=0.0, completion=100.0)
        with pytest.raises(GoldenError):
            entry.admit(is_writer=True, grant=50.0, completion=150.0)

    def test_writer_over_readers_is_rejected(self):
        entry = GoldenEntry()
        entry.admit(is_writer=False, grant=0.0, completion=100.0)
        with pytest.raises(GoldenError):
            entry.admit(is_writer=True, grant=50.0, completion=150.0)

    def test_reader_during_writer_is_rejected(self):
        entry = GoldenEntry()
        entry.admit(is_writer=True, grant=0.0, completion=100.0)
        with pytest.raises(GoldenError):
            entry.admit(is_writer=False, grant=50.0, completion=150.0)

    def test_serialized_occupants_are_fine(self):
        entry = GoldenEntry()
        entry.admit(is_writer=True, grant=0.0, completion=100.0)
        entry.admit(is_writer=False, grant=100.0, completion=200.0)
        entry.admit(is_writer=True, grant=200.0, completion=300.0)


class TestCacheState:
    def test_cold_block_needs_nothing(self):
        state = GoldenCacheState()
        expectation = state.expect_clean(is_writer=True)
        assert not expectation.touches_hierarchy
        assert not expectation.must_write_back
        assert expectation.expected_stat() is None

    def test_writer_invalidates_shared_clean_copy(self):
        state = GoldenCacheState()
        state.host_access(is_write=False)
        expectation = state.expect_clean(is_writer=True)
        assert expectation.touches_hierarchy and expectation.invalidates
        assert not expectation.must_write_back
        assert not expectation.present_after
        assert expectation.expected_stat() == (
            "pmu.back_invalidations", "pmu.back_writebacks")
        assert not state.present

    def test_reader_writes_back_dirty_copy_but_keeps_it(self):
        state = GoldenCacheState()
        state.host_access(is_write=True)
        expectation = state.expect_clean(is_writer=False)
        assert expectation.must_write_back
        assert expectation.present_after
        assert expectation.expected_stat() == (
            "pmu.back_writebacks", "pmu.back_invalidations")
        assert state.present and state.memory_fresh

    def test_memory_fresh_after_any_clean(self):
        state = GoldenCacheState()
        state.host_access(is_write=True)
        assert not state.memory_fresh
        state.expect_clean(is_writer=True)
        assert state.memory_fresh
