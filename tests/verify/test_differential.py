"""Tests for the differential checker (real directory vs. golden model)."""

from repro.verify.differential import diff_schedule, golden_index_fn, run_all
from repro.verify.explorer import replay
from repro.verify.schedule import (
    DirectoryCase,
    ExploreBounds,
    PeiStep,
    Schedule,
)

TINY = ExploreBounds(max_peis=2, n_blocks=2, durations=(3.0,),
                     strides=(0.0, 7.0))

CASE = DirectoryCase(name="unit", entries=4, latency=2.0,
                     handoff_penalty=10.0, ideal=False, blocks=(1, 4))

MEMORY_LEAD = 6.0


def writer(block=0):
    return PeiStep(is_writer=True, on_host=True, block=block, duration=3.0)


class TestGoldenIndex:
    def test_matches_real_directory(self):
        from repro.verify.explorer import build_directory
        directory = build_directory(CASE)
        fn = golden_index_fn(CASE)
        for block in (0, 1, 4, 5, 1023, 2**20 + 7):
            assert fn(block) == directory.index_of(block)


class TestDiff:
    def test_faithful_replay_diffs_clean(self):
        sched = Schedule(steps=(writer(0), writer(1), writer(0)), stride=7.0)
        result = replay(CASE, sched, MEMORY_LEAD)
        assert diff_schedule(CASE, sched, result, MEMORY_LEAD) == []

    def test_tampered_grant_fires_ver007(self):
        sched = Schedule(steps=(writer(0), writer(0)), stride=0.0)
        result = replay(CASE, sched, MEMORY_LEAD)
        pei = result.peis[1]
        result.peis[1] = type(pei)(
            step_index=pei.step_index, step=pei.step, block=pei.block,
            entry=pei.entry, issue=pei.issue,
            grant=pei.grant + 1.0, completion=pei.completion + 1.0)
        codes = {v.code for v in diff_schedule(CASE, sched, result,
                                               MEMORY_LEAD)}
        assert "VER007" in codes

    def test_wrong_entry_fires_ver007(self):
        sched = Schedule(steps=(writer(0),), stride=0.0)
        result = replay(CASE, sched, MEMORY_LEAD)
        pei = result.peis[0]
        result.peis[0] = type(pei)(
            step_index=pei.step_index, step=pei.step, block=pei.block,
            entry=(pei.entry + 1) % CASE.entries, issue=pei.issue,
            grant=pei.grant, completion=pei.completion)
        codes = {v.code for v in diff_schedule(CASE, sched, result,
                                               MEMORY_LEAD)}
        assert "VER007" in codes

    def test_protocol_breaking_timeline_fires_ver008(self):
        # Two writers granted concurrently cannot be admitted by the golden
        # entry at all: that is a VER008 (golden admission failure).
        sched = Schedule(steps=(writer(0), writer(0)), stride=0.0)
        result = replay(CASE, sched, MEMORY_LEAD)
        pei = result.peis[1]
        result.peis[1] = type(pei)(
            step_index=pei.step_index, step=pei.step, block=pei.block,
            entry=pei.entry, issue=pei.issue,
            grant=result.peis[0].grant, completion=result.peis[0].completion)
        codes = {v.code for v in diff_schedule(CASE, sched, result,
                                               MEMORY_LEAD)}
        assert codes & {"VER007", "VER008"}


class TestSweep:
    def test_tiny_differential_sweep_is_clean(self):
        report = run_all(TINY)
        assert report.ok, report.summary()
        assert report.schedules > 0
