"""Functional tests for the machine-learning workloads."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import DOT_PRODUCT, EUCLIDEAN_DIST
from repro.cpu.trace import KIND_PEI
from repro.system.config import tiny_config
from repro.system.system import System
from repro.vm.address_space import AddressSpace
from repro.workloads.ml.streamcluster import Streamcluster
from repro.workloads.ml.svm_rfe import SvmRfe


def run(workload, policy=DispatchPolicy.LOCALITY_AWARE):
    system = System(tiny_config(), policy)
    return system, system.run(workload)


class TestStreamcluster:
    def test_verify(self):
        w = Streamcluster(n_points=64, dims=16, n_centers=4, seed=2)
        run(w)
        w.verify()

    def test_verify_under_pim_only(self):
        w = Streamcluster(n_points=64, dims=16, n_centers=4, seed=2)
        run(w, DispatchPolicy.PIM_ONLY)
        w.verify()

    def test_assignments_in_range(self):
        w = Streamcluster(n_points=64, dims=16, n_centers=4)
        run(w)
        assert ((w.assignments >= 0) & (w.assignments < 4)).all()

    def test_one_pei_per_chunk_per_center(self):
        w = Streamcluster(n_points=32, dims=32, n_centers=2)
        w.prepare(AddressSpace())
        peis = [op for op in w.make_threads(1)[0] if op.kind == KIND_PEI]
        # 32 points x 2 chunks x 2 centers.
        assert len(peis) == 32 * 2 * 2
        assert all(op.op is EUCLIDEAN_DIST for op in peis)

    def test_pei_targets_point_region(self):
        w = Streamcluster(n_points=16, dims=16, n_centers=2)
        space = AddressSpace()
        w.prepare(space)
        region = space.regions["sc.points"]
        for op in w.make_threads(1)[0]:
            if op.kind == KIND_PEI:
                assert region.base <= op.addr < region.end

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Streamcluster(n_points=32, dims=20)
        with pytest.raises(ValueError):
            Streamcluster(n_points=4, dims=16, n_centers=8)


class TestSvmRfe:
    def test_verify(self):
        w = SvmRfe(n_instances=16, n_features=32, passes=1, seed=8)
        run(w)
        w.verify()

    def test_verify_under_pim_only(self):
        w = SvmRfe(n_instances=16, n_features=32, passes=2, seed=8)
        run(w, DispatchPolicy.PIM_ONLY)
        w.verify()

    def test_pei_count(self):
        w = SvmRfe(n_instances=8, n_features=16, passes=2)
        w.prepare(AddressSpace())
        peis = [op for op in w.make_threads(1)[0] if op.kind == KIND_PEI]
        # 8 instances x 4 chunks x 2 passes.
        assert len(peis) == 8 * 4 * 2
        assert all(op.op is DOT_PRODUCT for op in peis)

    def test_chunk_addresses_32_byte_aligned(self):
        w = SvmRfe(n_instances=4, n_features=16)
        w.prepare(AddressSpace())
        for op in w.make_threads(1)[0]:
            if op.kind == KIND_PEI:
                assert op.addr % 32 == 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SvmRfe(n_instances=4, n_features=10)  # not multiple of 4
        with pytest.raises(ValueError):
            SvmRfe(n_instances=0, n_features=16)
