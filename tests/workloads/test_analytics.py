"""Functional tests for the in-memory data analytics workloads."""

import numpy as np
import pytest

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import HASH_PROBE, HISTOGRAM_BIN
from repro.cpu.trace import KIND_PEI
from repro.system.config import tiny_config
from repro.system.system import System
from repro.vm.address_space import AddressSpace
from repro.workloads.analytics.hash_join import HashJoin, bucket_hash
from repro.workloads.analytics.histogram import Histogram
from repro.workloads.analytics.radix_partition import RadixPartition


def run(workload, policy=DispatchPolicy.LOCALITY_AWARE):
    system = System(tiny_config(), policy)
    result = system.run(workload)
    return system, result


class TestHashJoin:
    def test_verify_small(self):
        w = HashJoin(build_rows=256, probe_rows=512, seed=9)
        run(w)
        w.verify()

    def test_verify_under_pim_only(self):
        w = HashJoin(build_rows=256, probe_rows=512, seed=9)
        run(w, DispatchPolicy.PIM_ONLY)
        w.verify()

    def test_match_rate_near_half(self):
        # Probe keys are drawn over twice the build key range.
        w = HashJoin(build_rows=512, probe_rows=2048, seed=3)
        run(w)
        assert 0.3 < w.matches / w.probe_rows < 0.7

    def test_bucket_hash_within_mask(self):
        for key in (0, 1, 123456789):
            assert 0 <= bucket_hash(key, 1023) <= 1023

    def test_probe_peis_chained(self):
        w = HashJoin(build_rows=128, probe_rows=64)
        w.prepare(AddressSpace())
        peis = [op for op in w.make_threads(1)[0] if op.kind == KIND_PEI]
        assert peis
        assert all(op.op is HASH_PROBE for op in peis)
        assert all(op.chain is not None for op in peis)

    def test_chains_stop_at_match(self):
        w = HashJoin(build_rows=128, probe_rows=1)
        w.prepare(AddressSpace())
        key = int(w.s_keys[0])
        chain = w._chain_for(key)
        if key in w._r_keyset:
            # The last node visited contains the key.
            b = bucket_hash(key, w._bucket_mask)
            assert key in w._node_keys[b][len(chain) - 1]

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            HashJoin(build_rows=0)


class TestHistogram:
    def test_verify(self):
        w = Histogram(n_values=5000, seed=4)
        run(w)
        w.verify()

    def test_bins_sum_to_input_count(self):
        w = Histogram(n_values=5000)
        run(w)
        assert w.histogram.sum() == 5000

    def test_one_pei_per_block(self):
        w = Histogram(n_values=1024)
        w.prepare(AddressSpace())
        threads = w.make_threads(2)
        peis = [op for g in threads for op in g if op.kind == KIND_PEI]
        assert len(peis) == w.n_blocks
        assert all(op.op is HISTOGRAM_BIN for op in peis)

    def test_pei_addresses_block_aligned(self):
        w = Histogram(n_values=1024)
        w.prepare(AddressSpace())
        for op in w.make_threads(1)[0]:
            if op.kind == KIND_PEI:
                assert op.addr % 64 == 0

    def test_rejects_bad_shift(self):
        with pytest.raises(ValueError):
            Histogram(n_values=100, shift=30)
        with pytest.raises(ValueError):
            Histogram(n_values=0)


class TestRadixPartition:
    def test_verify(self):
        w = RadixPartition(n_rows=2048, passes=2, seed=5)
        run(w)
        w.verify()

    def test_verify_under_pim_only(self):
        w = RadixPartition(n_rows=2048, passes=1, seed=5)
        run(w, DispatchPolicy.PIM_ONLY)
        w.verify()

    def test_output_is_permutation_of_input(self):
        w = RadixPartition(n_rows=1024, passes=1)
        run(w)
        assert sorted(w.output) == sorted(w.keys)

    def test_partitions_are_contiguous_and_ordered(self):
        w = RadixPartition(n_rows=1024, passes=1)
        run(w)
        bins = w._bins(w.output)
        assert (np.diff(bins) >= 0).all()

    def test_passes_multiply_peis(self):
        counts = []
        for passes in (1, 2):
            w = RadixPartition(n_rows=512, passes=passes)
            _, result = run(w)
            counts.append(result.stats["pei.issued"])
        assert counts[1] == 2 * counts[0]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RadixPartition(n_rows=0)
        with pytest.raises(ValueError):
            RadixPartition(n_rows=16, passes=0)
