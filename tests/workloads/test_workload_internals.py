"""Deeper tests of workload-internal mechanisms: frontier caching, round
bookkeeping, hash-table geometry, partition cursor math, chunk schedules."""

import numpy as np
import pytest

from repro.vm.address_space import AddressSpace
from repro.workloads.analytics.hash_join import (
    KEYS_PER_NODE,
    HashJoin,
    bucket_hash,
)
from repro.workloads.analytics.radix_partition import RadixPartition
from repro.workloads.base import ThreadChunks
from repro.workloads.graph.bfs import BreadthFirstSearch
from repro.workloads.graph.graph import CsrGraph
from repro.workloads.graph.layout import GraphLayout, GraphWorkloadBase
from repro.workloads.graph.sssp import SingleSourceShortestPath


class TestThreadChunks:
    def test_covers_everything_once(self):
        chunks = ThreadChunks(103, 8)
        seen = []
        for t in range(8):
            seen.extend(chunks.range(t))
        assert seen == list(range(103))

    def test_balanced_within_one(self):
        chunks = ThreadChunks(103, 8)
        sizes = [chunks.end(t) - chunks.start(t) for t in range(8)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_threads_than_items(self):
        chunks = ThreadChunks(2, 8)
        total = sum(len(chunks.range(t)) for t in range(8))
        assert total == 2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ThreadChunks(10, 0)
        with pytest.raises(ValueError):
            ThreadChunks(-1, 4)


class TestGraphLayout:
    def make(self):
        graph = CsrGraph.from_edges(4, [0, 1], [1, 2],
                                    weights=np.array([3, 4]))
        space = AddressSpace()
        return GraphLayout(space, graph, ("level",)), space

    def test_regions_allocated(self):
        layout, space = self.make()
        assert "graph.indptr" in space.regions
        assert "graph.indices" in space.regions
        assert "graph.weights" in space.regions
        assert "prop.level" in space.regions

    def test_addresses_are_8_byte_strided(self):
        layout, _ = self.make()
        assert layout.prop_addr("level", 1) - layout.prop_addr("level", 0) == 8
        assert layout.edge_addr(1) - layout.edge_addr(0) == 8
        assert layout.indptr_addr(2) - layout.indptr_addr(0) == 16

    def test_addresses_within_regions(self):
        layout, space = self.make()
        region = space.regions["prop.level"]
        for v in range(4):
            assert region.base <= layout.prop_addr("level", v) < region.end


class TestBfsInternals:
    def make(self):
        # 0 -> 1 -> 2, 0 -> 3
        graph = CsrGraph.from_edges(5, [0, 1, 0], [1, 2, 3])
        w = BreadthFirstSearch(graph=graph, source=0)
        w.prepare(AddressSpace())
        return w

    def test_frontier_cache_by_depth(self):
        w = self.make()
        assert list(w._frontier(0)) == [0]
        # Simulate discovering depth-1 vertices.
        w.level[1] = 1
        w.level[3] = 1
        assert sorted(w._frontier(1)) == [1, 3]
        # Cached: later level changes do not alter an already-built frontier.
        w.level[4] = 1
        assert sorted(w._frontier(1)) == [1, 3]

    def test_empty_frontier_terminates(self):
        w = self.make()
        assert len(w._frontier(7)) == 0


class TestSsspInternals:
    def test_active_set_round_bookkeeping(self):
        graph = CsrGraph.from_edges(3, [0, 1], [1, 2],
                                    weights=np.array([5, 5]))
        w = SingleSourceShortestPath(graph=graph, source=0)
        w.prepare(AddressSpace())
        assert list(w._active_for(0)) == [0]
        w.distance[1] = 5
        w._changed_round[1] = 1
        assert list(w._active_for(1)) == [1]
        # Cached.
        w._changed_round[2] = 1
        assert list(w._active_for(1)) == [1]


class TestHashJoinGeometry:
    def test_bucket_count_is_power_of_two_with_headroom(self):
        w = HashJoin(build_rows=1000, probe_rows=10)
        w.prepare(AddressSpace())
        assert w.n_buckets & (w.n_buckets - 1) == 0
        assert w.n_buckets * KEYS_PER_NODE >= 2 * w.build_rows

    def test_every_build_key_findable(self):
        w = HashJoin(build_rows=500, probe_rows=10, seed=3)
        w.prepare(AddressSpace())
        for key in w.r_keys[:100]:
            chain = w._chain_for(int(key))
            b = bucket_hash(int(key), w._bucket_mask)
            assert int(key) in w._node_keys[b][len(chain) - 1]

    def test_chain_nodes_hold_at_most_four_keys(self):
        w = HashJoin(build_rows=500, probe_rows=10)
        w.prepare(AddressSpace())
        for nodes in w._node_keys.values():
            assert all(len(node) <= KEYS_PER_NODE for node in nodes)

    def test_node_addresses_block_aligned_and_unique(self):
        w = HashJoin(build_rows=500, probe_rows=10)
        w.prepare(AddressSpace())
        addrs = [a for chain in w._node_addrs.values() for a in chain]
        assert len(addrs) == len(set(addrs))
        assert all(a % 64 == 0 for a in addrs)


class TestRadixPartitionCursors:
    def test_cursor_plan_is_exclusive_prefix_sum(self):
        w = RadixPartition(n_rows=1024, passes=1, seed=6)
        w.prepare(AddressSpace())
        threads = w.make_threads(4)
        # Exhaust generators to fill the output.
        for gen in threads:
            for _ in gen:
                pass
        # Every row landed exactly once.
        assert sorted(w.output) == sorted(w.keys)


class TestGraphBaseChunking:
    def test_chunk_of_partitions_array(self):
        items = np.arange(10)
        parts = [GraphWorkloadBase.chunk_of(items, t, 3) for t in range(3)]
        assert np.concatenate(parts).tolist() == list(range(10))
