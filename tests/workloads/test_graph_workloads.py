"""Functional tests for the five graph workloads.

Each workload runs end-to-end on a miniature system under a locality-aware
policy and must produce bit-identical results to its reference algorithm —
the simulator's execution location must never change the answer.
"""

import numpy as np
import pytest

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import FP_ADD, INT_INCREMENT, INT_MIN
from repro.cpu.trace import KIND_BARRIER, KIND_FENCE, KIND_PEI
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.graph.atf import AverageTeenageFollower
from repro.workloads.graph.bfs import INFINITY, BreadthFirstSearch
from repro.workloads.graph.pagerank import PageRank
from repro.workloads.graph.sssp import SingleSourceShortestPath
from repro.workloads.graph.wcc import WeaklyConnectedComponents

TINY = dict(n_vertices=200, avg_degree=4.0, seed=11)


def run(workload, policy=DispatchPolicy.LOCALITY_AWARE, **kwargs):
    system = System(tiny_config(), policy)
    result = system.run(workload, **kwargs)
    return system, result


@pytest.mark.parametrize("policy", [
    DispatchPolicy.IDEAL_HOST,
    DispatchPolicy.PIM_ONLY,
    DispatchPolicy.LOCALITY_AWARE,
])
class TestFunctionalAcrossPolicies:
    """Execution location never changes results (the PEI contract)."""

    def test_atf(self, policy):
        w = AverageTeenageFollower(**TINY)
        run(w, policy)
        w.verify()

    def test_pagerank(self, policy):
        w = PageRank(**TINY, iterations=2)
        run(w, policy)
        w.verify()

    def test_bfs(self, policy):
        w = BreadthFirstSearch(**TINY)
        run(w, policy)
        w.verify()


class TestAtf:
    def test_follower_counts_nonnegative(self):
        w = AverageTeenageFollower(**TINY)
        run(w)
        assert (w.followers >= 0).all()
        assert w.followers.sum() > 0

    def test_uses_increment_pei(self):
        w = AverageTeenageFollower(**TINY)
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        space_ops = []
        w.prepare(__import__("repro.vm.address_space", fromlist=["AddressSpace"]).AddressSpace())
        for op in w.make_threads(1)[0]:
            if op.kind == KIND_PEI:
                space_ops.append(op)
        assert space_ops
        assert all(op.op is INT_INCREMENT for op in space_ops)

    def test_fence_before_barrier(self):
        w = AverageTeenageFollower(**TINY)
        from repro.vm.address_space import AddressSpace
        w.prepare(AddressSpace())
        kinds = [op.kind for op in w.make_threads(1)[0]]
        assert kinds[-2:] == [KIND_FENCE, KIND_BARRIER]


class TestBfs:
    def test_source_level_zero(self):
        w = BreadthFirstSearch(**TINY, source=3)
        run(w)
        assert w.level[3] == 0

    def test_unreachable_stay_infinite(self):
        # Vertex 1 unreachable from vertex 0 in a two-vertex edgeless pair.
        from repro.workloads.graph.graph import CsrGraph
        g = CsrGraph.from_edges(4, [0], [1])
        w = BreadthFirstSearch(graph=g, source=0)
        run(w)
        assert w.level[1] == 1
        assert w.level[2] == INFINITY
        w.verify()

    def test_rejects_bad_source(self):
        w = BreadthFirstSearch(**TINY, source=10_000)
        with pytest.raises(ValueError):
            run(w)

    def test_min_pei_used(self):
        w = BreadthFirstSearch(**TINY)
        from repro.vm.address_space import AddressSpace
        w.prepare(AddressSpace())
        peis = [op for op in w.make_threads(1)[0] if op.kind == KIND_PEI]
        assert peis and all(op.op is INT_MIN for op in peis)


class TestPageRank:
    def test_ranks_sum_to_one(self):
        w = PageRank(**TINY, iterations=3)
        run(w)
        # Ranks form a probability-like distribution over vertices (the
        # dangling-vertex mass keeps the sum near one at low iteration
        # counts because every vertex has out-degree >= 1).
        assert w.pagerank.sum() == pytest.approx(1.0, abs=0.05)

    def test_verify_across_iterations(self):
        for iterations in (1, 2):
            w = PageRank(**TINY, iterations=iterations)
            run(w)
            w.verify()

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            PageRank(**TINY, iterations=0)

    def test_uses_fp_add(self):
        w = PageRank(**TINY, iterations=1)
        from repro.vm.address_space import AddressSpace
        w.prepare(AddressSpace())
        peis = [op for op in w.make_threads(1)[0] if op.kind == KIND_PEI]
        assert peis and all(op.op is FP_ADD for op in peis)


class TestSssp:
    def test_distances_verify(self):
        w = SingleSourceShortestPath(**TINY)
        run(w)
        w.verify()

    def test_source_distance_zero(self):
        w = SingleSourceShortestPath(**TINY, source=5)
        run(w)
        assert w.distance[5] == 0

    def test_triangle_inequality_on_edges(self):
        w = SingleSourceShortestPath(**TINY)
        run(w)
        g = w.graph
        for v in range(g.n_vertices):
            dv = w.distance[v]
            if dv >= np.iinfo(np.int64).max // 2:
                continue
            for e in range(g.indptr[v], g.indptr[v + 1]):
                assert w.distance[g.indices[e]] <= dv + g.weights[e]

    def test_requires_weights(self):
        from repro.workloads.graph.graph import CsrGraph
        g = CsrGraph.from_edges(3, [0], [1])  # no weights
        w = SingleSourceShortestPath(graph=g)
        with pytest.raises(ValueError):
            run(w)


class TestWcc:
    def test_components_verify(self):
        w = WeaklyConnectedComponents(**TINY)
        run(w)
        w.verify()

    def test_two_island_graph(self):
        from repro.workloads.graph.graph import CsrGraph
        g = CsrGraph.from_edges(4, [0, 2], [1, 3])
        w = WeaklyConnectedComponents(graph=g)
        run(w)
        assert w.label[0] == w.label[1]
        assert w.label[2] == w.label[3]
        assert w.label[0] != w.label[2]
        w.verify()

    def test_labels_are_component_minimum(self):
        from repro.workloads.graph.graph import CsrGraph
        g = CsrGraph.from_edges(3, [2, 1], [1, 0])
        w = WeaklyConnectedComponents(graph=g)
        run(w)
        assert list(w.label) == [0, 0, 0]


class TestGraphWorkloadBase:
    def test_requires_exactly_one_graph_source(self):
        with pytest.raises(ValueError):
            PageRank()  # nothing specified
        with pytest.raises(ValueError):
            PageRank(graph_name="frwiki-2013", n_vertices=10, avg_degree=2.0)
        with pytest.raises(ValueError):
            PageRank(n_vertices=10)  # avg_degree missing

    def test_footprint_requires_prepare(self):
        w = PageRank(**TINY)
        with pytest.raises(RuntimeError):
            _ = w.footprint
