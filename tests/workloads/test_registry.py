"""Tests for the workload registry (Table 3, scaled)."""

import pytest

from repro.system.config import scaled_config
from repro.vm.address_space import AddressSpace
from repro.workloads.registry import INPUT_SIZES, WORKLOAD_NAMES, make_workload


class TestRegistryShape:
    def test_ten_workloads(self):
        assert len(WORKLOAD_NAMES) == 10
        assert set(WORKLOAD_NAMES) == {"ATF", "BFS", "PR", "SP", "WCC",
                                       "HJ", "HG", "RP", "SC", "SVM"}

    def test_three_sizes_each(self):
        for sizes in INPUT_SIZES.values():
            assert set(sizes) == {"small", "medium", "large"}

    def test_table3_graph_inputs(self):
        # Table 3: soc-Slashdot0811 / frwiki-2013 / soc-LiveJournal1.
        for name in ("ATF", "BFS", "PR", "SP", "WCC"):
            assert INPUT_SIZES[name]["small"]["graph_name"] == "soc-Slashdot0811"
            assert INPUT_SIZES[name]["medium"]["graph_name"] == "frwiki-2013"
            assert INPUT_SIZES[name]["large"]["graph_name"] == "soc-LiveJournal1"

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            make_workload("XX")
        with pytest.raises(KeyError):
            make_workload("PR", "tiny")


class TestInstantiation:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_small_instantiates(self, name):
        workload = make_workload(name, "small")
        assert workload.name == name

    def test_overrides_applied(self):
        workload = make_workload("HG", "small", n_values=123)
        assert workload.n_values == 123

    def test_seed_forwarded(self):
        assert make_workload("PR", "small", seed=7).seed == 7


class TestLocalityRegimes:
    """Small inputs fit the scaled L3; large inputs exceed it by ~10x."""

    @pytest.mark.parametrize("name", ["HJ", "HG", "RP", "SC", "SVM"])
    def test_footprints_ordered(self, name):
        l3 = scaled_config().l3_size
        footprints = {}
        for size in ("small", "medium", "large"):
            workload = make_workload(name, size)
            workload.prepare(AddressSpace())
            footprints[size] = workload.footprint
        assert footprints["small"] < footprints["medium"] < footprints["large"]
        assert footprints["small"] <= 2 * l3
        assert footprints["large"] >= 4 * l3

    def test_graph_small_near_llc(self):
        workload = make_workload("PR", "small")
        workload.prepare(AddressSpace())
        assert workload.footprint < 2 * scaled_config().l3_size
