"""Tests for the CSR graph and the synthetic graph suite."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.graph.generators import (
    GRAPH_SUITE,
    generate_power_law_graph,
    make_suite_graph,
    zipf_targets,
)
from repro.workloads.graph.graph import CsrGraph


class TestCsrGraph:
    def test_from_edges(self):
        g = CsrGraph.from_edges(3, [0, 0, 1], [1, 2, 2])
        assert g.n_vertices == 3
        assert g.n_edges == 3
        assert list(g.successors(0)) == [1, 2]
        assert list(g.successors(1)) == [2]
        assert list(g.successors(2)) == []

    def test_out_degrees(self):
        g = CsrGraph.from_edges(3, [0, 0, 1], [1, 2, 2])
        assert list(g.out_degrees()) == [2, 1, 0]
        assert g.out_degree(0) == 2

    def test_weights_follow_edge_order(self):
        g = CsrGraph.from_edges(2, [1, 0], [0, 1], weights=[7, 3])
        # After stable sort by source: edge 0->1 weight 3, edge 1->0 weight 7.
        assert g.weights[g.indptr[0]] == 3
        assert g.weights[g.indptr[1]] == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            CsrGraph(np.array([0, 2]), np.array([0]))  # indptr mismatch
        with pytest.raises(ValueError):
            CsrGraph(np.array([0, 1]), np.array([5]))  # target out of range
        with pytest.raises(ValueError):
            CsrGraph(np.array([0, 2, 1]), np.array([0, 0]))  # decreasing

    def test_symmetrized_has_both_directions(self):
        g = CsrGraph.from_edges(3, [0], [1]).symmetrized()
        assert 1 in g.successors(0)
        assert 0 in g.successors(1)

    def test_symmetrized_dedupes(self):
        g = CsrGraph.from_edges(2, [0, 1], [1, 0]).symmetrized()
        assert g.n_edges == 2  # 0->1 and 1->0, no duplicates

    def test_repr(self):
        assert "3 vertices" in repr(CsrGraph.from_edges(3, [0], [1]))

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    min_size=1, max_size=50))
    def test_from_edges_preserves_multiset(self, edges):
        sources = [s for s, _ in edges]
        targets = [t for _, t in edges]
        g = CsrGraph.from_edges(10, sources, targets)
        rebuilt = sorted(
            (int(s), int(t))
            for s in range(10)
            for t in g.successors(s)
        )
        assert rebuilt == sorted(edges)


class TestGenerators:
    def test_edge_count_matches_average_degree(self):
        g = generate_power_law_graph(1000, 8.0, seed=1)
        assert g.n_edges == 8000

    def test_deterministic(self):
        a = generate_power_law_graph(500, 4.0, seed=7)
        b = generate_power_law_graph(500, 4.0, seed=7)
        assert np.array_equal(a.indices, b.indices)

    def test_seed_changes_graph(self):
        a = generate_power_law_graph(500, 4.0, seed=1)
        b = generate_power_law_graph(500, 4.0, seed=2)
        assert not np.array_equal(a.indices, b.indices)

    def test_in_degrees_are_skewed(self):
        g = generate_power_law_graph(2000, 8.0, seed=3)
        in_degrees = np.bincount(g.indices, minlength=2000)
        # Power law: the top percentile has far more than the median.
        assert np.max(in_degrees) > 10 * max(1, np.median(in_degrees))

    def test_head_share_capped(self):
        g = generate_power_law_graph(20_000, 10.0, seed=3)
        in_degrees = np.bincount(g.indices, minlength=20_000)
        # No single vertex receives more than ~0.1% of all edges
        # (MAX_TARGET_SHARE plus sampling noise).
        assert np.max(in_degrees) < 0.002 * g.n_edges

    def test_has_weights(self):
        g = generate_power_law_graph(100, 4.0)
        assert g.weights is not None
        assert g.weights.min() >= 1

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            generate_power_law_graph(1, 4.0)
        with pytest.raises(ValueError):
            generate_power_law_graph(100, 0.0)


class TestSuite:
    def test_nine_graphs(self):
        assert len(GRAPH_SUITE) == 9

    def test_sorted_by_vertex_count(self):
        # Figures 2 and 8 order their x-axes by ascending vertex count.
        counts = [spec.n_vertices for spec in GRAPH_SUITE.values()]
        assert counts == sorted(counts)

    def test_scaled_16x_from_originals(self):
        for spec in GRAPH_SUITE.values():
            assert spec.n_vertices == pytest.approx(spec.original_vertices / 16,
                                                    rel=0.02)

    def test_table3_graphs_present(self):
        for name in ("soc-Slashdot0811", "frwiki-2013", "soc-LiveJournal1"):
            assert name in GRAPH_SUITE

    def test_make_suite_graph(self):
        g = make_suite_graph("soc-Slashdot0811")
        spec = GRAPH_SUITE["soc-Slashdot0811"]
        assert g.n_vertices == spec.n_vertices

    def test_unknown_graph_rejected(self):
        with pytest.raises(KeyError):
            make_suite_graph("not-a-graph")


class TestZipfTargets:
    def test_range(self):
        rng = np.random.default_rng(0)
        ids = zipf_targets(rng, 100, 1000, 0.65)
        assert ids.min() >= 0
        assert ids.max() < 100

    def test_count(self):
        rng = np.random.default_rng(0)
        assert len(zipf_targets(rng, 50, 321, 0.65)) == 321
