"""Tests for the Workload base class contract."""

import pytest

from repro.vm.address_space import AddressSpace
from repro.workloads.base import Workload


class Minimal(Workload):
    name = "minimal"

    def prepare(self, space):
        self.space = space
        space.alloc("x", 128)

    def make_threads(self, n_threads):
        return [iter(()) for _ in range(n_threads)]


class TestWorkloadContract:
    def test_footprint_after_prepare(self):
        w = Minimal()
        w.prepare(AddressSpace())
        assert w.footprint == 128

    def test_footprint_before_prepare_raises(self):
        with pytest.raises(RuntimeError):
            _ = Minimal().footprint

    def test_default_barrier_groups(self):
        assert Minimal().barrier_groups(4) == [0, 0, 0, 0]

    def test_default_verify_is_noop(self):
        Minimal().verify()

    def test_repr_mentions_name(self):
        assert "minimal" in repr(Minimal())

    def test_abstract_methods_required(self):
        with pytest.raises(TypeError):
            Workload()  # abstract

    def test_seed_stored(self):
        assert Minimal(seed=7).seed == 7
