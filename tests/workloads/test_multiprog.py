"""Tests for multiprogrammed workload mixes (Section 7.3)."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config
from repro.system.system import System
from repro.vm.address_space import AddressSpace
from repro.workloads.analytics.histogram import Histogram
from repro.workloads.graph.pagerank import PageRank
from repro.workloads.multiprog import MultiprogrammedWorkload


def make_mix():
    first = PageRank(n_vertices=120, avg_degree=3.0, iterations=1, seed=1)
    second = Histogram(n_values=2000, seed=2)
    return MultiprogrammedWorkload(first, second)


class TestMultiprogrammed:
    def test_name_combines(self):
        assert make_mix().name == "PR+HG"

    def test_runs_and_both_verify(self):
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        mix = make_mix()
        result = system.run(mix)
        mix.verify()
        assert result.cycles > 0

    def test_barrier_groups_split(self):
        mix = make_mix()
        assert mix.barrier_groups(4) == [0, 0, 1, 1]
        assert mix.barrier_groups(5) == [0, 0, 1, 1, 1]

    def test_thread_split(self):
        mix = make_mix()
        mix.prepare(AddressSpace())
        assert len(mix.make_threads(4)) == 4

    def test_region_names_namespaced(self):
        mix = make_mix()
        space = AddressSpace()
        mix.prepare(space)
        assert any(name.startswith("app0.") for name in space.regions)
        assert any(name.startswith("app1.") for name in space.regions)

    def test_two_graph_apps_coexist(self):
        # Both allocate "graph.indptr" etc.; namespacing must prevent clashes.
        mix = MultiprogrammedWorkload(
            PageRank(n_vertices=100, avg_degree=3.0, iterations=1, seed=1),
            PageRank(n_vertices=100, avg_degree=3.0, iterations=1, seed=2),
        )
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        system.run(mix)
        mix.verify()

    def test_barriers_retagged(self):
        from repro.cpu.trace import KIND_BARRIER
        mix = make_mix()
        mix.prepare(AddressSpace())
        threads = mix.make_threads(4)
        groups = set()
        for gen in threads:
            for op in gen:
                if op.kind == KIND_BARRIER:
                    groups.add(op.group)
        assert groups == {0, 1}

    def test_needs_two_threads(self):
        mix = make_mix()
        with pytest.raises(ValueError):
            mix.barrier_groups(1)

    def test_ipc_sum_metric(self):
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        result = system.run(make_mix())
        assert result.ipc_sum > 0
