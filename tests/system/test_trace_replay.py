"""Replay equivalence across the paper's configurations.

The trace-once/replay-many engine is only usable if replay is perfectly
invisible: for every workload family and every Figure 6 configuration,
``System.run(trace)`` must produce a ``RunResult`` byte-identical to
``System.run(workload)`` — cycles, every stats counter, per-core detail.
Both replay engines are held to the bar: the scalar op-by-op loop and the
columnar plan-compiled engine (:mod:`repro.system.columnar`), which must
also leave the *machine* in scalar-identical state (TLBs, page table,
monitor) so runs after a columnar replay stay equivalent.  One workload
per family keeps the matrix cheap while covering the three stream shapes
(barrier-phased graph traversal, compute-dense ML kernels, chained
analytics probes).
"""

import dataclasses
import json

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.cpu.trace import TraceError, capture_trace
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.registry import make_workload

REPLAY_ENGINES = ("scalar", "columnar")

#: One representative per Table 3 family.
FAMILY_WORKLOADS = (
    ("graph", "BFS"),
    ("ml", "SC"),
    ("analytics", "HJ"),
)

#: The paper's four execution configurations (Fig. 6 / Section 7).
PAPER_POLICIES = (
    DispatchPolicy.HOST_ONLY,
    DispatchPolicy.PIM_ONLY,
    DispatchPolicy.LOCALITY_AWARE,
    DispatchPolicy.IDEAL_HOST,
)

OPS_CAP = 400


def canon(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module", params=[name for _, name in FAMILY_WORKLOADS],
                ids=[f"{family}-{name}" for family, name in FAMILY_WORKLOADS])
def captured(request):
    """(name, trace): one capture per family, shared across policies."""
    name = request.param
    config = tiny_config()
    workload = make_workload(name, "small", seed=11)
    trace = capture_trace(workload, n_threads=config.n_cores,
                          max_ops_per_thread=OPS_CAP,
                          page_size=config.page_size)
    return name, trace


@pytest.mark.parametrize("engine", REPLAY_ENGINES)
@pytest.mark.parametrize("policy", PAPER_POLICIES,
                         ids=[p.value for p in PAPER_POLICIES])
def test_replay_bit_identical(captured, policy, engine):
    name, trace = captured
    generated = System(tiny_config(), policy).run(
        make_workload(name, "small", seed=11), max_ops_per_thread=OPS_CAP)
    replayed = System(tiny_config(), policy).run(
        trace, max_ops_per_thread=OPS_CAP, engine=engine)
    assert canon(replayed) == canon(generated)


def test_replay_is_deterministic(captured):
    """Two replays of one trace are bit-identical (no hidden state)."""
    name, trace = captured
    policy = DispatchPolicy.LOCALITY_AWARE
    first = System(tiny_config(), policy).run(trace, max_ops_per_thread=OPS_CAP)
    second = System(tiny_config(), policy).run(trace, max_ops_per_thread=OPS_CAP)
    assert canon(first) == canon(second)


def test_replay_metadata_records_effective_cap(captured):
    """Default-args replay records the cap that actually shaped the stream.

    The trace was cut at capture time under OPS_CAP, so ``run(trace)`` with
    no cap argument must record OPS_CAP — exactly what the generator run
    producing the same stream records — not None (the old drift).
    """
    name, trace = captured
    policy = DispatchPolicy.LOCALITY_AWARE
    generated = System(tiny_config(), policy).run(
        make_workload(name, "small", seed=11), max_ops_per_thread=OPS_CAP)
    for engine in ("auto",) + REPLAY_ENGINES:
        replayed = System(tiny_config(), policy).run(trace, engine=engine)
        # Serialized metadata is the cross-engine contract; the live dict
        # may additionally carry transient (underscore-prefixed) harness
        # annotations such as the columnar plan-cache delta.
        assert replayed.to_dict()["metadata"] == \
            generated.to_dict()["metadata"]
        assert replayed.metadata["max_ops_per_thread"] == OPS_CAP


def test_columnar_restores_machine_state(captured):
    """A run *after* a columnar replay matches a run after a scalar one.

    The columnar engine precomputes TLB outcomes and page-table effects;
    it must write the final TLB contents, hit/miss totals and page table
    back, so a reused System (which falls back to the scalar path on its
    non-cold machine) stays bit-identical.
    """
    name, trace = captured
    policy = DispatchPolicy.LOCALITY_AWARE
    via_columnar = System(tiny_config(), policy)
    via_columnar.run(trace, engine="columnar")
    second_c = via_columnar.run(trace)
    via_scalar = System(tiny_config(), policy)
    via_scalar.run(trace, engine="scalar")
    second_s = via_scalar.run(trace, engine="scalar")
    assert canon(second_c) == canon(second_s)


def test_columnar_non_lru_replacement_identical(captured):
    """Non-LRU replacement skips the warm template but stays identical."""
    name, trace = captured
    config = dataclasses.replace(tiny_config(),
                                 cache_replacement_policy="random")
    policy = DispatchPolicy.LOCALITY_AWARE
    columnar = System(config, policy).run(trace, engine="columnar")
    scalar = System(config, policy).run(trace, engine="scalar")
    assert canon(columnar) == canon(scalar)


def test_forced_columnar_requires_warm_start(captured):
    """engine='columnar' raises where auto would silently fall back."""
    name, trace = captured
    policy = DispatchPolicy.LOCALITY_AWARE
    with pytest.raises(TraceError):
        System(tiny_config(), policy).run(trace, engine="columnar",
                                          warm_start=False)
    cold_auto = System(tiny_config(), policy).run(trace, warm_start=False)
    cold_scalar = System(tiny_config(), policy).run(trace, engine="scalar",
                                                    warm_start=False)
    assert canon(cold_auto) == canon(cold_scalar)


def test_unknown_engine_rejected(captured):
    name, trace = captured
    with pytest.raises(ValueError):
        System(tiny_config()).run(trace, engine="warp")
