"""Replay equivalence across the paper's configurations.

The trace-once/replay-many engine is only usable if replay is perfectly
invisible: for every workload family and every Figure 6 configuration,
``System.run(trace)`` must produce a ``RunResult`` byte-identical to
``System.run(workload)`` — cycles, every stats counter, per-core detail.
One workload per family keeps the matrix cheap while covering the three
stream shapes (barrier-phased graph traversal, compute-dense ML kernels,
chained analytics probes).
"""

import json

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.cpu.trace import capture_trace
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.registry import make_workload

#: One representative per Table 3 family.
FAMILY_WORKLOADS = (
    ("graph", "BFS"),
    ("ml", "SC"),
    ("analytics", "HJ"),
)

#: The paper's four execution configurations (Fig. 6 / Section 7).
PAPER_POLICIES = (
    DispatchPolicy.HOST_ONLY,
    DispatchPolicy.PIM_ONLY,
    DispatchPolicy.LOCALITY_AWARE,
    DispatchPolicy.IDEAL_HOST,
)

OPS_CAP = 400


def canon(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module", params=[name for _, name in FAMILY_WORKLOADS],
                ids=[f"{family}-{name}" for family, name in FAMILY_WORKLOADS])
def captured(request):
    """(name, trace): one capture per family, shared across policies."""
    name = request.param
    config = tiny_config()
    workload = make_workload(name, "small", seed=11)
    trace = capture_trace(workload, n_threads=config.n_cores,
                          max_ops_per_thread=OPS_CAP,
                          page_size=config.page_size)
    return name, trace


@pytest.mark.parametrize("policy", PAPER_POLICIES,
                         ids=[p.value for p in PAPER_POLICIES])
def test_replay_bit_identical(captured, policy):
    name, trace = captured
    generated = System(tiny_config(), policy).run(
        make_workload(name, "small", seed=11), max_ops_per_thread=OPS_CAP)
    replayed = System(tiny_config(), policy).run(
        trace, max_ops_per_thread=OPS_CAP)
    assert canon(replayed) == canon(generated)


def test_replay_is_deterministic(captured):
    """Two replays of one trace are bit-identical (no hidden state)."""
    name, trace = captured
    policy = DispatchPolicy.LOCALITY_AWARE
    first = System(tiny_config(), policy).run(trace, max_ops_per_thread=OPS_CAP)
    second = System(tiny_config(), policy).run(trace, max_ops_per_thread=OPS_CAP)
    assert canon(first) == canon(second)
