"""The literal Table 2 machine can be built and run end-to-end.

Experiments use the scaled machine, but the paper-preset must stay a
working configuration — these tests run a small workload through the full
16-core / 16 MB-L3 / 32 GB system.
"""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.system.builder import build_machine
from repro.system.config import paper_config
from repro.system.system import System
from repro.workloads.graph.pagerank import PageRank


@pytest.fixture(scope="module")
def paper_system():
    return System(paper_config(), DispatchPolicy.LOCALITY_AWARE)


class TestPaperMachine:
    def test_machine_builds(self, paper_system):
        m = paper_system.machine
        assert len(m.cores) == 16
        assert len(m.hmc.vaults) == 128
        assert sum(len(v.banks) for v in m.hmc.vaults) == 2048
        assert m.hierarchy.l3.n_sets == 16384

    def test_directory_and_monitor_sizes(self, paper_system):
        m = paper_system.machine
        assert m.directory.storage_bits / 8 / 1024 == pytest.approx(3.25)
        assert m.monitor.storage_bits / 8 / 1024 == pytest.approx(512.0)

    def test_runs_a_workload(self, paper_system):
        workload = PageRank(n_vertices=500, avg_degree=4.0, iterations=1)
        result = paper_system.run(workload, max_ops_per_thread=1000)
        assert result.cycles > 0
        # A 500-vertex graph is trivially cache-resident in a 16 MB L3:
        # nothing should be offloaded.
        assert result.pim_fraction < 0.05

    def test_small_data_lives_entirely_on_chip(self, paper_system):
        # Run a second tiny workload: the warm 16 MB L3 absorbs everything.
        workload = PageRank(n_vertices=300, avg_degree=3.0, iterations=1,
                            seed=9)
        result = paper_system.run(workload, max_ops_per_thread=1000)
        assert result.stats.get("dram.pim_reads", 0) == 0
