"""Tests for machine construction."""

from repro.core.dispatch import DispatchPolicy
from repro.system.builder import build_machine
from repro.system.config import tiny_config


class TestBuildMachine:
    def test_component_counts(self):
        cfg = tiny_config()
        m = build_machine(cfg, DispatchPolicy.LOCALITY_AWARE)
        assert len(m.cores) == cfg.n_cores
        assert len(m.host_pcus) == cfg.n_cores
        assert len(m.tlbs) == cfg.n_cores
        assert len(m.hmc.vaults) == cfg.total_vaults

    def test_every_vault_has_a_pcu(self):
        m = build_machine(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        for vault in m.hmc.vaults:
            assert vault.pcu is not None

    def test_memory_pcus_run_at_2ghz(self):
        m = build_machine(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        assert m.hmc.vaults[0].pcu.clock.freq_ghz == 2.0
        assert m.host_pcus[0].clock.freq_ghz == 4.0

    def test_monitor_mirrors_l3_geometry(self):
        cfg = tiny_config()
        m = build_machine(cfg, DispatchPolicy.LOCALITY_AWARE)
        assert m.monitor.n_sets == cfg.l3_sets
        assert m.monitor.n_ways == cfg.l3_ways

    def test_monitor_hooked_into_l3_for_locality_policies(self):
        aware = build_machine(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        assert aware.hierarchy.l3_observer is not None
        host = build_machine(tiny_config(), DispatchPolicy.HOST_ONLY)
        assert host.hierarchy.l3_observer is None

    def test_ideal_host_gets_ideal_directory(self):
        m = build_machine(tiny_config(), DispatchPolicy.IDEAL_HOST)
        assert m.directory.ideal
        assert m.directory.latency == 0.0

    def test_ablation_flags(self):
        cfg = tiny_config(ideal_pim_directory=True, ideal_locality_monitor=True)
        m = build_machine(cfg, DispatchPolicy.LOCALITY_AWARE)
        assert m.directory.ideal
        assert m.monitor.latency == 0.0
        assert m.monitor.partial_tag_bits > 32  # effectively full tags

    def test_stats_shared_across_components(self):
        m = build_machine(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        assert m.pmu.stats is m.stats
        assert m.hierarchy.stats is m.stats
        assert m.directory.stats is m.stats
