"""Tests for system configuration, including the Table 2 preset."""

import pytest

from repro.system.config import SystemConfig, paper_config, scaled_config, tiny_config


class TestTable2Preset:
    """The paper preset reproduces Table 2's baseline configuration."""

    def test_cores(self):
        cfg = paper_config()
        assert cfg.n_cores == 16
        assert cfg.core_freq_ghz == 4.0
        assert cfg.issue_width == 4

    def test_cache_sizes(self):
        cfg = paper_config()
        assert cfg.l1_size == 32 * 1024 and cfg.l1_ways == 8
        assert cfg.l2_size == 256 * 1024 and cfg.l2_ways == 8
        assert cfg.l3_size == 16 * 1024 * 1024 and cfg.l3_ways == 16
        assert cfg.block_size == 64

    def test_l3_geometry_matches_locality_monitor(self):
        # Section 6.1: the locality monitor has 16,384 sets and 16 ways.
        cfg = paper_config()
        assert cfg.l3_sets == 16384
        assert cfg.l3_ways == 16

    def test_memory_system(self):
        cfg = paper_config()
        assert cfg.n_hmcs == 8
        assert cfg.vaults_per_hmc == 16
        assert cfg.total_vaults == 128
        assert cfg.banks_per_vault * cfg.vaults_per_hmc == 256  # banks/HMC
        assert cfg.dram_t_cl_ns == 13.75
        assert cfg.dram_t_rcd_ns == 13.75
        assert cfg.dram_t_rp_ns == 13.75

    def test_32gb_of_physical_memory(self):
        cfg = paper_config()
        assert cfg.physical_frames * cfg.page_size == 32 * 1024**3

    def test_pei_hardware(self):
        cfg = paper_config()
        assert cfg.pcu_operand_buffer_entries == 4
        assert cfg.pcu_issue_width == 1
        assert cfg.host_pcu_freq_ghz == 4.0
        assert cfg.mem_pcu_freq_ghz == 2.0
        assert cfg.pim_directory_entries == 2048
        assert cfg.pim_directory_latency == 2.0
        assert cfg.locality_monitor_latency == 3.0
        assert cfg.locality_monitor_partial_tag_bits == 10

    def test_576_operand_buffers(self):
        # Section 6.1 footnote: 16 x 4 + 128 x 4 = 576 in-flight PEIs.
        assert paper_config().total_operand_buffers == 576


class TestScaledPreset:
    def test_capacities_scaled_16x(self):
        paper, scaled = paper_config(), scaled_config()
        assert paper.l3_size == 16 * scaled.l3_size
        assert scaled.l3_ways == paper.l3_ways
        assert scaled.block_size == paper.block_size

    def test_timing_not_scaled(self):
        paper, scaled = paper_config(), scaled_config()
        assert scaled.dram_t_cl_ns == paper.dram_t_cl_ns
        assert scaled.offchip_request_bytes_per_cycle == (
            paper.offchip_request_bytes_per_cycle)


class TestValidation:
    def test_rejects_non_power_of_two_caches(self):
        with pytest.raises(ValueError):
            SystemConfig(l3_size=1000)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(n_cores=0)

    def test_rejects_uneven_geometry(self):
        with pytest.raises(ValueError):
            SystemConfig(l1_size=1024, l1_ways=7)


class TestDerived:
    def test_set_counts(self):
        cfg = SystemConfig()
        assert cfg.l1_sets == cfg.l1_size // (cfg.l1_ways * 64)
        assert cfg.l3_sets * cfg.l3_ways * 64 == cfg.l3_size

    def test_with_overrides(self):
        cfg = scaled_config()
        swept = cfg.with_overrides(pcu_operand_buffer_entries=8)
        assert swept.pcu_operand_buffer_entries == 8
        assert cfg.pcu_operand_buffer_entries == 4  # original frozen

    def test_tiny_is_small(self):
        cfg = tiny_config()
        assert cfg.n_cores == 4
        assert cfg.l3_size < scaled_config().l3_size
