"""Regression tests: cache warm-start must not charge any statistics.

``System.run(warm_start=True)`` emulates the paper's methodology of
measuring after initialization: the warming sweep populates the L3 and the
locality monitor but promises that "no statistics or timing are charged".
A footprint larger than the monitor (the normal case — HG small allocates
tens of thousands of blocks against the tiny config's 1024 monitor entries)
used to break that promise by counting every warming-time monitor eviction
into ``locality_monitor.evictions``.
"""

from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config
from repro.system.system import System
from repro.vm.address_space import AddressSpace
from repro.workloads.registry import make_workload

#: Far more blocks than the tiny config's L3/monitor (64 KB -> 1024 blocks),
#: so warming must evict — the condition under which the old code charged
#: stats.
BIG_FOOTPRINT = dict(n_values=100_000)


def _prepared_spans(system, workload):
    space = AddressSpace(page_size=system.config.page_size)
    workload.prepare(space)
    return [(region.base, region.end) for region in space.regions.values()]


class TestWarmStartStats:
    def test_warming_charges_zero_stats(self):
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        workload = make_workload("HG", "small", seed=7, **BIG_FOOTPRINT)
        system._warm_caches(_prepared_spans(system, workload))
        charged = {k: v for k, v in system.machine.stats.to_dict().items()
                   if v != 0}
        assert charged == {}

    def test_warming_still_populates_state(self):
        """Suspension must drop the *stats*, not the warming itself."""
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        workload = make_workload("HG", "small", seed=7, **BIG_FOOTPRINT)
        system._warm_caches(_prepared_spans(system, workload))
        monitor_entries = sum(len(s) for s in system.machine.monitor._sets)
        assert monitor_entries > 0

    def test_footprint_actually_overflows_monitor(self):
        """Sanity: the same sweep *outside* suspension does evict.

        This is what makes test_warming_charges_zero_stats a real
        regression test — the workload is big enough that the unsuspended
        pre-fix path charged evictions by the thousand.
        """
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        workload = make_workload("HG", "small", seed=7, **BIG_FOOTPRINT)
        space = AddressSpace(page_size=system.config.page_size)
        workload.prepare(space)
        machine = system.machine
        block_size = system.config.block_size
        for region in space.regions.values():
            for vaddr in range(region.base, region.end, block_size):
                block = (machine.page_table.translate(vaddr)
                         >> machine.hierarchy.block_bits)
                machine.monitor.observe_llc_access(block)
        assert machine.stats["locality_monitor.evictions"] > 0

    def test_full_run_stats_exclude_warming(self):
        """End to end: warm and cold runs count the same eviction events."""
        workload = make_workload("HG", "small", seed=7, **BIG_FOOTPRINT)
        warm = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        warm_result = warm.run(workload, max_ops_per_thread=50,
                               warm_start=True)
        assert warm_result.cycles > 0
        # Warming sweeps ~40k blocks through the 1024-entry monitor; had any
        # of it been charged, evictions would exceed the 200-op run's own
        # event count by orders of magnitude.
        measured = warm.machine.stats["locality_monitor.evictions"]
        assert measured < 10_000
