"""Property-based tests for the run engine.

Hypothesis generates random multi-threaded operation scripts (with aligned
barrier phases) and checks the engine's global invariants: termination,
monotonic time, conservation of operation counts, and barrier correctness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import FP_ADD, INT_MIN
from repro.cpu.trace import Barrier, Compute, Load, PFence, Pei, Store
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.base import Workload

BASE = 0x40000


class GeneratedWorkload(Workload):
    name = "generated"

    def __init__(self, phases):
        super().__init__()
        self.phases = phases  # phases[p][t] = list of ops for thread t

    def prepare(self, space):
        self.space = space
        space.alloc("data", 1 << 16)

    def make_threads(self, n_threads):
        def thread(t):
            for phase in self.phases:
                ops = phase[t % len(phase)]
                for op in ops:
                    yield op
                yield Barrier()
        return [thread(t) for t in range(n_threads)]


def op_strategy():
    addr = st.integers(0, 255).map(lambda i: BASE + 64 * i)
    return st.one_of(
        st.builds(Compute, st.integers(1, 8)),
        st.builds(Load, addr, st.booleans()),
        st.builds(Store, addr),
        addr.map(lambda a: Pei(FP_ADD, a)),
        addr.map(lambda a: Pei(INT_MIN, a)),
        st.just(PFence()),
    )


phase_strategy = st.lists(  # one phase: 4 scripts of 0..12 ops
    st.lists(op_strategy(), min_size=0, max_size=12),
    min_size=4, max_size=4,
)


@settings(max_examples=25, deadline=None)
@given(st.lists(phase_strategy, min_size=1, max_size=3))
def test_engine_terminates_with_consistent_state(phases):
    system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
    workload = GeneratedWorkload(phases)
    result = system.run(workload)
    # Termination with every core at a finite, non-negative time.
    assert all(core.time >= 0 for core in system.cores)
    assert result.cycles >= 0
    # Conservation: every emitted memory op and PEI was accounted.
    expected_loads = sum(sum(1 for op in phase[t] if isinstance(op, Load))
                         for phase in phases for t in range(4))
    expected_peis = sum(sum(1 for op in phase[t] if isinstance(op, Pei))
                        for phase in phases for t in range(4))
    assert result.stats.get("core.loads", 0) == expected_loads
    assert result.stats.get("pei.issued", 0) == expected_peis
    # Cache invariants survive arbitrary interleavings.
    assert system.hierarchy.check_inclusion() == []
    assert system.hierarchy.check_single_writer() == []


@settings(max_examples=15, deadline=None)
@given(st.lists(phase_strategy, min_size=1, max_size=2),
       st.integers(1, 10))
def test_op_cap_never_deadlocks(phases, cap):
    """Capping threads mid-phase must release barrier waiters, not hang."""
    system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
    result = system.run(GeneratedWorkload(phases), max_ops_per_thread=cap)
    assert result.cycles >= 0


@settings(max_examples=10, deadline=None)
@given(st.lists(phase_strategy, min_size=1, max_size=2))
def test_policies_preserve_op_counts(phases):
    """The execution policy never changes how much work the cap admits."""
    counts = []
    for policy in (DispatchPolicy.HOST_ONLY, DispatchPolicy.PIM_ONLY):
        system = System(tiny_config(), policy)
        result = system.run(GeneratedWorkload(phases), max_ops_per_thread=20)
        counts.append((result.stats.get("core.loads", 0),
                       result.stats.get("pei.issued", 0)))
    assert counts[0] == counts[1]
