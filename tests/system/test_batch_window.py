"""The engine's batch window is a performance knob, not a semantics knob."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.analytics.histogram import Histogram
from repro.workloads.graph.pagerank import PageRank


def run_with_window(batch_window):
    system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
    workload = Histogram(n_values=20_000, seed=3)
    result = system.run(workload, batch_window=batch_window)
    workload.verify()
    return result


class TestBatchWindow:
    def test_functional_results_window_independent(self):
        # verify() inside run_with_window already checks correctness.
        for window in (32.0, 256.0, 2048.0):
            run_with_window(window)

    def test_timing_approximately_window_independent(self):
        # Different interleaving granularity perturbs contention ordering
        # slightly; the measured time must stay within a narrow band.
        cycles = [run_with_window(w).cycles for w in (32.0, 256.0, 2048.0)]
        assert max(cycles) / min(cycles) < 1.15

    def test_op_counts_exactly_window_independent(self):
        counts = set()
        for window in (32.0, 1024.0):
            result = run_with_window(window)
            counts.add((result.instructions,
                        result.stats.get("pei.issued", 0)))
        assert len(counts) == 1

    def test_graph_workload_with_barriers(self):
        for window in (64.0, 512.0):
            system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
            workload = PageRank(n_vertices=150, avg_degree=3.0, iterations=1)
            system.run(workload, batch_window=window)
            workload.verify()
