"""Tests for RunResult derived metrics."""

import pytest

from repro.energy.model import EnergyBreakdown
from repro.system.result import RunResult


def make_result(cycles=1000.0, stats=None, per_core=None):
    return RunResult(
        workload="PR",
        policy="locality-aware",
        cycles=cycles,
        instructions=sum(per_core or [400]),
        per_core_instructions=per_core or [400],
        stats=stats or {},
        energy=EnergyBreakdown(0, 0, 0, 0, 0, 0, 0),
    )


class TestDerivedMetrics:
    def test_ipc_sum(self):
        result = make_result(cycles=100.0, per_core=[200, 100])
        assert result.ipc_sum == pytest.approx(3.0)

    def test_ipc_zero_cycles(self):
        assert make_result(cycles=0.0).ipc_sum == 0.0

    def test_offchip_bytes(self):
        result = make_result(stats={"offchip.request_bytes": 100,
                                    "offchip.response_bytes": 50})
        assert result.offchip_bytes == 150

    def test_dram_accesses(self):
        result = make_result(stats={"dram.reads": 1, "dram.writes": 2,
                                    "dram.pim_reads": 3, "dram.pim_writes": 4})
        assert result.dram_accesses == 10

    def test_pim_fraction(self):
        result = make_result(stats={"pei.host_executed": 30,
                                    "pei.mem_executed": 70})
        assert result.pim_fraction == pytest.approx(0.7)

    def test_pim_fraction_no_peis(self):
        assert make_result().pim_fraction == 0.0

    def test_speedup_over(self):
        fast = make_result(cycles=500.0)
        slow = make_result(cycles=1000.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        assert slow.speedup_over(fast) == pytest.approx(0.5)
