"""Tests for the run engine: scheduling, barriers, caps, collection."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import FP_ADD
from repro.cpu.trace import Barrier, Compute, Load, PFence, Pei, Store
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.base import Workload


class ScriptedWorkload(Workload):
    """A workload built from explicit per-thread op scripts."""

    name = "scripted"

    def __init__(self, scripts, groups=None, footprint=4096):
        super().__init__()
        self._scripts = scripts
        self._groups = groups
        self._size = footprint

    def prepare(self, space):
        self.space = space
        space.alloc("data", self._size)

    def make_threads(self, n_threads):
        scripts = self._scripts
        if len(scripts) < n_threads:
            scripts = scripts + [[] for _ in range(n_threads - len(scripts))]
        return [iter(list(script)) for script in scripts[:n_threads]]

    def barrier_groups(self, n_threads):
        if self._groups is None:
            return [0] * n_threads
        return list(self._groups[:n_threads]) + [0] * (n_threads - len(self._groups))


def run(scripts, policy=DispatchPolicy.LOCALITY_AWARE, **kwargs):
    system = System(tiny_config(), policy)
    workload = ScriptedWorkload(scripts, groups=kwargs.pop("groups", None))
    result = system.run(workload, **kwargs)
    return system, result


BASE = 0x10000


class TestBasicExecution:
    def test_compute_only(self):
        _, result = run([[Compute(400)]])
        assert result.instructions == 400
        assert result.cycles == pytest.approx(100.0)

    def test_loads_and_stores_counted(self):
        _, result = run([[Load(BASE), Store(BASE + 64)]])
        assert result.stats["core.loads"] == 1
        assert result.stats["core.stores"] == 1

    def test_pei_counted(self):
        _, result = run([[Pei(FP_ADD, BASE)]])
        assert result.stats["pei.issued"] == 1
        assert result.peis_executed == 1

    def test_cycles_is_max_over_cores(self):
        _, result = run([[Compute(400)], [Compute(4000)]])
        assert result.cycles == pytest.approx(1000.0)

    def test_empty_workload(self):
        _, result = run([[], [], [], []])
        assert result.cycles == 0.0


class TestBarriers:
    def test_barrier_synchronizes_threads(self):
        system, _ = run([
            [Compute(4000), Barrier(), Compute(4)],
            [Compute(4), Barrier(), Compute(4)],
        ])
        # Thread 1 resumed at thread 0's arrival time.
        assert system.cores[1].time >= 1000.0

    def test_barrier_groups_independent(self):
        system, _ = run(
            [
                [Compute(4000), Barrier(group=0)],
                [Compute(4), Barrier(group=0)],
                [Compute(4), Barrier(group=1)],
                [Compute(4), Barrier(group=1)],
            ],
            groups=[0, 0, 1, 1],
        )
        # Group 1 never waited on group 0's slow thread.
        assert system.cores[2].time < 100.0
        assert system.cores[3].time < 100.0

    def test_finished_thread_releases_barrier(self):
        # Thread 1 ends (op cap) without reaching the barrier; thread 0
        # must still be released rather than deadlocking.
        _, result = run(
            [[Compute(4), Barrier(), Compute(4)],
             [Compute(4), Compute(4), Compute(4)]],
            max_ops_per_thread=2,
        )
        assert result.cycles > 0

    def test_repeated_barriers(self):
        scripts = [[Compute(4), Barrier(), Compute(4), Barrier()]
                   for _ in range(4)]
        _, result = run(scripts)
        assert result.cycles > 0


class TestOpCap:
    def test_cap_limits_work(self):
        _, capped = run([[Compute(1)] * 100], max_ops_per_thread=10)
        assert capped.instructions == 10

    def test_cap_cuts_identical_work_across_policies(self):
        insts = []
        for policy in (DispatchPolicy.HOST_ONLY, DispatchPolicy.PIM_ONLY):
            script = [[Pei(FP_ADD, BASE + 64 * i) for i in range(20)]]
            _, result = run(script, policy, max_ops_per_thread=5)
            insts.append(result.stats["pei.issued"])
        assert insts[0] == insts[1] == 5


class TestThreadMapping:
    def test_too_many_threads_rejected(self):
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        workload = ScriptedWorkload([[]] * 8)
        with pytest.raises(ValueError):
            system.run(workload, n_threads=8)

    def test_fewer_threads_than_cores(self):
        _, result = run([[Compute(4)]], n_threads=1)
        assert result.cycles > 0


class TestWarmStart:
    def test_warm_start_prefills_l3(self):
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        workload = ScriptedWorkload([[Load(BASE)]])
        result = system.run(workload)
        # The data region was warmed: the load hits on chip.
        assert result.stats.get("dram.reads", 0) == 0

    def test_cold_start_misses(self):
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        workload = ScriptedWorkload([[Load(BASE)]])
        result = system.run(workload, warm_start=False)
        assert result.stats["dram.reads"] == 1


class TestFenceInEngine:
    def test_pfence_orders_after_pei(self):
        system, _ = run([[Pei(FP_ADD, BASE), PFence()]])
        assert system.stats["pei.pfences"] == 1


class TestResultCollection:
    def test_offchip_bytes_collected(self):
        _, result = run([[Load(BASE + 1 << 20)]], max_ops_per_thread=None,
                        warm_start=False)
        assert result.offchip_bytes > 0
        assert result.stats["offchip.request_bytes"] > 0

    def test_metadata(self):
        _, result = run([[Compute(1)]])
        assert result.metadata["n_threads"] == 4
        assert result.metadata["footprint_bytes"] == 4096

    def test_per_core_instructions(self):
        _, result = run([[Compute(8)], [Compute(4)]])
        assert result.per_core_instructions[0] == 8
        assert result.per_core_instructions[1] == 4

    def test_energy_attached(self):
        _, result = run([[Load(BASE), Compute(4)]], warm_start=False)
        assert result.energy.total_pj > 0


class TestDeterminism:
    def test_identical_runs_identical_cycles(self):
        script = [[Load(BASE + 64 * i) for i in range(50)],
                  [Pei(FP_ADD, BASE + 64 * i) for i in range(50)]]
        results = []
        for _ in range(2):
            _, result = run([list(s) for s in script])
            results.append(result.cycles)
        assert results[0] == results[1]
