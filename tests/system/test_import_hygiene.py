"""Import hygiene: numpy and the columnar engine stay off the default path.

The flow/race CI jobs run the analysis tooling in a numpy-less
environment and rely on ``repro.analysis``/``repro.verify`` being pure
stdlib; ``repro.system.columnar`` (which imports numpy eagerly when
available) must only load when trace replay actually dispatches to it.
A subprocess gives each check a clean interpreter: this test would pass
vacuously in-process once any earlier test imported numpy.
"""

import subprocess
import sys
import textwrap


def run_python(code: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, "-c", textwrap.dedent(code)],
                          capture_output=True, text=True, timeout=120)


def test_numpy_free_consumers_stay_numpy_free():
    proc = run_python("""
        import sys

        class BlockNumpy:
            def find_spec(self, name, path=None, target=None):
                if name == "numpy" or name.startswith("numpy."):
                    raise ImportError("numpy blocked: this consumer "
                                      "must stay numpy-free")
                return None

        sys.meta_path.insert(0, BlockNumpy())
        import repro.analysis
        import repro.verify
        import repro.bench.history
        import repro.bench.shm
        from repro.system.system import System
        assert "repro.system.columnar" not in sys.modules
        assert "numpy" not in sys.modules
        print("import hygiene OK")
    """)
    assert proc.returncode == 0, proc.stderr
    assert "import hygiene OK" in proc.stdout


def test_columnar_loads_only_on_trace_replay():
    """Generator-driven runs never import the columnar engine."""
    proc = run_python("""
        import sys
        from repro.system.config import tiny_config
        from repro.system.system import System
        from repro.workloads.registry import make_workload

        System(tiny_config()).run(make_workload("HG", "small", seed=7,
                                                n_values=2000),
                                  max_ops_per_thread=200)
        assert "repro.system.columnar" not in sys.modules
        print("columnar off generator path OK")
    """)
    assert proc.returncode == 0, proc.stderr
    assert "columnar off generator path OK" in proc.stdout


def test_columnar_degrades_gracefully_without_numpy():
    """Trace replay in a numpy-less environment falls back to scalar."""
    proc = run_python("""
        import sys

        class BlockNumpy:
            def find_spec(self, name, path=None, target=None):
                if name == "numpy" or name.startswith("numpy."):
                    raise ImportError("numpy blocked")
                return None

        sys.meta_path.insert(0, BlockNumpy())
        # EngineMicroload generates its streams with pure arithmetic — the
        # registry workloads draw their data through numpy and cannot even
        # capture in a numpy-less environment.
        from repro.bench.microbench import capture_engine_trace
        from repro.system.config import tiny_config
        from repro.system.system import System

        trace = capture_engine_trace(n_ops=500)
        result = System(tiny_config()).run(trace)
        assert result.instructions > 0
        print("scalar fallback OK")
    """)
    assert proc.returncode == 0, proc.stderr
    assert "scalar fallback OK" in proc.stdout
