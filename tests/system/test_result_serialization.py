"""Round-trip tests for RunResult serialization."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.system.config import tiny_config
from repro.system.result import RunResult
from repro.system.system import System
from repro.workloads.analytics.histogram import Histogram


@pytest.fixture(scope="module")
def result():
    system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
    return system.run(Histogram(n_values=2000))


class TestSerialization:
    def test_json_round_trip(self, result):
        restored = RunResult.from_json(result.to_json())
        assert restored.cycles == result.cycles
        assert restored.instructions == result.instructions
        assert restored.stats == result.stats
        assert restored.policy == result.policy

    def test_derived_metrics_survive(self, result):
        restored = RunResult.from_json(result.to_json())
        assert restored.pim_fraction == result.pim_fraction
        assert restored.offchip_bytes == result.offchip_bytes
        assert restored.ipc_sum == pytest.approx(result.ipc_sum)

    def test_energy_round_trips(self, result):
        restored = RunResult.from_json(result.to_json())
        assert restored.energy.total_pj == pytest.approx(result.energy.total_pj)
        assert restored.energy.dram_pj == pytest.approx(result.energy.dram_pj)

    def test_to_dict_is_json_safe(self, result):
        import json
        json.dumps(result.to_dict())  # must not raise

    def test_metadata_filtered_to_scalars(self, result):
        payload = result.to_dict()
        for value in payload["metadata"].values():
            assert isinstance(value, (str, int, float, bool, type(None)))
