"""Round-trip tests for RunResult serialization."""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.energy.model import EnergyBreakdown
from repro.system.config import tiny_config
from repro.system.result import RunResult
from repro.system.system import System
from repro.workloads.analytics.histogram import Histogram


@pytest.fixture(scope="module")
def result():
    system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
    return system.run(Histogram(n_values=2000))


class TestSerialization:
    def test_json_round_trip(self, result):
        restored = RunResult.from_json(result.to_json())
        assert restored.cycles == result.cycles
        assert restored.instructions == result.instructions
        assert restored.stats == result.stats
        assert restored.policy == result.policy

    def test_derived_metrics_survive(self, result):
        restored = RunResult.from_json(result.to_json())
        assert restored.pim_fraction == result.pim_fraction
        assert restored.offchip_bytes == result.offchip_bytes
        assert restored.ipc_sum == pytest.approx(result.ipc_sum)

    def test_energy_round_trips(self, result):
        restored = RunResult.from_json(result.to_json())
        assert restored.energy.total_pj == pytest.approx(result.energy.total_pj)
        assert restored.energy.dram_pj == pytest.approx(result.energy.dram_pj)

    def test_to_dict_is_json_safe(self, result):
        import json
        json.dumps(result.to_dict())  # must not raise

    def test_metadata_json_representable(self, result):
        import json
        payload = result.to_dict()
        json.dumps(payload["metadata"])  # every surviving entry serializes


def make_result(metadata):
    return RunResult(
        workload="HG",
        policy="locality-aware",
        cycles=1000.0,
        instructions=500,
        per_core_instructions=[250, 250],
        stats={"pei.issued": 10.0},
        energy=EnergyBreakdown(caches_pj=1.0, dram_pj=2.0, offchip_pj=3.0,
                               onchip_network_pj=4.0, host_pcu_pj=5.0,
                               mem_pcu_pj=6.0, pmu_pj=7.0),
        metadata=metadata,
    )


class TestMetadataStructure:
    """to_dict must preserve JSON-safe structure, not flatten it to scalars."""

    def test_lists_of_scalars_preserved(self):
        payload = make_result({"ops_per_thread": [300, 300, 280]}).to_dict()
        assert payload["metadata"]["ops_per_thread"] == [300, 300, 280]

    def test_tuples_become_lists(self):
        payload = make_result({"shape": (8, 16)}).to_dict()
        assert payload["metadata"]["shape"] == [8, 16]

    def test_dicts_of_scalars_preserved(self):
        knobs = {"issue_width": 2, "warmup": True, "label": "sweep-a"}
        payload = make_result({"knobs": knobs}).to_dict()
        assert payload["metadata"]["knobs"] == knobs

    def test_nested_structure_preserved(self):
        metadata = {"sweep": {"sizes": [1, 2, 4], "policy": "pim-only"}}
        payload = make_result(metadata).to_dict()
        assert payload["metadata"] == metadata

    def test_unrepresentable_entries_dropped(self):
        payload = make_result({
            "ok": 1,
            "an_object": object(),
            "list_with_object": [1, object()],
            "non_string_keys": {1: "x"},
        }).to_dict()
        assert payload["metadata"] == {"ok": 1}

    def test_structured_metadata_round_trips(self):
        original = make_result({
            "ops_per_thread": [10, 20],
            "knobs": {"alpha": 0.5, "mode": "fast"},
        })
        restored = RunResult.from_json(original.to_json())
        assert restored.metadata == original.metadata
        assert restored.stats == original.stats
        assert restored.energy.total_pj == pytest.approx(
            original.energy.total_pj)
