"""Unit and property tests for bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    align_down,
    align_up,
    block_address,
    block_index,
    ilog2,
    is_power_of_two,
    mask,
    xor_fold,
)
from repro.util.rng import make_rng


class TestIsPowerOfTwo:
    def test_powers(self):
        for exp in range(20):
            assert is_power_of_two(1 << exp)

    def test_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 100, 1023):
            assert not is_power_of_two(value)


class TestIlog2:
    def test_exact(self):
        for exp in range(30):
            assert ilog2(1 << exp) == exp

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            ilog2(3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ilog2(0)


class TestMask:
    def test_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(10) == 0x3FF

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestXorFold:
    def test_small_value_unchanged(self):
        assert xor_fold(0x2A, 10) == 0x2A

    def test_folds_high_bits(self):
        # 0b1_0000000001 folds the 11th bit onto bit 0.
        assert xor_fold((1 << 10) | 1, 10) == 0

    def test_zero(self):
        assert xor_fold(0, 10) == 0

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            xor_fold(5, 0)

    def test_rejects_negative_value(self):
        with pytest.raises(ValueError):
            xor_fold(-1, 4)

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=1, max_value=16))
    def test_result_within_width(self, value, bits):
        assert 0 <= xor_fold(value, bits) < (1 << bits)

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=1, max_value=16))
    def test_deterministic(self, value, bits):
        assert xor_fold(value, bits) == xor_fold(value, bits)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_no_false_negatives_for_directory(self, a, b):
        # The atomicity guarantee: equal blocks always map to equal entries.
        if a == b:
            assert xor_fold(a, 11) == xor_fold(b, 11)


class TestXorFoldProperties:
    """The fold is a chunk-wise XOR; pin its defining recurrence and its
    determinism over a reproducible seeded block stream."""

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=1, max_value=16))
    def test_fold_recurrence(self, value, bits):
        # Folding is XOR of bits-wide chunks, LSB first:
        # fold(v) == (v & mask) ^ fold(v >> bits).
        assert xor_fold(value, bits) == \
            (value & mask(bits)) ^ xor_fold(value >> bits, bits)

    @given(st.integers(min_value=0, max_value=2**20 - 1),
           st.integers(min_value=1, max_value=16))
    def test_fold_is_identity_below_width(self, value, bits):
        if value < (1 << bits):
            assert xor_fold(value, bits) == value

    def test_seeded_stream_is_stable_and_in_range(self):
        rng = make_rng(2015, "tests.bitops.fold")
        blocks = [int(rng.integers(0, 2**48)) for _ in range(500)]
        for bits in (2, 8, 11):
            first = [xor_fold(block, bits) for block in blocks]
            second = [xor_fold(block, bits) for block in blocks]
            assert first == second
            assert all(0 <= f < (1 << bits) for f in first)


class TestBlockHelpers:
    def test_block_address(self):
        assert block_address(0, 64) == 0
        assert block_address(63, 64) == 0
        assert block_address(64, 64) == 64
        assert block_address(130, 64) == 128

    def test_block_index(self):
        assert block_index(0, 64) == 0
        assert block_index(64, 64) == 1
        assert block_index(6400, 64) == 100

    @given(st.integers(min_value=0, max_value=2**48))
    def test_block_address_aligned(self, addr):
        base = block_address(addr, 64)
        assert base % 64 == 0
        assert base <= addr < base + 64


class TestAlign:
    def test_align_down(self):
        assert align_down(100, 64) == 64
        assert align_down(64, 64) == 64

    def test_align_up(self):
        assert align_up(100, 64) == 128
        assert align_up(64, 64) == 64
        assert align_up(0, 64) == 0

    @given(st.integers(min_value=0, max_value=2**40),
           st.sampled_from([1, 2, 4, 64, 4096]))
    def test_round_trip(self, addr, alignment):
        down = align_down(addr, alignment)
        up = align_up(addr, alignment)
        assert down <= addr <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)
