"""Durable-write primitives: atomicity, failure cleanup, append integrity."""

import json
import os

import pytest

from repro.util.fsio import append_jsonl, atomic_write_json, atomic_write_text


class TestAtomicWrite:
    def test_text_round_trip(self, tmp_path):
        path = atomic_write_text(tmp_path / "a" / "b.txt", "hello\n")
        assert path.read_text(encoding="utf-8") == "hello\n"

    def test_json_round_trip(self, tmp_path):
        path = atomic_write_json(tmp_path / "r.json", {"b": 1, "a": 2})
        assert json.loads(path.read_text(encoding="utf-8")) == {"a": 2,
                                                                "b": 1}

    def test_equal_payloads_are_byte_identical(self, tmp_path):
        one = atomic_write_json(tmp_path / "one.json", {"b": 1, "a": 2})
        two = atomic_write_json(tmp_path / "two.json", {"a": 2, "b": 1})
        assert one.read_bytes() == two.read_bytes()

    def test_indented_json_ends_with_newline(self, tmp_path):
        path = atomic_write_json(tmp_path / "r.json", {"a": 1}, indent=2)
        assert path.read_text(encoding="utf-8").endswith("}\n")

    def test_failed_write_leaves_previous_version(self, tmp_path):
        target = tmp_path / "r.json"
        atomic_write_json(target, {"version": 1})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text(encoding="utf-8")) == {
            "version": 1}

    def test_failed_write_leaves_no_temp_files(self, tmp_path):
        with pytest.raises(TypeError):
            atomic_write_json(tmp_path / "r.json", {"bad": object()})
        assert [p.name for p in tmp_path.iterdir()] == []


class TestAppendJsonl:
    def test_appends_accumulate_whole_lines(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        append_jsonl(path, [{"seq": 0}, {"seq": 1}])
        append_jsonl(path, [{"seq": 2}])
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1, 2]

    def test_empty_batch_still_creates_the_file(self, tmp_path):
        path = append_jsonl(tmp_path / "stream.jsonl", [])
        assert path.exists()
        assert path.read_bytes() == b""

    def test_open_flags_are_append_only(self, tmp_path):
        # A second writer never truncates what the first wrote.
        path = tmp_path / "stream.jsonl"
        append_jsonl(path, [{"who": "first"}])
        size_before = os.path.getsize(path)
        append_jsonl(path, [{"who": "second"}])
        assert os.path.getsize(path) > size_before
        first_line = path.read_text(encoding="utf-8").splitlines()[0]
        assert json.loads(first_line) == {"who": "first"}
