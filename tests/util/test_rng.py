"""Tests for deterministic RNG derivation."""

from repro.util.rng import derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "graph", 7) == derive_seed(42, "graph", 7)

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_32bit_range(self):
        for seed in (0, 42, 2**40):
            assert 0 <= derive_seed(seed, "anything") < 2**32


class TestMakeRng:
    def test_reproducible_streams(self):
        a = make_rng(42, "stream").integers(0, 1000, size=10)
        b = make_rng(42, "stream").integers(0, 1000, size=10)
        assert (a == b).all()

    def test_independent_streams(self):
        a = make_rng(42, "s1").integers(0, 1 << 30, size=10)
        b = make_rng(42, "s2").integers(0, 1 << 30, size=10)
        assert (a != b).any()
