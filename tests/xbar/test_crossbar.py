"""Tests for the on-chip crossbar."""

import pytest

from repro.xbar.crossbar import Crossbar


class TestCrossbar:
    def test_latency_applied(self):
        xbar = Crossbar(4, bytes_per_cycle=9.0, latency=6.0)
        assert xbar.traverse(0, 0.0, 18) == pytest.approx(2.0 + 6.0)

    def test_ports_are_independent(self):
        xbar = Crossbar(2, 9.0, 6.0)
        xbar.traverse(0, 0.0, 90)
        # Port 1 is idle even though port 0 is busy.
        assert xbar.traverse(1, 0.0, 9) == pytest.approx(1.0 + 6.0)

    def test_same_port_serializes(self):
        xbar = Crossbar(2, 9.0, 0.0)
        first = xbar.traverse(0, 0.0, 90)
        second = xbar.traverse(0, 0.0, 90)
        assert second == pytest.approx(first + 10.0)

    def test_port_index_wraps(self):
        xbar = Crossbar(2, 9.0, 0.0)
        xbar.traverse(0, 0.0, 90)
        # Port 2 aliases port 0 and queues behind it.
        assert xbar.traverse(2, 0.0, 9) > 10.0 - 1e-9

    def test_byte_accounting(self):
        xbar = Crossbar(2, 9.0, 6.0)
        xbar.traverse(0, 0.0, 16)
        xbar.traverse(1, 0.0, 80)
        assert xbar.bytes_transferred == 96

    def test_len(self):
        assert len(Crossbar(18, 9.0, 6.0)) == 18

    def test_rejects_no_ports(self):
        with pytest.raises(ValueError):
            Crossbar(0, 9.0, 6.0)

    def test_reset(self):
        xbar = Crossbar(2, 9.0, 6.0)
        xbar.traverse(0, 0.0, 90)
        xbar.reset()
        assert xbar.bytes_transferred == 0
