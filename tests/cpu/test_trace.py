"""Tests for the trace operation records."""

from repro.core.isa import FP_ADD, HASH_PROBE, INT_INCREMENT
from repro.cpu.trace import (
    KIND_BARRIER,
    KIND_COMPUTE,
    KIND_FENCE,
    KIND_LOAD,
    KIND_PEI,
    KIND_STORE,
    Barrier,
    Compute,
    Load,
    PFence,
    Pei,
    Store,
)


class TestKinds:
    def test_kinds_distinct(self):
        kinds = {KIND_COMPUTE, KIND_LOAD, KIND_STORE, KIND_PEI, KIND_FENCE,
                 KIND_BARRIER}
        assert len(kinds) == 6

    def test_op_kind_fields(self):
        assert Compute(1).kind == KIND_COMPUTE
        assert Load(0).kind == KIND_LOAD
        assert Store(0).kind == KIND_STORE
        assert Pei(FP_ADD, 0).kind == KIND_PEI
        assert PFence().kind == KIND_FENCE
        assert Barrier().kind == KIND_BARRIER


class TestPeiDefaults:
    def test_rmw_op_does_not_wait(self):
        assert Pei(INT_INCREMENT, 0).wait_output is False
        assert Pei(FP_ADD, 0).wait_output is False

    def test_output_op_waits(self):
        assert Pei(HASH_PROBE, 0).wait_output is True

    def test_chained_output_op_does_not_block(self):
        # Chained dependent probes overlap via the chain mechanism instead
        # of blocking the core.
        assert Pei(HASH_PROBE, 0, chain=1).wait_output is False

    def test_explicit_override(self):
        assert Pei(HASH_PROBE, 0, wait_output=False).wait_output is False


class TestMisc:
    def test_load_dep_default(self):
        assert Load(0).dep is False
        assert Load(0, dep=True).dep is True

    def test_barrier_group_default(self):
        assert Barrier().group == 0
        assert Barrier(group=3).group == 3

    def test_reprs(self):
        assert "Compute" in repr(Compute(5))
        assert "dep" in repr(Load(0x40, dep=True))
        assert "pim.fadd" in repr(Pei(FP_ADD, 0x40))
        assert "group=2" in repr(Barrier(group=2))
        assert "Store" in repr(Store(0x40))
        assert "PFence" in repr(PFence())
