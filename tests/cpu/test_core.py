"""Tests for the trace-driven core model."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.core import CoreModel
from repro.mem.address_map import AddressMap
from repro.mem.dram import DramTimings
from repro.mem.hmc import HmcSystem
from repro.mem.link import OffChipChannel
from repro.sim.stats import Stats
from repro.system.config import SystemConfig
from repro.vm.page_table import PageTable
from repro.vm.tlb import Tlb
from repro.xbar.crossbar import Crossbar


def make_core(issue_width=4, mlp=2):
    stats = Stats()
    hmc = HmcSystem(
        AddressMap(n_hmcs=2, vaults_per_hmc=4, banks_per_vault=4),
        DramTimings.from_config(SystemConfig()),
        OffChipChannel(10.0, 10.0),
        tsv_bytes_per_cycle=4.0,
        stats=stats,
    )
    hierarchy = CacheHierarchy(
        n_cores=1, block_size=64,
        l1_sets=4, l1_ways=2, l2_sets=8, l2_ways=2, l3_sets=16, l3_ways=4,
        l1_latency=4, l2_latency=12, l3_latency=30,
        l3_banks=2, l3_bank_occupancy=2.0,
        crossbar=Crossbar(3, 9.0, 6.0), hmc=hmc, stats=stats,
    )
    tlb = Tlb(PageTable(), entries=64, walk_latency=100.0)
    return CoreModel(0, issue_width, mlp, tlb, hierarchy, stats), stats


class TestCompute:
    def test_advances_at_issue_width(self):
        core, _ = make_core(issue_width=4)
        core.do_compute(8)
        assert core.time == pytest.approx(2.0)
        assert core.instructions == 8

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            make_core(issue_width=0)
        with pytest.raises(ValueError):
            make_core(mlp=0)


class TestLoads:
    def test_load_does_not_block_core(self):
        core, _ = make_core(mlp=4)
        core.do_load(0x10000, dep=False)
        # Core time advanced only by the issue slot and the TLB walk.
        assert core.time == pytest.approx(0.25 + 100.0)

    def test_window_full_stalls(self):
        core, _ = make_core(mlp=1)
        core.do_load(0x10000, dep=False)
        t_after_first = core.time
        core.do_load(0x20000, dep=False)
        # Second load had to wait for the first load's completion.
        assert core.time > t_after_first + 200.0

    def test_dependent_load_serializes(self):
        core, _ = make_core(mlp=8)
        core.do_load(0x10000, dep=False)
        t = core.time
        core.do_load(0x20000, dep=True)
        assert core.time >= core.last_load_completion - 1e9  # completed later
        assert core.time > t + 100.0

    def test_independent_loads_overlap(self):
        dep_core, _ = make_core(mlp=8)
        ser_core, _ = make_core(mlp=8)
        for i in range(4):
            dep_core.do_load(0x10000 + i * 4096, dep=False)
            ser_core.do_load(0x10000 + i * 4096, dep=True)
        assert dep_core.time < ser_core.time

    def test_load_counts_instruction(self):
        core, stats = make_core()
        core.do_load(0x10000, False)
        assert core.instructions == 1
        assert stats["core.loads"] == 1


class TestStores:
    def test_store_is_posted(self):
        core, stats = make_core(mlp=4)
        core.do_store(0x10000)
        assert core.time == pytest.approx(0.25 + 100.0)
        assert stats["core.stores"] == 1

    def test_store_marks_block_dirty(self):
        core, _ = make_core()
        core.do_store(0x10000)
        block = core.hierarchy.block_of(core.tlb.page_table.translate(0x10000))
        assert core.hierarchy.l1[0].is_dirty(block)


class TestDrain:
    def test_drain_waits_for_all(self):
        core, _ = make_core(mlp=8)
        core.do_load(0x10000, False)
        t = core.time
        core.drain()
        assert core.time > t
        core.drain()  # idempotent


class TestIpc:
    def test_ipc(self):
        core, _ = make_core()
        core.do_compute(40)
        assert core.ipc == pytest.approx(4.0)

    def test_zero_time(self):
        core, _ = make_core()
        assert core.ipc == 0.0
