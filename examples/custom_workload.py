#!/usr/bin/env python3
"""Writing your own PEI workload with the public API.

Implements a workload that is *not* in the paper — sparse
matrix-vector multiplication (SpMV), the core of iterative solvers — using
the PEI intrinsics, and runs it under all configurations.  SpMV's scatter
update (`y[row] += value * x[col]`) is exactly the kind of irregular
read-modify-write the FP-add PEI accelerates.

This is the adoption path for downstream users: subclass Workload, allocate
regions, do your real computation, and yield intrinsics alongside
loads/stores.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import DispatchPolicy, System, Workload, scaled_config
from repro.core.intrinsics import pfence, pim_fadd
from repro.cpu.trace import Barrier, Compute, Load
from repro.util.rng import make_rng
from repro.workloads.base import ThreadChunks


class SparseMatrixVector(Workload):
    """y = A @ x for a random sparse matrix in COO form (column-major
    scatter), with one FP-add PEI per non-zero."""

    name = "SpMV"

    def __init__(self, n=200_000, nnz_per_row=8, seed=42):
        super().__init__(seed=seed)
        self.n = n
        self.nnz = n * nnz_per_row

    def prepare(self, space):
        self.space = space
        rng = make_rng(self.seed, "spmv")
        self.rows = rng.integers(0, self.n, size=self.nnz)
        self.cols = np.sort(rng.integers(0, self.n, size=self.nnz))
        self.values = rng.normal(size=self.nnz)
        self.x = rng.normal(size=self.n)
        self.y = np.zeros(self.n)
        self._coo = space.alloc("spmv.coo", self.nnz * 24)  # row, col, value
        self._x = space.alloc("spmv.x", self.n * 8)
        self._y = space.alloc("spmv.y", self.n * 8)

    def make_threads(self, n_threads):
        return [self._thread(t, n_threads) for t in range(n_threads)]

    def _thread(self, thread, n_threads):
        chunks = ThreadChunks(self.nnz, n_threads)
        for i in chunks.range(thread):
            yield Load(self._coo.base + i * 24)  # stream the triple
            yield Load(self._x.base + int(self.cols[i]) * 8)  # gather x[col]
            yield Compute(2)  # value * x[col]
            row = int(self.rows[i])
            # The scatter: one atomic FP-add PEI into y[row].
            yield pim_fadd(self.y, row,
                           self._y.base + row * 8,
                           float(self.values[i] * self.x[self.cols[i]]))
        yield pfence()
        yield Barrier()

    def verify(self):
        expected = np.zeros(self.n)
        np.add.at(expected, self.rows, self.values * self.x[self.cols])
        if not np.allclose(expected, self.y, rtol=1e-9, atol=1e-12):
            raise AssertionError("SpMV result diverges from reference")


def main():
    print("Custom workload: SpMV (200K x 200K, 8 nnz/row) with FP-add PEIs\n")
    results = {}
    for policy in (DispatchPolicy.IDEAL_HOST, DispatchPolicy.HOST_ONLY,
                   DispatchPolicy.PIM_ONLY, DispatchPolicy.LOCALITY_AWARE):
        system = System(scaled_config(), policy)
        workload = SparseMatrixVector()
        results[policy] = system.run(workload, max_ops_per_thread=8000)

    base = results[DispatchPolicy.IDEAL_HOST]
    for policy, result in results.items():
        print(f"  {policy.value:<17} {result.speedup_over(base):>6.3f}x, "
              f"{100 * result.pim_fraction:>5.1f}% of PEIs in memory")

    checked = SparseMatrixVector(n=2000)
    System(scaled_config(), DispatchPolicy.LOCALITY_AWARE).run(checked)
    checked.verify()
    print("\nFunctional check (full 2K x 2K SpMV): y = A @ x verified.")


if __name__ == "__main__":
    main()
