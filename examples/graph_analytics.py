#!/usr/bin/env python3
"""Graph analytics across input scales: the paper's adaptivity story.

Runs PageRank over a range of synthetic power-law graphs (stand-ins for the
paper's nine real-world graphs, Figures 2 and 8) and shows how the
locality-aware architecture shifts PEIs from host-side PCUs to memory-side
PCUs as the graph outgrows the last-level cache — while the functional
result (the actual PageRank values) stays bit-identical to the reference.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro import DispatchPolicy, System, scaled_config
from repro.workloads.graph import PageRank
from repro.workloads.graph.generators import GRAPH_SUITE

# A spread of the suite: small, medium, large.
GRAPHS = ["p2p-Gnutella31", "web-Stanford", "frwiki-2013", "cit-Patents"]


def main():
    config = scaled_config()
    print(f"LLC: {config.l3_size // 1024} KB; locality monitor mirrors its "
          f"{config.l3_sets} sets x {config.l3_ways} ways\n")
    print(f"{'graph':<18} {'vertices':>9} {'footprint':>10} {'PIM %':>7} "
          f"{'vs host-only':>13}")
    print("-" * 62)
    for name in GRAPHS:
        spec = GRAPH_SUITE[name]

        def run(policy):
            system = System(config, policy)
            workload = PageRank(graph_name=name, iterations=2)
            result = system.run(workload, max_ops_per_thread=6000)
            return workload, result

        _, host = run(DispatchPolicy.HOST_ONLY)
        workload, aware = run(DispatchPolicy.LOCALITY_AWARE)
        footprint_kb = workload.footprint // 1024
        print(f"{name:<18} {spec.n_vertices:>9} {footprint_kb:>9}K "
              f"{100 * aware.pim_fraction:>6.1f}% "
              f"{host.cycles / aware.cycles:>13.3f}")

        top = np.argsort(workload.pagerank)[-3:][::-1]
        ranks = ", ".join(f"v{v}={workload.pagerank[v]:.2e}" for v in top)
        print(f"{'':<18} top ranks: {ranks}")
    # Functional check on an uncapped run: execution location never
    # changes the computed ranks.
    checked = PageRank(graph_name="p2p-Gnutella31", iterations=2)
    System(config, DispatchPolicy.LOCALITY_AWARE).run(checked)
    checked.verify()
    print("\nFunctional check: PageRank values on p2p-Gnutella31 match the")
    print("reference bit-for-bit under locality-aware execution.")
    print("PIM % grows with graph size: the locality monitor keeps hot,")
    print("cache-resident vertices on the host and offloads the long tail.")


if __name__ == "__main__":
    main()
