#!/usr/bin/env python3
"""Quickstart: run one workload under every configuration of the paper.

Simulates parallel PageRank (the paper's Figure 1 kernel) on a scaled
frwiki-2013 stand-in under the four evaluated configurations and prints a
speedup table plus the key per-run statistics.

Run:  python examples/quickstart.py
"""

from repro import DispatchPolicy, System, make_workload, scaled_config

POLICIES = [
    DispatchPolicy.IDEAL_HOST,
    DispatchPolicy.HOST_ONLY,
    DispatchPolicy.PIM_ONLY,
    DispatchPolicy.LOCALITY_AWARE,
]


def main():
    print("Simulating PageRank (medium input: frwiki-2013, scaled) ...\n")
    results = {}
    for policy in POLICIES:
        # A fresh System per run: every configuration starts cold.
        system = System(scaled_config(), policy)
        workload = make_workload("PR", "medium")
        results[policy] = system.run(workload, max_ops_per_thread=8000)

    baseline = results[DispatchPolicy.IDEAL_HOST]
    header = (f"{'configuration':<18} {'speedup':>8} {'PEIs in memory':>15} "
              f"{'off-chip MB':>12} {'DRAM accesses':>14}")
    print(header)
    print("-" * len(header))
    for policy, result in results.items():
        print(f"{policy.value:<18} "
              f"{result.speedup_over(baseline):>8.3f} "
              f"{100 * result.pim_fraction:>14.1f}% "
              f"{result.offchip_bytes / 1e6:>12.2f} "
              f"{result.dram_accesses:>14.0f}")

    aware = results[DispatchPolicy.LOCALITY_AWARE]
    print(f"\nLocality-Aware executed {aware.peis_executed:.0f} PEIs, "
          f"{100 * aware.pim_fraction:.1f}% of them on memory-side PCUs.")
    print(f"Energy (Locality-Aware): {aware.energy.total_pj / 1e6:.2f} uJ, "
          f"of which DRAM {aware.energy.dram_pj / 1e6:.2f} uJ and "
          f"off-chip links {aware.energy.offchip_pj / 1e6:.2f} uJ.")


if __name__ == "__main__":
    main()
