#!/usr/bin/env python3
"""In-memory database analytics with PEIs: hash join and radix partition.

Demonstrates the output-producing PIM operations of Section 5.2: hash-table
probing (a 9-byte match-and-next-pointer result per chain hop, overlapped
four probes at a time exactly as the paper's unrolled software does) and
histogram bin indexing (16 bin indexes per cache block).  Results are
checked against reference joins/partitions.

Run:  python examples/database_analytics.py
"""

from repro import DispatchPolicy, System, scaled_config
from repro.workloads.analytics import HashJoin, RadixPartition


def show(title, results, extra=""):
    print(title)
    base = results[DispatchPolicy.HOST_ONLY]
    for policy, result in results.items():
        marker = " <-- adaptive" if policy is DispatchPolicy.LOCALITY_AWARE else ""
        print(f"  {policy.value:<17} {base.cycles / result.cycles:>6.3f}x "
              f"vs host-only, {100 * result.pim_fraction:>5.1f}% in memory"
              f"{marker}")
    if extra:
        print(f"  {extra}")
    print()


def main():
    policies = [DispatchPolicy.HOST_ONLY, DispatchPolicy.PIM_ONLY,
                DispatchPolicy.LOCALITY_AWARE]

    # Hash join: a large build table (pointer-chased probes) -------------
    results = {}
    matches = None
    for policy in policies:
        system = System(scaled_config(), policy)
        join = HashJoin(build_rows=262_144, probe_rows=16_384)
        results[policy] = system.run(join, max_ops_per_thread=8000)
    join_small = HashJoin(build_rows=2_048, probe_rows=8_192)
    System(scaled_config(), DispatchPolicy.LOCALITY_AWARE).run(join_small)
    join_small.verify()
    show("Hash join, 256K-row build table (exceeds the LLC):", results,
         extra=f"(functional check on a full small join: "
               f"{join_small.matches} matches verified)")

    # Radix partitioning: repeated passes over the same relation ---------
    results = {}
    for policy in policies:
        system = System(scaled_config(), policy)
        partition = RadixPartition(n_rows=16_384, passes=3)
        results[policy] = system.run(partition)
    check = RadixPartition(n_rows=4_096, passes=1)
    System(scaled_config(), DispatchPolicy.LOCALITY_AWARE).run(check)
    check.verify()
    show("Radix partition, 16K rows x 3 passes (cache-resident reuse):",
         results,
         extra="(functional check: 4K rows partitioned into 256 radix "
               "buckets, stable order verified)")

    print("Note the flip: the cache-hostile join favours memory-side")
    print("execution, while the reuse-heavy partitioning stays on the host —")
    print("the same binary, steered per cache block by the locality monitor.")


if __name__ == "__main__":
    main()
