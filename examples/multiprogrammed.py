#!/usr/bin/env python3
"""Multiprogrammed mixes: why locality profiling must be hardware.

Runs a cache-resident application and a memory-bound application *on the
same machine at the same time* (each with half the cores, as in Section
7.3) and compares the three execution strategies by IPC throughput.  A
static software choice must pick one location for everything; the locality
monitor steers each PEI by the behaviour of its own cache block.

Run:  python examples/multiprogrammed.py
"""

from repro import (
    DispatchPolicy,
    MultiprogrammedWorkload,
    System,
    make_workload,
    scaled_config,
)


def build_mix():
    # One cache-friendly app (small streamcluster) + one memory-bound app
    # (large PageRank) — the worst case for any one-size-fits-all choice.
    return MultiprogrammedWorkload(
        make_workload("SC", "small"),
        make_workload("PR", "large"),
    )


def main():
    print("Mix: SC (small, cache-resident) + PR (large, memory-bound)\n")
    results = {}
    for policy in (DispatchPolicy.HOST_ONLY, DispatchPolicy.PIM_ONLY,
                   DispatchPolicy.LOCALITY_AWARE):
        system = System(scaled_config(), policy)
        results[policy] = system.run(build_mix(), max_ops_per_thread=6000)

    base = results[DispatchPolicy.HOST_ONLY].ipc_sum
    print(f"{'configuration':<18} {'IPC sum':>8} {'vs host-only':>13} "
          f"{'PIM %':>7}")
    print("-" * 50)
    for policy, result in results.items():
        print(f"{policy.value:<18} {result.ipc_sum:>8.2f} "
              f"{result.ipc_sum / base:>13.3f} "
              f"{100 * result.pim_fraction:>6.1f}%")

    aware = results[DispatchPolicy.LOCALITY_AWARE]
    print(f"\nLocality-Aware offloaded {100 * aware.pim_fraction:.1f}% of "
          f"PEIs overall — PR's cold blocks went to memory while SC's hot")
    print("blocks stayed on the host, a split no static choice can make.")


if __name__ == "__main__":
    main()
