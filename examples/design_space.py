#!/usr/bin/env python3
"""Design-space exploration: where does the host/memory crossover move?

The whole point of locality-aware execution is that the right place to run
a PEI depends on the cache. This example sweeps the last-level cache size
for one fixed workload and watches (1) PIM-Only flip from loser to winner
and (2) Locality-Aware's offload fraction track the change — no software
involvement, as promised by the paper's abstraction.

Run:  python examples/design_space.py
"""

from repro import DispatchPolicy, System, make_workload, scaled_config

L3_SIZES = [256 * 1024, 1024 * 1024, 4 * 1024 * 1024]


def main():
    workload_name, size = "PR", "medium"
    print(f"Sweeping L3 capacity for {workload_name}/{size} "
          f"(fixed ~35 MB footprint)\n")
    print(f"{'L3':>8} {'pim-only speedup':>17} {'LA speedup':>11} "
          f"{'LA PIM %':>9}")
    print("-" * 50)
    for l3_size in L3_SIZES:
        config = scaled_config(l3_size=l3_size)

        def run(policy):
            system = System(config, policy)
            return system.run(make_workload(workload_name, size),
                              max_ops_per_thread=6000)

        ideal = run(DispatchPolicy.IDEAL_HOST)
        pim = run(DispatchPolicy.PIM_ONLY)
        aware = run(DispatchPolicy.LOCALITY_AWARE)
        print(f"{l3_size // 1024:>6}KB "
              f"{pim.speedup_over(ideal):>17.3f} "
              f"{aware.speedup_over(ideal):>11.3f} "
              f"{100 * aware.pim_fraction:>8.1f}%")

    print("\nShrinking the cache makes in-memory execution win, and the")
    print("locality monitor offloads more — the same binary adapts to the")
    print("machine it runs on.")


if __name__ == "__main__":
    main()
