"""Ablation benches for the design choices DESIGN.md calls out, plus the
paper's stated future work (balanced dispatch under other link splits)."""

import pytest
from conftest import emit

from repro.bench.ablations import (
    ablation_directory_size,
    ablation_ignore_flag,
    ablation_link_asymmetry,
    ablation_replacement_policy,
    ablation_warm_start,
)


def test_ablation_directory_size(benchmark):
    report = benchmark.pedantic(ablation_directory_size, rounds=1, iterations=1)
    emit(report)
    # 2048 entries (the paper's pick) is within noise of a much larger
    # table; shrinking to 64 entries costs real but bounded serialization.
    assert abs(report.data[2048] - 1.0) < 0.02
    assert abs(report.data[8192] - 1.0) < 0.05
    assert 0.6 < report.data[64] < 1.02
    assert report.data[256] > report.data[64] - 0.02


def test_ablation_ignore_flag(benchmark):
    report = benchmark.pedantic(ablation_ignore_flag, rounds=1, iterations=1)
    emit(report)
    # Removing the flag never wins big anywhere.
    for ratio in report.data.values():
        assert ratio > 0.9


def test_ablation_link_asymmetry(benchmark):
    report = benchmark.pedantic(ablation_link_asymmetry, rounds=1, iterations=1)
    emit(report)
    # The gain grows with the response share of bandwidth: the mechanism
    # pays off where responses are the scarce direction (these workloads
    # are read-dominated), and the greedy heuristic can mildly mispredict
    # in the opposite extreme — a real limitation worth recording.
    ratios = sorted(report.data)
    gains = [report.data[r] for r in ratios]
    assert gains == sorted(gains)  # monotone in the response share
    assert max(gains) > 1.1
    assert min(gains) > 0.85


def test_ablation_replacement_policy(benchmark):
    report = benchmark.pedantic(ablation_replacement_policy, rounds=1,
                                iterations=1)
    emit(report)
    assert report.data["lru"] == pytest.approx(1.0)
    # Alternative policies stay within a modest band of LRU — no
    # qualitative conclusion rests on the replacement policy.
    for policy, gm in report.data.items():
        assert 0.7 < gm < 1.2


def test_ablation_warm_start(benchmark):
    report = benchmark.pedantic(ablation_warm_start, rounds=1, iterations=1)
    emit(report)
    # Cold caches hurt the cache-resident small inputs the most.
    assert report.data["SC-small"] >= report.data["SC-large"] * 0.9
