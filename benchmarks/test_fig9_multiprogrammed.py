"""Figure 9: randomly mixed multiprogrammed workloads.

Paper's shape: across 200 random two-application mixes, Locality-Aware's
IPC throughput beats Host-Only and PIM-Only for the overwhelming majority.
The default here runs REPRO_BENCH_MIXES (24) mixes; set it to 200 for the
paper-scale sweep.
"""

from conftest import emit

from repro.bench.experiments import fig9_multiprogrammed
from repro.bench.tables import geometric_mean


def test_fig9(benchmark):
    report = benchmark.pedantic(fig9_multiprogrammed, rounds=1, iterations=1)
    emit(report)
    aware = report.data["locality_aware"]
    pim = report.data["pim_only"]
    n = len(aware)
    # Locality-Aware is at worst near Host-Only's throughput and clearly
    # better than blanket offloading on the mean.
    assert geometric_mean(aware) > 0.9
    assert geometric_mean(aware) > geometric_mean(pim) * 0.95
    # It is best-or-tied in the large majority of mixes.
    assert report.data["wins"] >= int(0.6 * n)
