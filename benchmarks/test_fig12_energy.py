"""Figure 12: memory-hierarchy energy of the three configurations.

Paper's shape: Locality-Aware consumes the least energy at every input
size; PIM-Only inflates off-chip link and DRAM energy on small inputs
(+36% / +116%); memory-side PCUs are ~1.4% of HMC energy.
"""

from conftest import emit

from repro.bench.experiments import fig12_energy


def test_fig12(benchmark):
    report = benchmark.pedantic(fig12_energy, rounds=1, iterations=1)
    emit(report)
    small = report.data["small"]
    large = report.data["large"]
    # Small inputs: blanket offloading wastes DRAM and link energy.
    assert small["pim-only"]["total"] > small["locality-aware"]["total"]
    assert small["pim-only"]["dram"] > 1.5
    # Large inputs: adaptive execution saves energy over Host-Only.
    assert large["locality-aware"]["total"] <= large["host-only"]["total"] * 1.02
    # Memory-side PCUs are a negligible share of in-cube energy.
    assert report.data["mem_pcu_fraction"] < 0.05
