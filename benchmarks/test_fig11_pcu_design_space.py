"""Figure 11: PCU design-space exploration.

Paper's shape: (a) going from one to four operand-buffer entries buys >30%
and saturates after four; (b) the computation-logic issue width barely
matters because PEI time is memory-dominated.
"""

from conftest import emit

from repro.bench.experiments import fig11a_operand_buffer, fig11b_issue_width


def test_fig11a_operand_buffer(benchmark):
    report = benchmark.pedantic(fig11a_operand_buffer, rounds=1, iterations=1)
    emit(report)
    speedup = dict(zip(report.data["entries"], report.data["speedup"]))
    # One entry is markedly slower than four.
    assert speedup[1] < 0.85
    assert speedup[2] < 1.0
    # Saturation beyond four entries.
    assert abs(speedup[8] - 1.0) < 0.1
    assert abs(speedup[16] - 1.0) < 0.1


def test_fig11b_issue_width(benchmark):
    report = benchmark.pedantic(fig11b_issue_width, rounds=1, iterations=1)
    emit(report)
    speedups = report.data["speedup"]
    # Negligible effect across widths.
    for value in speedups:
        assert abs(value - 1.0) < 0.05
