"""Microbenchmarks of the simulator itself (not a paper experiment).

Measures the throughput of the hot paths — the run engine, the cache
hierarchy, the PIM directory and locality monitor — so performance
regressions in the library are caught alongside the reproduction results.
Unlike the figure benches these use multiple rounds: they are fast and
their wall time IS the measurement.
"""

import pytest

from repro.bench.microbench import EngineMicroload, capture_engine_trace
from repro.core.dispatch import DispatchPolicy
from repro.core.locality_monitor import LocalityMonitor
from repro.core.pim_directory import PimDirectory
from repro.system.config import tiny_config
from repro.system.system import System


@pytest.fixture(scope="module")
def engine_trace():
    """One capture shared by every replay round (capture cost excluded)."""
    return capture_engine_trace()


def test_engine_throughput(benchmark, engine_trace):
    """End-to-end engine throughput: trace replay, the runner's hot path.

    This is the number ``python -m repro.bench history --compare`` tracks
    (via :func:`repro.bench.microbench.engine_ops_per_second`, which uses
    the same workload and replay path).
    """

    def run():
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        return system.run(engine_trace)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions > 0


def test_engine_throughput_generator(benchmark):
    """Generator-driven engine throughput (capture path included)."""

    def run():
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        return system.run(EngineMicroload())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions > 0


def test_hierarchy_accesses(benchmark):
    """Raw cache-hierarchy accesses per second."""
    system = System(tiny_config(), DispatchPolicy.HOST_ONLY)
    hierarchy = system.hierarchy

    def run():
        t = 0.0
        for i in range(20_000):
            hierarchy.access(i % 4, (i * 8191) % (1 << 22), i % 7 == 0, t)
            t += 1.0

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_pim_directory_throughput(benchmark):
    directory = PimDirectory()

    def run():
        t = 0.0
        for i in range(50_000):
            entry, grant = directory.acquire(i % 4096, i % 3 == 0, t)
            directory.release(entry, i % 3 == 0, grant + 50.0)
            t += 1.0

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_locality_monitor_throughput(benchmark):
    monitor = LocalityMonitor(n_sets=1024, n_ways=16)

    def run():
        for i in range(50_000):
            block = (i * 2654435761) % (1 << 20)
            if i % 2:
                monitor.observe_llc_access(block)
            else:
                monitor.advise_host(block)

    benchmark.pedantic(run, rounds=3, iterations=1)
