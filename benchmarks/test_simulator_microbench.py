"""Microbenchmarks of the simulator itself (not a paper experiment).

Measures the throughput of the hot paths — the run engine, the cache
hierarchy, the PIM directory and locality monitor — so performance
regressions in the library are caught alongside the reproduction results.
Unlike the figure benches these use multiple rounds: they are fast and
their wall time IS the measurement.
"""

import pytest

from repro.core.dispatch import DispatchPolicy
from repro.core.isa import FP_ADD
from repro.core.locality_monitor import LocalityMonitor
from repro.core.pim_directory import PimDirectory
from repro.cpu.trace import Compute, Load, Pei
from repro.system.config import tiny_config
from repro.system.system import System
from repro.workloads.base import Workload


class _Microload(Workload):
    name = "micro"

    def __init__(self, n_ops=4000):
        super().__init__()
        self.n_ops = n_ops

    def prepare(self, space):
        self.space = space
        self.region = space.alloc("data", 1 << 20)

    def make_threads(self, n_threads):
        def thread(t):
            base = self.region.base
            for i in range(self.n_ops):
                addr = base + ((i * 2654435761 + t) % (1 << 20)) // 64 * 64
                if i % 3 == 0:
                    yield Pei(FP_ADD, addr)
                elif i % 3 == 1:
                    yield Load(addr)
                else:
                    yield Compute(4)
        return [thread(t) for t in range(n_threads)]


def test_engine_throughput(benchmark):
    """End-to-end engine throughput (mixed loads/PEIs/compute)."""

    def run():
        system = System(tiny_config(), DispatchPolicy.LOCALITY_AWARE)
        return system.run(_Microload())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.instructions > 0


def test_hierarchy_accesses(benchmark):
    """Raw cache-hierarchy accesses per second."""
    system = System(tiny_config(), DispatchPolicy.HOST_ONLY)
    hierarchy = system.hierarchy

    def run():
        t = 0.0
        for i in range(20_000):
            hierarchy.access(i % 4, (i * 8191) % (1 << 22), i % 7 == 0, t)
            t += 1.0

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_pim_directory_throughput(benchmark):
    directory = PimDirectory()

    def run():
        t = 0.0
        for i in range(50_000):
            entry, grant = directory.acquire(i % 4096, i % 3 == 0, t)
            directory.release(entry, i % 3 == 0, grant + 50.0)
            t += 1.0

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_locality_monitor_throughput(benchmark):
    monitor = LocalityMonitor(n_sets=1024, n_ways=16)

    def run():
        for i in range(50_000):
            block = (i * 2654435761) % (1 << 20)
            if i % 2:
                monitor.observe_llc_access(block)
            else:
                monitor.advise_host(block)

    benchmark.pedantic(run, rounds=3, iterations=1)
