"""Sweep-scale demo: the fig. 8 locality crossover on a 1k-point grid.

This is the headline workload for the sweep frontier: a 1024-point
input-size grid that an exhaustive sweep would evaluate point by point,
resolved by adaptive refinement at a fraction of the cost.  Three
properties are demonstrated and asserted:

* **Budget** — adaptive sampling evaluates at most 40% of the grid
  (in practice a few percent: a monotonic metric only needs the
  crossing region refined).
* **Fidelity** — the crossover it reports is a pair of *adjacent*
  evaluated grid indices, and an exhaustive single-policy reference
  sweep over the full grid straddles the threshold at the same pair.
* **Scale-out** — sharded execution is bit-identical to serial.

The exhaustive reference uses the ``pim_fraction`` metric (one policy
per point instead of three), and its locality-aware requests are
content-identical to the adaptive sweep's, so the shared disk cache
makes the reference pass mostly replay rather than re-simulation.
"""

from conftest import emit

from repro.bench import runner
from repro.bench.experiments import ExperimentReport
from repro.bench.sweep import SWEEPS, SweepRunner, SweepSpec

POINTS = 1024


def build_spec(metric="fig8", points=POINTS):
    base = SWEEPS["fig8-crossover"](points)
    if metric == base.metric:
        return base
    return SweepSpec(
        name=base.name, workload=base.workload, size=base.size,
        axis=base.axis, values=base.values, metric=metric,
        threshold=base.threshold, config=base.config, seed=base.seed,
        max_ops_per_thread=base.max_ops_per_thread)


def test_sweep_scale_crossover():
    adaptive = SweepRunner(build_spec()).run()

    assert adaptive["completed"]
    assert adaptive["grid_points"] == POINTS
    assert adaptive["evaluated_fraction"] <= 0.40
    crossing = adaptive["crossover"]
    assert crossing is not None
    # The reported pair is adjacent on the grid: refinement drove the
    # bracket all the way down to single-step resolution.
    assert crossing["above_index"] - crossing["below_index"] == 1

    # Exhaustive reference over the same grid, single policy per point.
    exhaustive = SweepRunner(build_spec(metric="pim_fraction")).run(full=True)
    assert exhaustive["evaluated"] == POINTS
    reference = exhaustive["crossover"]
    assert reference is not None
    assert abs(crossing["below_index"] - reference["below_index"]) <= 1

    body = "\n".join([
        f"grid points          {adaptive['grid_points']}",
        f"evaluated            {adaptive['evaluated']}"
        f" ({adaptive['evaluated_fraction']:.1%})",
        f"refinement rounds    {adaptive['rounds']}",
        f"throughput           {adaptive['points_per_second']:.1f} points/s",
        f"crossover (adaptive) n_values"
        f" {crossing['below']}-{crossing['above']}",
        f"crossover (full)     n_values"
        f" {reference['below']}-{reference['above']}",
    ])
    emit(ExperimentReport("sweep_scale", body, {
        "adaptive": adaptive, "exhaustive": exhaustive}))


def test_sweep_sharded_bit_identical():
    spec = build_spec(points=32)
    runner.clear_cache()
    serial = SweepRunner(spec).run()
    runner.clear_cache()
    jobs = runner.get_jobs()
    runner.set_jobs(4)
    try:
        sharded = SweepRunner(spec).run()
    finally:
        runner.set_jobs(jobs)
    assert serial["points"] == sharded["points"]
    assert serial["crossover"] == sharded["crossover"]
    assert serial["rounds_points"] == sharded["rounds_points"]
