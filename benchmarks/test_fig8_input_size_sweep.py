"""Figure 8: PageRank across the nine-graph suite.

Paper's shape: Locality-Aware's offload fraction grows monotonically-ish
with graph size (0.3% on soc-Slashdot0811 up to 87% on cit-Patents), and
its speedup tracks the better of Host-Only and PIM-Only throughout.
"""

from conftest import emit

from repro.bench.experiments import fig8_input_size_sweep


def test_fig8(benchmark):
    report = benchmark.pedantic(fig8_input_size_sweep, rounds=1, iterations=1)
    emit(report)
    graphs = report.data["graphs"]
    fraction = dict(zip(graphs, report.data["pim_fraction"]))
    aware = dict(zip(graphs, report.data["locality-aware"]))
    host = dict(zip(graphs, report.data["host-only"]))
    pim = dict(zip(graphs, report.data["pim-only"]))
    # Adaptivity: tiny graphs stay on the host, huge graphs go to memory.
    assert fraction["p2p-Gnutella31"] < 0.10
    assert fraction["soc-LiveJournal1"] > 0.50
    assert fraction["ljournal-2008"] > fraction["soc-Slashdot0811"]
    # Locality-Aware never collapses to the loser's performance.
    for graph in graphs:
        floor = min(host[graph], pim[graph])
        assert aware[graph] > floor * 0.95
