"""Figure 10: balanced dispatch (Section 7.4).

Paper's shape: steering monitor-missing PEIs toward the less-loaded
off-chip direction buys up to +25% on the read-dominated SC and SVM with
large inputs, and never hurts the others.
"""

from conftest import emit

from repro.bench.experiments import fig10_balanced_dispatch


def test_fig10(benchmark):
    report = benchmark.pedantic(fig10_balanced_dispatch, rounds=1, iterations=1)
    emit(report)
    # SC is the paper's showcase: a 64 B input operand per PEI makes the
    # request/response balance decisive.
    assert report.data["SC"]["gain"] > 1.05
    # Balanced dispatch must not significantly hurt any workload.
    for name, row in report.data.items():
        assert row["gain"] > 0.95
