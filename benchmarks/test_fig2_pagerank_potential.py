"""Figure 2: performance potential of one in-memory atomic add (PageRank).

Paper's shape: in-memory execution wins on large graphs (up to +53%) and
loses on cache-resident ones (down to -20% on p2p-Gnutella31).
"""

from conftest import emit

from repro.bench.experiments import fig2_pagerank_potential


def test_fig2(benchmark):
    report = benchmark.pedantic(fig2_pagerank_potential, rounds=1, iterations=1)
    emit(report)
    speedups = dict(zip(report.data["graphs"], report.data["speedup"]))
    # Shape assertions: the small head of the suite loses, the tail wins.
    assert speedups["soc-Slashdot0811"] < 1.0
    assert speedups["soc-LiveJournal1"] > 1.0
    assert speedups["soc-LiveJournal1"] > speedups["p2p-Gnutella31"]
