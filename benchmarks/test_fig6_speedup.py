"""Figure 6: speedup of the four configurations under three input sizes.

Paper's shape: PIM-Only wins on large inputs (+44% GM) and loses on small
ones (-20% GM); Locality-Aware tracks the winner at both extremes.
"""

from conftest import emit

from repro.bench.experiments import fig6_speedup
from repro.bench.tables import geometric_mean


def test_fig6(benchmark):
    report = benchmark.pedantic(fig6_speedup, rounds=1, iterations=1)
    emit(report)
    gm = {
        size: {
            policy: geometric_mean([report.data[size][w][policy]
                                    for w in report.data[size]])
            for policy in ("host-only", "pim-only", "locality-aware")
        }
        for size in report.data
    }
    # Small inputs: offloading everything loses badly; Locality-Aware stays
    # close to Host-Only.
    assert gm["small"]["pim-only"] < 0.85
    assert gm["small"]["locality-aware"] > gm["small"]["pim-only"]
    # Large inputs: PIM-Only wins and Locality-Aware tracks it.
    assert gm["large"]["pim-only"] > 1.0
    assert gm["large"]["locality-aware"] > gm["large"]["host-only"]
    # Host-Only never beats the idealized host.
    for size in gm:
        assert gm[size]["host-only"] <= 1.02
