"""Figure 7: off-chip transfer of Host-Only and PIM-Only vs Ideal-Host.

Paper's shape: PIM-Only cuts traffic on large inputs and inflates it by
orders of magnitude on small, cache-resident ones (up to 502x on SC).
"""

from conftest import emit

from repro.bench.experiments import fig7_offchip_traffic
from repro.bench.tables import geometric_mean


def test_fig7(benchmark):
    report = benchmark.pedantic(fig7_offchip_traffic, rounds=1, iterations=1)
    emit(report)
    small = report.data["small"]
    large = report.data["large"]
    # Small inputs: always-offload inflates traffic dramatically — the
    # warm-started host moves (near) nothing while PIM-Only streams every
    # PEI off chip.
    for name in small:
        assert small[name]["pim_bytes"] > 100 * (small[name]["ideal_bytes"] + 1024)
    # Large inputs: PIM-Only moves less data than the host for the
    # bandwidth-bound graph workloads.
    for name in ("ATF", "PR", "SP", "WCC"):
        assert large[name]["pim_bytes"] < large[name]["host_bytes"] * 1.05
    # Host-Only's traffic matches Ideal-Host (same execution placement).
    host_gm = geometric_mean([large[w]["host-only"] for w in large])
    assert 0.9 < host_gm < 1.1
