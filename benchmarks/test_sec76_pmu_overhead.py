"""Section 7.6: performance overhead of the cost-effective PMU structures.

Paper's shape: replacing the 2048-entry tag-less PIM directory or the
partial-tag locality monitor with ideal (infinite, zero-latency) versions
improves performance by well under one percent.
"""

from conftest import emit

from repro.bench.experiments import sec76_pmu_overhead


def test_sec76(benchmark):
    report = benchmark.pedantic(sec76_pmu_overhead, rounds=1, iterations=1)
    emit(report)
    # Idealizing buys only a few percent at most (paper: 0.13% / 0.31%).
    assert abs(report.data["directory_gain"]) < 0.05
    assert abs(report.data["monitor_gain"]) < 0.05
