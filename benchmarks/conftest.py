"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure of the paper; its rendered
report is printed (run pytest with ``-s`` to see it live) and persisted
under ``benchmarks/results/`` so the output survives pytest's capture.

The suite honours the runner's environment knobs:

* ``REPRO_BENCH_JOBS`` — worker processes for independent simulation
  points (default 1, serial);
* ``REPRO_BENCH_CACHE`` — on-disk result cache directory (default
  ``.bench_cache``; set to ``0`` to disable caching).
"""

import os
import pathlib

import pytest

from repro.bench import runner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def runner_backend():
    """Configure parallelism and the disk cache from the environment."""
    runner.set_jobs(int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    cache = os.environ.get("REPRO_BENCH_CACHE", runner.DEFAULT_CACHE_DIR)
    if cache != "0":
        runner.enable_disk_cache(cache)
    yield
    runner.set_jobs(1)
    runner.disable_disk_cache()


def emit(report) -> None:
    """Print an ExperimentReport and persist it to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = str(report)
    print()
    print(text)
    (RESULTS_DIR / f"{report.name}.txt").write_text(text + "\n")
