"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure of the paper; its rendered
report is printed (run pytest with ``-s`` to see it live) and persisted
under ``benchmarks/results/`` so the output survives pytest's capture.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(report) -> None:
    """Print an ExperimentReport and persist it to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = str(report)
    print()
    print(text)
    (RESULTS_DIR / f"{report.name}.txt").write_text(text + "\n")
