"""Command-line driver for the bounded PEI protocol checker.

Subcommands::

    python -m repro.verify explore    # invariants on the real directory
    python -m repro.verify diff       # + differential vs. the golden model
    python -m repro.verify coherence  # full-machine coherence pass
    python -m repro.verify mutants    # seeded defects must all be killed
    python -m repro.verify all        # everything above (= `make verify`)

Exit status is nonzero on any violation or surviving mutant.
"""

import argparse
import sys

# Wall-clock timing below measures the harness's own host cost for the CI
# budget; it never feeds a simulated timestamp.
import time
from typing import List, Optional, Tuple

from repro.verify.coherence import CoherenceBounds, run_coherence
from repro.verify.differential import run_all
from repro.verify.explorer import ExploreReport, explore
from repro.verify.mutants import run_mutants
from repro.verify.schedule import ExploreBounds, count_schedules


def _bounds_from_args(args: argparse.Namespace) -> ExploreBounds:
    return ExploreBounds(
        max_peis=args.max_peis,
        n_blocks=args.blocks,
        durations=tuple(args.durations),
        strides=tuple(args.strides),
        include_fences=not args.no_fences,
    )


def _coherence_bounds_from_args(args: argparse.Namespace) -> CoherenceBounds:
    return CoherenceBounds(max_peis=min(args.max_peis, 3))


def _print_report(label: str, report: ExploreReport, elapsed: float) -> bool:
    print(f"[{label}] {report.summary()} in {elapsed:.1f}s")
    for violation in report.violations:
        print(f"  {violation}")
    dropped = sum(report.by_code.values()) - len(report.violations)
    if dropped > 0:
        print(f"  ... and {dropped} more violation(s)")
    return report.ok


def _elapsed_since(start: float) -> float:
    return time.perf_counter() - start  # simlint: ignore[SIM001] -- harness self-timing for the CI wall-clock budget, never a simulated timestamp


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Bounded protocol checker for the PEI architecture.")
    parser.add_argument("command",
                        choices=("explore", "diff", "coherence",
                                 "mutants", "all"),
                        help="which pass to run")
    parser.add_argument("--max-peis", type=int, default=4,
                        help="longest PEI/pfence sequence to enumerate")
    parser.add_argument("--blocks", type=int, default=2,
                        help="distinct target blocks per schedule")
    parser.add_argument("--durations", type=float, nargs="+",
                        default=[3.0, 11.0],
                        help="lock occupancies to combine")
    parser.add_argument("--strides", type=float, nargs="+",
                        default=[0.0, 7.0],
                        help="issue spacings to combine")
    parser.add_argument("--no-fences", action="store_true",
                        help="drop pfence from the step alphabet")
    args = parser.parse_args(argv)

    ok = True
    start = time.perf_counter()  # simlint: ignore[SIM001] -- harness self-timing for the CI wall-clock budget, never a simulated timestamp

    if args.command in ("explore", "diff", "all"):
        bounds = _bounds_from_args(args)
        total = count_schedules(bounds)
        cases = len(bounds.directory_cases())
        print(f"enumerating {total} schedules x {cases} directory geometries "
              f"(max {args.max_peis} PEIs over {args.blocks} blocks)")
        t0 = time.perf_counter()  # simlint: ignore[SIM001] -- harness self-timing for the CI wall-clock budget, never a simulated timestamp
        if args.command == "explore":
            report = explore(bounds)
            ok = _print_report("explore", report, _elapsed_since(t0)) and ok
        else:
            report = run_all(bounds)
            ok = _print_report("explore+diff", report,
                               _elapsed_since(t0)) and ok

    if args.command in ("coherence", "all"):
        t0 = time.perf_counter()  # simlint: ignore[SIM001] -- harness self-timing for the CI wall-clock budget, never a simulated timestamp
        report = run_coherence(_coherence_bounds_from_args(args))
        ok = _print_report("coherence", report, _elapsed_since(t0)) and ok

    if args.command in ("mutants", "all"):
        t0 = time.perf_counter()  # simlint: ignore[SIM001] -- harness self-timing for the CI wall-clock budget, never a simulated timestamp
        mutant_report = run_mutants()
        print(f"[mutants] {mutant_report.summary()} "
              f"in {_elapsed_since(t0):.1f}s")
        for outcome in mutant_report.outcomes:
            print(f"  {outcome.describe()}")
        ok = mutant_report.ok and ok

    print(f"verify: {'PASS' if ok else 'FAIL'} "
          f"(total {_elapsed_since(start):.1f}s)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
