"""Bounded PEI schedules: the state space the protocol checker explores.

A *schedule* is a totally ordered sequence of PEI/pfence steps together with
a deterministic issue-time assignment.  Because the simulator's executor is
synchronous, the order in which PEIs visit the PIM directory equals their
issue order; enumerating every ordered sequence over a small step alphabet
(reader/writer × host-/memory-side × two target blocks × short/long
occupancy, plus pfence) together with every issue-spacing mode therefore
enumerates every *interleaving* the timestamp protocol can encounter at
that size.

Two blocks are enough to exercise every conflict class the Section 4.3
protocol distinguishes: same block (must serialize — a false negative here
is a correctness bug), different blocks in different entries (must not
serialize), and different blocks aliased onto one tag-less entry (may
serialize — a false positive, safe by design).  The block pair of a
:class:`DirectoryCase` selects between those geometries.

Steps are interned: :func:`step_alphabet` builds each distinct step object
once and sequences share them, which keeps the ~half-million-schedule
default sweep allocation-free in the hot loop.
"""

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple, Union

from repro.util.bitops import ilog2, xor_fold

__all__ = [
    "PeiStep",
    "FenceStep",
    "FENCE",
    "Step",
    "Schedule",
    "DirectoryCase",
    "ExploreBounds",
    "default_directory_cases",
    "step_alphabet",
    "enumerate_step_sequences",
    "enumerate_schedules",
    "count_schedules",
]


@dataclass(frozen=True)
class PeiStep:
    """One PEI of a bounded workload.

    ``block`` is a logical block id (an index into the active
    :class:`DirectoryCase`'s block table), not an address.  ``duration`` is
    the compute occupancy charged after the lock grant; memory-side steps
    additionally pay the case's clean/ship lead before computing.
    """

    is_writer: bool
    on_host: bool
    block: int
    duration: float

    def describe(self) -> str:
        kind = "W" if self.is_writer else "R"
        side = "host" if self.on_host else "mem"
        return f"{kind}{self.block}/{side}/{self.duration:g}"


@dataclass(frozen=True)
class FenceStep:
    """One pfence: waits for every previously issued writer PEI."""

    def describe(self) -> str:
        return "pfence"


#: The shared pfence step (fences carry no parameters).
FENCE = FenceStep()

Step = Union[PeiStep, FenceStep]


@dataclass(frozen=True)
class Schedule:
    """An ordered step sequence plus its issue-time assignment.

    Step ``i`` issues at ``i * stride``: ``stride == 0`` is the maximally
    contended burst (every PEI arrives at once), larger strides produce
    partially and fully disjoint lock windows depending on the durations.
    """

    steps: Tuple[Step, ...]
    stride: float

    def issue(self, index: int) -> float:
        return index * self.stride

    def describe(self) -> str:
        inner = " ".join(step.describe() for step in self.steps)
        return f"[{inner}] stride={self.stride:g}"


@dataclass(frozen=True)
class DirectoryCase:
    """One directory geometry the explorer replays every schedule under."""

    name: str
    entries: int
    latency: float
    handoff_penalty: float
    ideal: bool
    blocks: Tuple[int, ...]  # logical block id -> real block number

    def index_of(self, block_id: int) -> int:
        """The entry the real (non-mutated) fold assigns to a block id."""
        if self.ideal:
            return self.blocks[block_id]
        return xor_fold(self.blocks[block_id], ilog2(self.entries))

    @property
    def aliased(self) -> bool:
        """Do the case's two blocks share one directory entry?"""
        if self.ideal or len(self.blocks) < 2:
            return False
        return self.index_of(0) == self.index_of(1)


def default_directory_cases() -> Tuple[DirectoryCase, ...]:
    """The three geometries of interest: aliased, disjoint, and ideal.

    With 4 entries (2 index bits) blocks 1 and 4 XOR-fold onto entry 1 —
    a tag-less false positive — while blocks 1 and 2 land on entries 1 and
    2.  The ideal case models the Ideal-Host infinite per-block table.
    """
    return (
        DirectoryCase("aliased", entries=4, latency=2.0, handoff_penalty=10.0,
                      ideal=False, blocks=(1, 4)),
        DirectoryCase("disjoint", entries=4, latency=2.0, handoff_penalty=10.0,
                      ideal=False, blocks=(1, 2)),
        DirectoryCase("ideal", entries=4, latency=2.0, handoff_penalty=10.0,
                      ideal=True, blocks=(1, 2)),
    )


@dataclass(frozen=True)
class ExploreBounds:
    """The knobs bounding one exhaustive exploration.

    The default bound — up to 4 PEIs over 2 blocks, short/long occupancies,
    burst and staggered issue, all three directory geometries — is the
    acceptance bound of ``make verify``; it is exhaustive at that size and
    completes in well under a minute.
    """

    max_peis: int = 4
    n_blocks: int = 2
    durations: Tuple[float, ...] = (3.0, 11.0)
    strides: Tuple[float, ...] = (0.0, 7.0)
    include_fences: bool = True
    include_memory_side: bool = True
    #: Fixed clean/operand-ship lead charged to memory-side PEIs before
    #: compute, so side choice genuinely changes the explored timelines.
    memory_lead: float = 6.0
    cases: Optional[Tuple[DirectoryCase, ...]] = None

    def directory_cases(self) -> Tuple[DirectoryCase, ...]:
        return self.cases if self.cases is not None else default_directory_cases()


def step_alphabet(bounds: ExploreBounds) -> Tuple[Step, ...]:
    """Every distinct step a schedule slot can hold, built once."""
    sides = (True, False) if bounds.include_memory_side else (True,)
    steps: list = [
        PeiStep(is_writer=w, on_host=h, block=b, duration=d)
        for w in (False, True)
        for h in sides
        for b in range(bounds.n_blocks)
        for d in bounds.durations
    ]
    if bounds.include_fences:
        steps.append(FENCE)
    return tuple(steps)


def enumerate_step_sequences(bounds: ExploreBounds) -> Iterator[Tuple[Step, ...]]:
    """All ordered step sequences of length 1..max_peis over the alphabet."""
    alphabet = step_alphabet(bounds)
    for length in range(1, bounds.max_peis + 1):
        yield from itertools.product(alphabet, repeat=length)


def enumerate_schedules(bounds: ExploreBounds) -> Iterator[Schedule]:
    """All schedules at the bound: sequences × issue-spacing modes."""
    for steps in enumerate_step_sequences(bounds):
        for stride in bounds.strides:
            yield Schedule(steps=steps, stride=stride)


def count_schedules(bounds: ExploreBounds) -> int:
    """Closed-form schedule count (for progress reporting, not a walk)."""
    alphabet = len(step_alphabet(bounds))
    sequences = sum(alphabet ** n for n in range(1, bounds.max_peis + 1))
    return sequences * len(bounds.strides)


def sequence_has_pei(steps: Sequence[Step]) -> bool:
    return any(isinstance(step, PeiStep) for step in steps)
