"""repro.verify: bounded protocol checker for the PEI architecture.

Three cooperating pieces (see ``docs/verification.md``):

* :mod:`repro.verify.golden` — a reference model of the Section 4.3
  protocol written in the paper's own vocabulary (readable/writeable bits,
  10-bit reader / 1-bit writer counters, per-block cache-copy and
  memory-freshness state), deliberately independent of the simulator's
  timestamp encoding.
* :mod:`repro.verify.explorer` / :mod:`repro.verify.coherence` — bounded
  exhaustive exploration: every interleaving of small PEI workloads is
  replayed through the real :class:`~repro.core.pim_directory.PimDirectory`
  (and, for coherence, a full built machine) and checked against the
  VER001–VER014 invariants.
* :mod:`repro.verify.differential` — replays each explored schedule
  through the golden model too and fails on any timeline divergence.

:mod:`repro.verify.mutants` seeds known protocol defects into the simulator
and requires the above to kill every one — the harness validates itself.

Run ``python -m repro.verify all`` (or ``make verify``) for the whole
sweep; ``explore``, ``diff``, ``coherence`` and ``mutants`` run the pieces
individually.
"""

from repro.verify.coherence import CoherenceBounds, run_coherence
from repro.verify.differential import diff_schedule, run_all, run_differential
from repro.verify.explorer import (
    ExploreReport,
    Violation,
    check_invariants,
    explore,
    replay,
)
from repro.verify.golden import GoldenCacheState, GoldenDirectory, GoldenError
from repro.verify.mutants import MUTANTS, MutantReport, run_mutants
from repro.verify.schedule import (
    DirectoryCase,
    ExploreBounds,
    Schedule,
    count_schedules,
    default_directory_cases,
    enumerate_schedules,
)

__all__ = [
    "CoherenceBounds",
    "DirectoryCase",
    "ExploreBounds",
    "ExploreReport",
    "GoldenCacheState",
    "GoldenDirectory",
    "GoldenError",
    "MUTANTS",
    "MutantReport",
    "Schedule",
    "Violation",
    "check_invariants",
    "count_schedules",
    "default_directory_cases",
    "diff_schedule",
    "enumerate_schedules",
    "explore",
    "replay",
    "run_all",
    "run_coherence",
    "run_differential",
    "run_mutants",
]
