"""Coherence verification: real PMU + cache hierarchy vs. golden cache state.

The directory-level explorer (:mod:`repro.verify.explorer`) proves the lock
protocol; this module proves the *coherence management* side of Section 4.3
on a real machine: for every small schedule, every cache-priming mode, and
every geometry, it drives the actual :class:`~repro.core.pmu.Pmu` and
:class:`~repro.cache.hierarchy.CacheHierarchy` built by
:func:`~repro.system.builder.build_machine` and checks each
``clean_block_for_memory`` against the golden per-block cache-copy /
memory-freshness state (:class:`~repro.verify.golden.GoldenCacheState`):

========  ==========================================================
VER009    clean readiness: memory-side execution may not begin before
          the clean completed; a clean that had to touch the
          hierarchy cannot be free
VER010    copy discipline: back-invalidation leaves no on-chip copy;
          back-writeback preserves exactly the copies it should
VER011    memory freshness: after any clean, no dirty copy of the
          block survives on chip
VER012    hierarchy invariants (inclusion, single-writer) hold after
          every step
VER013    stats divergence: the clean moved the wrong (or no)
          back-invalidation/back-writeback counter vs. golden state
VER014    PMU monotonicity: issue <= decision <= grant <= completion
          for every admitted PEI
========  ==========================================================

Every replay also assembles the equivalent ``PeiTrace``/``FenceTrace``
stream and runs it through :func:`repro.analysis.simsan.sanitize_events`
with the machine's directory geometry — cross-validating the trace
sanitizer's SAN001–SAN010 rules against the same schedules the explorer
proves, so the two checkers can never silently drift apart.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.simsan import sanitize_events
from repro.core.dispatch import DispatchPolicy
from repro.core.isa import HASH_PROBE, INT_INCREMENT, PimOp
from repro.core.tracer import FenceTrace, PeiTrace
from repro.sim.stats import Stats
from repro.system.builder import Machine, build_machine
from repro.system.config import SystemConfig, tiny_config
from repro.verify.explorer import ExploreReport, Violation, times_close
from repro.verify.golden import GoldenCacheState
from repro.verify.schedule import (
    ExploreBounds,
    FenceStep,
    PeiStep,
    Schedule,
    enumerate_schedules,
)

__all__ = [
    "CoherenceGeometry",
    "CoherenceBounds",
    "default_geometries",
    "PRIMES",
    "replay_coherence",
    "run_coherence",
]

#: Writer / reader operations used to drive the PMU (any Table 1 pair works;
#: the protocol keys only on the R/W columns).
WRITER_OP: PimOp = INT_INCREMENT
READER_OP: PimOp = HASH_PROBE

#: Cache priming modes applied before each schedule.
PRIMES: Tuple[str, ...] = ("cold", "shared-clean", "dirty-owner")


@dataclass(frozen=True)
class CoherenceGeometry:
    """One machine shape the coherence schedules replay under."""

    name: str
    config: SystemConfig
    blocks: Tuple[int, ...]  # logical block id -> real block number


def default_geometries() -> Tuple[CoherenceGeometry, ...]:
    """Two miniature machines covering the interesting cache shapes.

    ``snug`` uses blocks 1 and 4, which XOR-fold onto one entry of its
    4-entry directory (tag-less aliasing during coherence traffic);
    ``thrash`` uses a direct-mapped L1 with blocks 1 and 17 colliding in
    one L1 set, so private evictions happen *during* the schedules.
    """
    snug = tiny_config(
        n_cores=2, n_hmcs=1, vaults_per_hmc=2, banks_per_vault=2,
        l1_size=1024, l1_ways=2, l2_size=2048, l2_ways=2,
        l3_size=4096, l3_ways=4, l3_banks=2,
        pim_directory_entries=4, physical_frames=1 << 12,
    )
    thrash = snug.with_overrides(l1_ways=1)
    return (
        CoherenceGeometry("snug", snug, blocks=(1, 4)),
        CoherenceGeometry("thrash", thrash, blocks=(1, 17)),
    )


@dataclass(frozen=True)
class CoherenceBounds:
    """Exploration bound for the (more expensive) full-machine pass."""

    max_peis: int = 3
    durations: Tuple[float, ...] = (5.0,)
    strides: Tuple[float, ...] = (0.0, 31.0)
    #: Schedules start here, safely after every priming access retires.
    base_time: float = 500.0
    geometries: Optional[Tuple[CoherenceGeometry, ...]] = None
    primes: Tuple[str, ...] = PRIMES

    def geometry_cases(self) -> Tuple[CoherenceGeometry, ...]:
        return self.geometries if self.geometries is not None \
            else default_geometries()

    def schedule_bounds(self) -> ExploreBounds:
        return ExploreBounds(
            max_peis=self.max_peis,
            n_blocks=2,
            durations=self.durations,
            strides=self.strides,
        )


def _prime(machine: Machine, geometry: CoherenceGeometry, mode: str,
           golden: Dict[int, GoldenCacheState]) -> None:
    """Install the initial cache population for one priming mode."""
    hierarchy = machine.hierarchy
    if mode == "cold":
        return
    if mode == "shared-clean":
        for t, core in enumerate(range(machine.config.n_cores)):
            for block in geometry.blocks:
                hierarchy.access(core, hierarchy.block_addr(block),
                                 is_write=False, time=float(t))
                golden[block].host_access(is_write=False)
        return
    if mode == "dirty-owner":
        for t, block in enumerate(geometry.blocks):
            hierarchy.access(0, hierarchy.block_addr(block),
                             is_write=True, time=float(t))
            golden[block].host_access(is_write=True)
        return
    raise ValueError(f"unknown priming mode {mode!r}")


def _memory_fresh_on_chip(machine: Machine, block: int) -> bool:
    """No dirty copy of ``block`` survives anywhere in the hierarchy."""
    hierarchy = machine.hierarchy
    if hierarchy.l3.is_dirty(block):
        return False
    for core in range(machine.config.n_cores):
        if hierarchy.l1[core].is_dirty(block) or hierarchy.l2[core].is_dirty(block):
            return False
    return True


@dataclass
class _CoherenceReplay:
    violations: List[Violation] = field(default_factory=list)
    events: List = field(default_factory=list)
    writer_completions: List[float] = field(default_factory=list)


def replay_coherence(
    geometry: CoherenceGeometry,
    prime: str,
    sched: Schedule,
    base_time: float,
) -> List[Violation]:
    """Drive one schedule through a real machine; return violations."""
    machine = build_machine(geometry.config, DispatchPolicy.PIM_ONLY)
    golden = {block: GoldenCacheState() for block in geometry.blocks}
    _prime(machine, geometry, prime, golden)
    case_name = f"{geometry.name}/{prime}"
    desc = sched.describe()
    state = _CoherenceReplay()

    def bad(code: str, detail: str) -> None:
        state.violations.append(Violation(
            code=code, case=case_name, schedule=desc, detail=detail))

    for i, step in enumerate(sched.steps):
        issue = base_time + sched.issue(i)
        core = i % machine.config.n_cores
        if isinstance(step, FenceStep):
            release = machine.pmu.fence(issue)
            for done in state.writer_completions:
                if release < done - 1e-9:
                    bad("VER014",
                        f"step {i} pfence released at {release:g} before a "
                        f"prior writer completed at {done:g}")
            state.events.append(FenceTrace(core=core, issue_time=issue,
                                           release_time=release))
            continue
        block = geometry.blocks[step.block]
        op = WRITER_OP if step.is_writer else READER_OP
        machine.pmu.policy = (DispatchPolicy.HOST_ONLY if step.on_host
                              else DispatchPolicy.PIM_ONLY)
        grant = machine.pmu.begin_pei(core, block, op, issue)
        if grant.on_host is not step.on_host:
            bad("VER014",
                f"step {i}: forced policy did not pin execution side")
            continue
        if grant.decision_time < issue - 1e-9 \
                or grant.grant_time < grant.decision_time - 1e-9:
            bad("VER014",
                f"step {i}: issue {issue:g} / decision "
                f"{grant.decision_time:g} / grant {grant.grant_time:g} "
                f"not monotonic")
        clean_time: Optional[float] = None
        if step.on_host:
            result = machine.hierarchy.access(
                core, machine.hierarchy.block_addr(block),
                is_write=step.is_writer, time=grant.decision_time)
            golden[block].host_access(is_write=step.is_writer)
            start = result.finish if result.finish > grant.grant_time \
                else grant.grant_time
            completion = start + step.duration
        else:
            completion, clean_time = _memory_side_step(
                machine, golden, block, op, step, grant, i, bad)
        machine.pmu.finish_pei(grant.entry, op, completion)
        if step.is_writer:
            state.writer_completions.append(completion)
        state.events.append(PeiTrace(
            core=core, op=op.mnemonic, block=block, on_host=step.on_host,
            issue_time=issue, grant_time=grant.grant_time,
            completion=completion, decision_time=grant.decision_time,
            clean_time=clean_time,
            clean_invalidate=None if clean_time is None else op.is_writer))
        # VER012: structural invariants must hold after every step.
        broken = machine.hierarchy.check_inclusion()
        if broken:
            bad("VER012", f"step {i}: inclusion violated for blocks {broken}")
        broken = machine.hierarchy.check_single_writer()
        if broken:
            bad("VER012",
                f"step {i}: single-writer violated for blocks {broken}")

    # Cross-validate simsan on the same timeline the checks above passed.
    san = sanitize_events(
        state.events,
        operand_buffer_entries=None,
        directory_entries=machine.directory.entries,
    )
    for violation in san.violations:
        state.violations.append(Violation(
            code=violation.code, case=case_name, schedule=desc,
            detail=violation.message))
    return state.violations


def _memory_side_step(machine, golden, block, op, step, grant, i, bad):
    """One memory-side PEI: clean, then compute; check every obligation."""
    hierarchy = machine.hierarchy
    stats: Stats = machine.stats
    expectation = golden[block].expect_clean(op.is_writer)
    before_inv = stats.get("pmu.back_invalidations")
    before_wb = stats.get("pmu.back_writebacks")
    ready = machine.pmu.clean_block_for_memory(block, op, grant.grant_time)

    # VER009: readiness bounds.
    clean_floor = hierarchy.l3_latency + hierarchy.crossbar.latency
    if ready < grant.grant_time - 1e-9:
        bad("VER009",
            f"step {i}: clean ready at {ready:g} before the grant "
            f"{grant.grant_time:g}")
    if expectation.touches_hierarchy:
        if ready < grant.grant_time + clean_floor - 1e-9:
            bad("VER009",
                f"step {i}: block {block:#x} had an on-chip copy but the "
                f"clean cost only {ready - grant.grant_time:g} (needs at "
                f"least {clean_floor:g})")
    elif not times_close(ready, grant.grant_time):
        bad("VER009",
            f"step {i}: block {block:#x} was absent yet the clean took "
            f"{ready - grant.grant_time:g}")

    # VER010: copy discipline.
    present = hierarchy.present(block)
    if expectation.invalidates and present:
        bad("VER010",
            f"step {i}: block {block:#x} still has an on-chip copy after "
            f"back-invalidation")
    if not expectation.invalidates and present is not expectation.present_after:
        bad("VER010",
            f"step {i}: block {block:#x} present={present} after "
            f"back-writeback, golden state expects "
            f"{expectation.present_after}")

    # VER011: memory freshness.
    if not _memory_fresh_on_chip(machine, block):
        bad("VER011",
            f"step {i}: a dirty copy of block {block:#x} survived the clean")

    # VER013: the right coherence counter moved.
    delta_inv = stats.get("pmu.back_invalidations") - before_inv
    delta_wb = stats.get("pmu.back_writebacks") - before_wb
    expected = expectation.expected_stat()
    if expected is None:
        if delta_inv or delta_wb:
            bad("VER013",
                f"step {i}: clean of absent block {block:#x} moved coherence "
                f"counters (inv+{delta_inv:g}, wb+{delta_wb:g})")
    else:
        moved, untouched = expected
        deltas = {"pmu.back_invalidations": delta_inv,
                  "pmu.back_writebacks": delta_wb}
        if not times_close(deltas[moved], 1.0) or deltas[untouched]:
            bad("VER013",
                f"step {i}: clean of block {block:#x} expected +1 on "
                f"{moved}, saw inv+{delta_inv:g} wb+{delta_wb:g}")

    start = ready if ready > grant.grant_time else grant.grant_time
    return start + step.duration, ready


def run_coherence(bounds: Optional[CoherenceBounds] = None,
                  fail_fast: bool = False) -> ExploreReport:
    """Replay every bounded schedule under every geometry and priming."""
    if bounds is None:
        bounds = CoherenceBounds()
    report = ExploreReport()
    geometries = bounds.geometry_cases()
    for sched in enumerate_schedules(bounds.schedule_bounds()):
        report.schedules += 1
        for geometry in geometries:
            for prime in bounds.primes:
                found = replay_coherence(geometry, prime, sched,
                                         bounds.base_time)
                report.replays += 1
                if found:
                    report.record(found)
                    if fail_fast:
                        return report
    return report
