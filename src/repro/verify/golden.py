"""Golden reference model of the PEI protocol, straight from the paper.

The simulator's :class:`repro.core.pim_directory.PimDirectory` realizes the
Section 4.3 protocol with two per-entry *timestamps* (last writer completion,
last reader completion).  This module re-derives the admissible orderings
from the paper's own vocabulary instead — per-entry **readable/writeable
bits** backed by a 10-bit reader counter and a 1-bit writer counter, plus
explicit **cache-copy / memory-freshness state** per block — so the two
encodings can be checked against each other by the differential harness
(:mod:`repro.verify.differential`).  Nothing here imports the simulator's
directory; the only shared code is the entry-width constants and the
``xor_fold`` index function, both of which are themselves under test.

Why the encodings must agree exactly: with in-flight PEIs retired the moment
a later PEI arrives, "entry not readable" is precisely "an admitted writer's
completion exceeds the arrival time", and the earliest admissible start of a
blocked PEI is the latest blocking completion plus the lock-handoff cost —
the same max/+ arithmetic, evaluated over the same floats.  Any divergence
beyond round-off is a protocol bug in one of the two encodings.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.pim_directory import MAX_CONCURRENT_READERS

__all__ = [
    "GoldenError",
    "GoldenEntry",
    "GoldenDirectory",
    "GoldenPeiRecord",
    "GoldenFenceRecord",
    "GoldenCacheState",
]


class GoldenError(AssertionError):
    """The golden model's own bookkeeping broke (a checker bug, not a sim bug)."""


@dataclass
class _Admitted:
    """One admitted PEI occupying a directory entry for [grant, completion)."""

    is_writer: bool
    grant: float
    completion: float

    def occupies_at(self, instant: float) -> bool:
        return self.grant <= instant < self.completion


@dataclass
class GoldenEntry:
    """One PIM directory entry as the paper describes it (Section 6.1).

    The entry remembers every admitted PEI's occupancy window
    ``[grant, completion)``; the 10-bit reader / 1-bit writer counters and
    the derived readable/writeable bits are functions of an instant:
    readable while no writer occupies the entry, writeable while nothing
    does.  Hardware-width and exclusion checks run at admit time over the
    whole window, which is exact for the counters (overlap of two windows
    means both PEIs are simultaneously counted at the later grant).
    """

    in_flight: List[_Admitted] = field(default_factory=list)

    def readers_at(self, instant: float) -> int:
        return sum(1 for pei in self.in_flight
                   if not pei.is_writer and pei.occupies_at(instant))

    def writers_at(self, instant: float) -> int:
        return sum(1 for pei in self.in_flight
                   if pei.is_writer and pei.occupies_at(instant))

    def readable_at(self, instant: float) -> bool:
        return self.writers_at(instant) == 0

    def writeable_at(self, instant: float) -> bool:
        return self.writers_at(instant) == 0 and self.readers_at(instant) == 0

    def retire_before(self, arrival: float) -> None:
        """Forget PEIs no future arrival can conflict with.

        Arrivals are monotonic, so a PEI whose completion precedes this
        arrival can never again block anyone or overlap a future window.
        """
        self.in_flight = [pei for pei in self.in_flight
                          if pei.completion > arrival]

    def blockers(self, is_writer: bool, arrival: float) -> List[_Admitted]:
        """The admitted PEIs an arrival at ``arrival`` must wait behind.

        Mirrors the conservative hardware rule: any previously admitted
        writer still completing after the arrival blocks (readers block
        only writers).
        """
        return [pei for pei in self.in_flight
                if pei.completion > arrival
                and (is_writer or pei.is_writer)]

    def admit(self, is_writer: bool, grant: float, completion: float) -> None:
        """Count a granted PEI into the entry, enforcing hardware widths."""
        overlapping = [pei for pei in self.in_flight
                       if pei.grant < completion and grant < pei.completion]
        if is_writer and any(pei.is_writer for pei in overlapping):
            raise GoldenError(
                "1-bit writer counter overflow: two writers occupy the "
                "entry simultaneously")
        if is_writer and overlapping:
            raise GoldenError(
                "writer admitted while the entry holds readers")
        if not is_writer and any(pei.is_writer for pei in overlapping):
            raise GoldenError(
                "reader admitted while the entry is not readable")
        self.in_flight.append(_Admitted(is_writer, grant, completion))
        if not is_writer:
            peak = max(self.readers_at(pei.grant)
                       for pei in self.in_flight if not pei.is_writer)
            if peak > MAX_CONCURRENT_READERS:
                raise GoldenError(
                    f"10-bit reader counter overflow: {peak} concurrent "
                    f"readers")


@dataclass(frozen=True)
class GoldenPeiRecord:
    """The golden verdict for one PEI: where it may run and when."""

    entry: int
    grant: float
    completion: float
    blocked: bool


@dataclass(frozen=True)
class GoldenFenceRecord:
    """The golden verdict for one pfence."""

    release: float


class GoldenDirectory:
    """Counter-encoded reference directory producing admissible timelines.

    ``index_fn`` maps a block number to an entry index; the differential
    harness passes the XOR fold of the geometry under test.  ``latency`` and
    ``handoff_penalty`` mirror the directory parameters so the expected
    grant times are computed in the same units as the simulator's.
    """

    def __init__(
        self,
        index_fn: Callable[[int], int],
        entries: int,
        latency: float,
        handoff_penalty: float,
        ideal: bool = False,
    ):
        self._index_fn = index_fn
        self.entries = entries
        self.latency = 0.0 if ideal else latency
        self.handoff_penalty = handoff_penalty
        self.ideal = ideal
        self._table: Dict[int, GoldenEntry] = {}
        # Completion horizon of every admitted writer — what the paper's
        # pfence waits for ("all directory entries readable" for the writers
        # issued so far).
        self._writer_horizon = 0.0
        self._any_horizon = 0.0

    def _entry(self, index: int) -> GoldenEntry:
        entry = self._table.get(index)
        if entry is None:
            entry = GoldenEntry()
            self._table[index] = entry
        return entry

    def admit_pei(self, block: int, is_writer: bool, issue: float,
                  occupancy: float) -> GoldenPeiRecord:
        """Admit one PEI issued at ``issue`` holding its lock for ``occupancy``.

        Returns the admissible grant time and resulting completion.  The
        grant rule is the paper's: wait until the entry is readable (reader)
        or writeable (writer), then start; a PEI that had to wait inherits
        the lock-handoff cost on top of the blocking completion.
        """
        index = self._index_fn(block)
        if not self.ideal and not 0 <= index < self.entries:
            raise GoldenError(
                f"index function escaped the table: {index} of {self.entries}")
        arrival = issue + self.latency
        entry = self._entry(index)
        entry.retire_before(arrival)
        blockers = entry.blockers(is_writer, arrival)
        if blockers:
            last = max(pei.completion for pei in blockers)
            grant = last + self.handoff_penalty
        else:
            grant = arrival
        completion = grant + occupancy
        entry.admit(is_writer, grant, completion)
        if is_writer and completion > self._writer_horizon:
            self._writer_horizon = completion
        if completion > self._any_horizon:
            self._any_horizon = completion
        return GoldenPeiRecord(entry=index, grant=grant,
                               completion=completion, blocked=bool(blockers))

    def fence(self, issue: float) -> GoldenFenceRecord:
        """pfence semantics: every previously admitted writer has completed."""
        horizon = self._writer_horizon if self._writer_horizon > issue else issue
        return GoldenFenceRecord(release=horizon + self.latency)

    def quiesce(self, issue: float) -> float:
        """When every admitted PEI, readers included, has completed."""
        return self._any_horizon if self._any_horizon > issue else issue


@dataclass
class GoldenCacheState:
    """Per-block cache-copy and memory-freshness state (Section 4.3).

    Tracks the two facts coherence management cares about: does the host
    hierarchy hold *any* copy of the block, and does main memory hold the
    latest data (i.e. no dirty copy on chip).  Host accesses and PMU cleans
    transition this state; :meth:`expect_clean` returns what a correct
    ``clean_block_for_memory`` must do from the current state.
    """

    present: bool = False
    dirty: bool = False

    @property
    def memory_fresh(self) -> bool:
        return not self.dirty

    def host_access(self, is_write: bool) -> None:
        """A host-side touch installs a copy; a write dirties it."""
        self.present = True
        if is_write:
            self.dirty = True

    def expect_clean(self, is_writer: bool) -> "GoldenCleanExpectation":
        """Predict a clean of this block for memory-side execution.

        A writer PEI back-invalidates (no stale copy may survive, since the
        memory-side result supersedes it); a reader PEI back-writebacks
        (copies may stay, but memory must be fresh).  Either way, memory is
        fresh afterwards and dirty data moves off chip iff there was any.
        """
        expectation = GoldenCleanExpectation(
            must_write_back=self.present and self.dirty,
            touches_hierarchy=self.present,
            invalidates=is_writer,
            present_after=self.present and not is_writer,
        )
        if is_writer:
            self.present = False
        self.dirty = False
        return expectation


@dataclass(frozen=True)
class GoldenCleanExpectation:
    """What a correct ``clean_block_for_memory`` does from a given state."""

    #: Dirty data existed on chip, so memory readiness must include a write.
    must_write_back: bool
    #: A copy existed, so the hierarchy must be probed (and stats must tick).
    touches_hierarchy: bool
    #: The clean is a back-invalidation (writer PEI) vs back-writeback.
    invalidates: bool
    #: Whether any on-chip copy legitimately survives the clean.
    present_after: bool

    def expected_stat(self) -> Optional[Tuple[str, str]]:
        """The (counter, untouched-counter) pair this clean must move."""
        if not self.touches_hierarchy:
            return None
        if self.invalidates:
            return ("pmu.back_invalidations", "pmu.back_writebacks")
        return ("pmu.back_writebacks", "pmu.back_invalidations")
