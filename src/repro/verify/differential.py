"""Differential checking: real timestamp directory vs. golden counter model.

Every schedule the explorer replays through the real
:class:`~repro.core.pim_directory.PimDirectory` is replayed here through the
paper-literal :class:`~repro.verify.golden.GoldenDirectory` as well, and the
two timelines are compared event by event:

========  ==========================================================
VER007    the real directory granted a PEI (or released a pfence) at
          a different time, or into a different entry, than the
          golden model admits
VER008    the golden model's own hardware-width bookkeeping tripped
          (counter overflow, writer admitted into an occupied entry)
          while replaying the *real* timeline's admissible schedule
========  ==========================================================

Because the two encodings provably perform the same max/+ float arithmetic
on correct implementations (see :mod:`repro.verify.golden`), the comparison
uses a tight tolerance rather than windowed ordering — a mutation as small
as dropping the handoff penalty or releasing a writer as a reader shifts a
grant by whole penalty/occupancy amounts and is caught immediately.
"""

from typing import Callable, List

from repro.util.bitops import ilog2, xor_fold
from repro.verify.explorer import (
    ExploreReport,
    ReplayResult,
    Violation,
    explore,
    occupancy_of,
    times_close,
)
from repro.verify.golden import GoldenDirectory, GoldenError
from repro.verify.schedule import DirectoryCase, ExploreBounds, Schedule

__all__ = [
    "golden_index_fn",
    "build_golden",
    "diff_schedule",
    "run_differential",
    "run_all",
]


def golden_index_fn(case: DirectoryCase) -> Callable[[int], int]:
    """The geometry's index function, derived independently of PimDirectory.

    Computed straight from ``xor_fold`` so a mutated ``PimDirectory.index_of``
    diverges from the golden expectation instead of poisoning both sides.
    """
    if case.ideal:
        return lambda block: block
    bits = ilog2(case.entries)
    return lambda block: xor_fold(block, bits)


def build_golden(case: DirectoryCase) -> GoldenDirectory:
    return GoldenDirectory(
        index_fn=golden_index_fn(case),
        entries=case.entries,
        latency=case.latency,
        handoff_penalty=case.handoff_penalty,
        ideal=case.ideal,
    )


def diff_schedule(
    case: DirectoryCase,
    sched: Schedule,
    result: ReplayResult,
    memory_lead: float,
) -> List[Violation]:
    """Replay one schedule through the golden model; compare timelines."""
    golden = build_golden(case)
    out: List[Violation] = []
    desc = sched.describe()

    def bad(code: str, detail: str) -> None:
        out.append(Violation(code=code, case=case.name, schedule=desc,
                             detail=detail))

    peis = {pei.step_index: pei for pei in result.peis}
    fences = {fence.step_index: fence for fence in result.fences}
    for i, step in enumerate(sched.steps):
        if i in fences:
            fence = fences[i]
            expected = golden.fence(fence.issue)
            if not times_close(fence.release, expected.release):
                bad("VER007",
                    f"step {i} pfence released at {fence.release:g}, golden "
                    f"model requires {expected.release:g}")
            continue
        pei = peis.get(i)
        if pei is None:
            bad("VER007", f"step {i} produced no replay record")
            continue
        try:
            expected = golden.admit_pei(
                pei.block, step.is_writer, pei.issue,
                occupancy_of(step, memory_lead))
        except GoldenError as exc:
            bad("VER008", f"step {i}: golden model bookkeeping failed: {exc}")
            return out
        if not case.ideal and expected.entry != pei.entry:
            bad("VER007",
                f"step {i} block {pei.block} entered entry {pei.entry}, "
                f"golden fold says {expected.entry}")
        if not times_close(pei.grant, expected.grant):
            bad("VER007",
                f"step {i} ({step.describe()}) granted at {pei.grant:g}, "
                f"golden model admits {expected.grant:g}"
                + (" (after blocking)" if expected.blocked else ""))
    return out


def run_differential(bounds: ExploreBounds, fail_fast: bool = False) -> ExploreReport:
    """Differential-only sweep (invariants still computed, they are cheap)."""
    return run_all(bounds, fail_fast=fail_fast)


def run_all(bounds: ExploreBounds, fail_fast: bool = False) -> ExploreReport:
    """One enumeration pass running invariants *and* the differential."""

    def extra(case: DirectoryCase, sched: Schedule,
              result: ReplayResult) -> List[Violation]:
        return diff_schedule(case, sched, result, bounds.memory_lead)

    return explore(bounds, fail_fast=fail_fast, extra_check=extra)
