"""Mutation testing: seeded protocol defects that the checkers must kill.

A verification harness that has never caught a bug proves nothing.  This
module injects known protocol defects into the real simulator via
monkeypatching (each mutant is a context manager that swaps one method of
:class:`~repro.core.pim_directory.PimDirectory` or
:class:`~repro.core.pmu.Pmu` and restores it on exit) and demands that the
bounded explorer, the differential checker, or the coherence harness flags
every one of them.  A surviving mutant fails ``make verify`` — it means a
class of real bug would sail through the checkers undetected.

The catalog covers every rule the protocol comprises: lock-handoff cost,
reader/writer blocking in all four directions, pfence horizons, tag-less
index stability, and both coherence actions.
"""

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Tuple

from repro.core.pim_directory import PimDirectory
from repro.core.pmu import Pmu
from repro.verify.coherence import CoherenceBounds, run_coherence
from repro.verify.differential import run_all
from repro.verify.explorer import ExploreReport
from repro.verify.schedule import ExploreBounds

__all__ = ["Mutant", "MUTANTS", "MutantOutcome", "MutantReport", "run_mutants"]


@dataclass(frozen=True)
class Mutant:
    """One seeded defect: a patch plus the bug class it represents."""

    name: str
    description: str
    patch: Callable[[], "contextmanager"]
    #: Does this defect only manifest on a full machine (coherence pass)?
    needs_machine: bool = False


@contextmanager
def _swap(cls, attr: str, replacement) -> Iterator[None]:
    original = getattr(cls, attr)
    setattr(cls, attr, replacement)
    try:
        yield
    finally:
        setattr(cls, attr, original)


# ----------------------------------------------------------------------
# Directory mutants
# ----------------------------------------------------------------------


def _mutant_drop_handoff():
    def acquire(self, block, is_writer, time):
        entry = self.index_of(block)
        t = time + self.latency
        writer_free = self._writer_free.get(entry, 0.0)
        if is_writer:
            readers_max = self._readers_max.get(entry, 0.0)
            busy_until = writer_free if writer_free > readers_max else readers_max
        else:
            busy_until = writer_free
        # Defect: a contended grant forgets the lock-handoff penalty.
        grant = busy_until if busy_until > t else t
        return entry, grant

    return _swap(PimDirectory, "acquire", acquire)


def _mutant_writer_release_as_reader():
    original = PimDirectory.release

    def release(self, entry, is_writer, completion):
        # Defect: writer completions land in the reader timestamp, so later
        # readers (and pfences) no longer wait for them.
        original(self, entry, False, completion)

    return _swap(PimDirectory, "release", release)


def _mutant_reader_ignores_writer():
    original = PimDirectory.acquire

    def acquire(self, block, is_writer, time):
        if is_writer:
            return original(self, block, is_writer, time)
        # Defect: readers start immediately, even during a writer.
        entry = self.index_of(block)
        return entry, time + self.latency

    return _swap(PimDirectory, "acquire", acquire)


def _mutant_writer_ignores_readers():
    def acquire(self, block, is_writer, time):
        entry = self.index_of(block)
        t = time + self.latency
        # Defect: writers check only writer_free, never readers_max.
        busy_until = self._writer_free.get(entry, 0.0)
        if busy_until > t:
            grant = busy_until + self.handoff_penalty
        else:
            grant = t
        return entry, grant

    return _swap(PimDirectory, "acquire", acquire)


def _mutant_fence_ignores_writers():
    def fence_time(self, time):
        # Defect: pfence returns after the directory access alone.
        return time + (0.0 if self.ideal else self.latency)

    return _swap(PimDirectory, "fence_time", fence_time)


def _mutant_release_skips_fence_horizon():
    def release(self, entry, is_writer, completion):
        if is_writer:
            if completion > self._writer_free.get(entry, 0.0):
                self._writer_free[entry] = completion
            # Defect: _fence_horizon is never advanced.
        else:
            if completion > self._readers_max.get(entry, 0.0):
                self._readers_max[entry] = completion
        if completion > self._pei_horizon:
            self._pei_horizon = completion

    return _swap(PimDirectory, "release", release)


def _mutant_unstable_index():
    original = PimDirectory.index_of
    flip = {"n": 0}

    def index_of(self, block):
        # Defect: a tag-less false negative — the same block alternates
        # between two entries, so conflicting PEIs can miss each other.
        flip["n"] += 1
        base = original(self, block)
        if self.ideal:
            return base
        return base ^ (flip["n"] & 1)

    return _swap(PimDirectory, "index_of", index_of)


# ----------------------------------------------------------------------
# Coherence mutants (need the full machine)
# ----------------------------------------------------------------------


def _mutant_skip_clean():
    def clean_block_for_memory(self, block, op, time):
        # Defect: memory-side execution starts on possibly stale DRAM data.
        return time

    return _swap(Pmu, "clean_block_for_memory", clean_block_for_memory)


def _mutant_writeback_instead_of_invalidate():
    def clean_block_for_memory(self, block, op, time):
        # Defect: writer PEIs only write back — a stale on-chip copy
        # survives the memory-side update.
        ready, _ = self.hierarchy.flush_block(block, invalidate=False, time=time)
        return ready

    return _swap(Pmu, "clean_block_for_memory", clean_block_for_memory)


#: The seeded-defect catalog (ISSUE acceptance: >= 5, all killed).
MUTANTS: Tuple[Mutant, ...] = (
    Mutant("drop-handoff",
           "contended grants forget the lock-handoff penalty",
           _mutant_drop_handoff),
    Mutant("writer-release-as-reader",
           "writer completions recorded as reader completions",
           _mutant_writer_release_as_reader),
    Mutant("reader-ignores-writer",
           "readers no longer wait for the in-flight writer",
           _mutant_reader_ignores_writer),
    Mutant("writer-ignores-readers",
           "writers no longer wait for in-flight readers",
           _mutant_writer_ignores_readers),
    Mutant("fence-ignores-writers",
           "pfence stops waiting for prior writer PEIs",
           _mutant_fence_ignores_writers),
    Mutant("release-skips-fence-horizon",
           "writer releases stop advancing the pfence horizon",
           _mutant_release_skips_fence_horizon),
    Mutant("unstable-index",
           "one block alternates between two directory entries",
           _mutant_unstable_index),
    Mutant("skip-back-invalidation",
           "memory-side PEIs run without cleaning the on-chip copy",
           _mutant_skip_clean, needs_machine=True),
    Mutant("writeback-instead-of-invalidate",
           "writer PEIs back-writeback instead of back-invalidating",
           _mutant_writeback_instead_of_invalidate, needs_machine=True),
)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


@dataclass
class MutantOutcome:
    """What the checkers saw with one defect injected."""

    mutant: Mutant
    killed: bool
    codes: Tuple[str, ...]

    def describe(self) -> str:
        verdict = "KILLED" if self.killed else "SURVIVED"
        by = f" by {', '.join(self.codes)}" if self.codes else ""
        return f"{verdict:8s} {self.mutant.name}: {self.mutant.description}{by}"


@dataclass
class MutantReport:
    outcomes: List[MutantOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.killed for outcome in self.outcomes)

    def summary(self) -> str:
        killed = sum(outcome.killed for outcome in self.outcomes)
        verdict = "PASS" if self.ok else "FAIL"
        return f"{verdict}: {killed}/{len(self.outcomes)} mutants killed"


def kill_bounds() -> ExploreBounds:
    """A small directory bound that still reaches every defect quickly."""
    return ExploreBounds(max_peis=3, durations=(3.0,), strides=(0.0, 7.0))


def kill_coherence_bounds() -> CoherenceBounds:
    """A small full-machine bound for the coherence mutants."""
    return CoherenceBounds(max_peis=2, strides=(0.0,),
                           primes=("shared-clean", "dirty-owner"))


def _check_mutant(mutant: Mutant) -> MutantOutcome:
    codes: List[str] = []
    with mutant.patch():
        if mutant.needs_machine:
            report: ExploreReport = run_coherence(
                kill_coherence_bounds(), fail_fast=True)
        else:
            report = run_all(kill_bounds(), fail_fast=True)
        codes.extend(sorted(report.by_code))
    return MutantOutcome(mutant=mutant, killed=bool(codes),
                         codes=tuple(codes))


def run_mutants() -> MutantReport:
    """Inject every cataloged defect; every one must be killed."""
    report = MutantReport()
    for mutant in MUTANTS:
        report.outcomes.append(_check_mutant(mutant))
    return report
