"""Bounded exhaustive exploration of PEI interleavings (the real directory).

For every :class:`~repro.verify.schedule.Schedule` at the configured bound
and every directory geometry, :func:`replay` drives a **fresh, real**
:class:`~repro.core.pim_directory.PimDirectory` through the schedule exactly
as the executor would (acquire → occupy → release, fences via
``fence_time``) and records the resulting timeline.  :func:`check_invariants`
then judges the timeline against the protocol obligations of Section 4.3:

========  ==========================================================
VER001    two writer PEIs of one *block* overlap in time
VER002    a reader PEI of a block overlaps a writer PEI of that block
VER003    unstable or out-of-range directory indexing (a tag-less
          false negative: one block visiting two entries)
VER004    grant precedes issue + directory latency, or completion
          precedes grant (time ran backwards)
VER005    a pfence released before a previously issued writer PEI
          completed
VER006    two PEIs sharing one directory *entry* overlap illegally
          (covers aliased blocks, which must serialize even though
          they never conflict architecturally)
========  ==========================================================

The differential codes VER007/VER008 and the coherence codes VER009+ live
in :mod:`repro.verify.differential` and :mod:`repro.verify.coherence`.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.pim_directory import PimDirectory
from repro.sim.stats import Stats
from repro.verify.schedule import (
    DirectoryCase,
    ExploreBounds,
    FenceStep,
    PeiStep,
    Schedule,
    enumerate_schedules,
)

__all__ = [
    "Violation",
    "ReplayPei",
    "ReplayFence",
    "ReplayResult",
    "ExploreReport",
    "times_close",
    "build_directory",
    "replay",
    "check_invariants",
    "explore",
]

#: Tolerance for "these two timestamps should be the same computation".
TIME_TOLERANCE = 1e-9


def times_close(a: float, b: float, tol: float = TIME_TOLERANCE) -> bool:
    """Equality-of-intent for timestamps without float `==` brittleness."""
    return abs(a - b) <= tol


@dataclass(frozen=True)
class Violation:
    """One invariant breach on one schedule."""

    code: str
    case: str
    schedule: str
    detail: str

    def __str__(self) -> str:
        return f"{self.code} [{self.case}] {self.schedule}: {self.detail}"


@dataclass(frozen=True)
class ReplayPei:
    """One PEI's observed passage through the real directory."""

    step_index: int
    step: PeiStep
    block: int        # real block number (case.blocks[step.block])
    entry: int
    issue: float
    grant: float
    completion: float


@dataclass(frozen=True)
class ReplayFence:
    """One pfence's observed release."""

    step_index: int
    issue: float
    release: float


@dataclass
class ReplayResult:
    """Everything one schedule replay produced, in step order."""

    peis: List[ReplayPei] = field(default_factory=list)
    fences: List[ReplayFence] = field(default_factory=list)


def build_directory(case: DirectoryCase) -> PimDirectory:
    """A fresh real directory configured for one geometry case."""
    return PimDirectory(
        entries=case.entries,
        latency=case.latency,
        stats=Stats(),
        ideal=case.ideal,
        handoff_penalty=case.handoff_penalty,
    )


def occupancy_of(step: PeiStep, memory_lead: float) -> float:
    """Lock occupancy after the grant: compute time plus, for memory-side
    execution, the clean/operand-ship lead the executor pays first."""
    lead = 0.0 if step.on_host else memory_lead
    return lead + step.duration


def replay(
    case: DirectoryCase,
    sched: Schedule,
    memory_lead: float,
    directory: Optional[PimDirectory] = None,
) -> ReplayResult:
    """Drive a real directory through one schedule; return the timeline.

    Mirrors the executor's synchronous discipline: each PEI acquires at its
    issue time, its completion is computed from the grant, and the release
    is recorded immediately (the directory holds completions as future
    timestamps, exactly as :class:`~repro.core.executor.PeiExecutor` does).
    """
    if directory is None:
        directory = build_directory(case)
    result = ReplayResult()
    for i, step in enumerate(sched.steps):
        issue = sched.issue(i)
        if isinstance(step, FenceStep):
            release = directory.fence_time(issue)
            result.fences.append(ReplayFence(step_index=i, issue=issue,
                                             release=release))
            continue
        block = case.blocks[step.block]
        entry, grant = directory.acquire(block, step.is_writer, issue)
        completion = grant + occupancy_of(step, memory_lead)
        directory.release(entry, step.is_writer, completion)
        result.peis.append(ReplayPei(
            step_index=i, step=step, block=block, entry=entry,
            issue=issue, grant=grant, completion=completion))
    return result


# ----------------------------------------------------------------------
# Invariant checking
# ----------------------------------------------------------------------


def _overlaps(a: ReplayPei, b: ReplayPei) -> bool:
    """Strict interval overlap of two lock-hold windows [grant, completion).

    Touching endpoints (one completes exactly when the next starts) is a
    legal handoff, not an overlap.
    """
    return a.grant < b.completion - TIME_TOLERANCE \
        and b.grant < a.completion - TIME_TOLERANCE


def check_invariants(
    case: DirectoryCase,
    sched: Schedule,
    result: ReplayResult,
    directory: Optional[PimDirectory] = None,
) -> List[Violation]:
    """Judge one replayed timeline against the Section 4.3 obligations."""
    out: List[Violation] = []
    desc = sched.describe()

    def bad(code: str, detail: str) -> None:
        out.append(Violation(code=code, case=case.name, schedule=desc,
                             detail=detail))

    # VER003: index stability and range.
    for pei in result.peis:
        if directory is not None:
            for _ in range(2):
                again = directory.index_of(pei.block)
                if again != pei.entry:
                    bad("VER003",
                        f"block {pei.block} indexed entry {pei.entry} at "
                        f"acquire but {again} on re-query — tag-less "
                        f"false negative")
                    break
        if not case.ideal and not 0 <= pei.entry < case.entries:
            bad("VER003",
                f"block {pei.block} mapped outside the table: entry "
                f"{pei.entry} of {case.entries}")

    # VER004: local monotonicity of each PEI's own timeline.
    for pei in result.peis:
        floor = pei.issue + (0.0 if case.ideal else case.latency)
        if pei.grant < floor - TIME_TOLERANCE:
            bad("VER004",
                f"step {pei.step_index} granted at {pei.grant:g} before "
                f"issue+latency {floor:g}")
        if pei.completion < pei.grant - TIME_TOLERANCE:
            bad("VER004",
                f"step {pei.step_index} completed at {pei.completion:g} "
                f"before its grant {pei.grant:g}")

    # VER001/VER002: per-block atomicity (the architectural contract).
    by_block: Dict[int, List[ReplayPei]] = {}
    for pei in result.peis:
        by_block.setdefault(pei.block, []).append(pei)
    for block, peis in by_block.items():
        for i in range(len(peis)):
            for j in range(i + 1, len(peis)):
                a, b = peis[i], peis[j]
                if not (a.step.is_writer or b.step.is_writer):
                    continue
                if not _overlaps(a, b):
                    continue
                code = "VER001" if (a.step.is_writer and b.step.is_writer) \
                    else "VER002"
                bad(code,
                    f"block {block}: steps {a.step_index} "
                    f"({a.step.describe()}, [{a.grant:g},{a.completion:g})) "
                    f"and {b.step_index} ({b.step.describe()}, "
                    f"[{b.grant:g},{b.completion:g})) overlap")

    # VER006: per-entry exclusion (the tag-less hardware contract — aliased
    # blocks must serialize too, because the entry cannot tell them apart).
    if not case.ideal:
        by_entry: Dict[int, List[ReplayPei]] = {}
        for pei in result.peis:
            by_entry.setdefault(pei.entry, []).append(pei)
        for entry, peis in by_entry.items():
            for i in range(len(peis)):
                for j in range(i + 1, len(peis)):
                    a, b = peis[i], peis[j]
                    if not (a.step.is_writer or b.step.is_writer):
                        continue
                    if _overlaps(a, b):
                        bad("VER006",
                            f"entry {entry}: steps {a.step_index} and "
                            f"{b.step_index} (blocks {a.block}/{b.block}) "
                            f"overlap — entry-level serialization violated")

    # VER005: every fence waits for every writer issued before it.
    for fence in result.fences:
        if fence.release < fence.issue - TIME_TOLERANCE:
            bad("VER005",
                f"step {fence.step_index} fence released at "
                f"{fence.release:g} before its own issue {fence.issue:g}")
        for pei in result.peis:
            if pei.step_index > fence.step_index or not pei.step.is_writer:
                continue
            if fence.release < pei.completion - TIME_TOLERANCE:
                bad("VER005",
                    f"step {fence.step_index} fence released at "
                    f"{fence.release:g} before writer step "
                    f"{pei.step_index} completed at {pei.completion:g}")
    return out


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


@dataclass
class ExploreReport:
    """Outcome of one exhaustive sweep."""

    schedules: int = 0
    replays: int = 0
    violations: List[Violation] = field(default_factory=list)
    by_code: Dict[str, int] = field(default_factory=dict)

    #: Keep at most this many violation records (counts stay exact).
    max_kept: int = 50

    @property
    def ok(self) -> bool:
        return not self.by_code

    def record(self, violations: List[Violation]) -> None:
        for violation in violations:
            self.by_code[violation.code] = self.by_code.get(violation.code, 0) + 1
            if len(self.violations) < self.max_kept:
                self.violations.append(violation)

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        counts = " ".join(f"{c}={n}" for c, n in sorted(self.by_code.items()))
        tail = f" ({counts})" if counts else ""
        return (f"{verdict}: {self.schedules} schedules, "
                f"{self.replays} replays{tail}")


def explore(
    bounds: ExploreBounds,
    fail_fast: bool = False,
    extra_check: Optional[
        Callable[[DirectoryCase, Schedule, ReplayResult], List[Violation]]
    ] = None,
) -> ExploreReport:
    """Exhaustively replay every schedule at the bound under every geometry.

    ``extra_check`` lets the differential harness piggyback on the same
    enumeration pass (one walk, both checkers) — it receives the case, the
    schedule, and the real timeline, and returns further violations.
    """
    report = ExploreReport()
    cases = bounds.directory_cases()
    for sched in enumerate_schedules(bounds):
        report.schedules += 1
        for case in cases:
            directory = build_directory(case)
            result = replay(case, sched, bounds.memory_lead,
                            directory=directory)
            report.replays += 1
            found = check_invariants(case, sched, result, directory=directory)
            if extra_check is not None:
                found.extend(extra_check(case, sched, result))
            if found:
                report.record(found)
                if fail_fast:
                    return report
    return report
