"""Command-line entry points for the analysis subsystem.

``python -m repro.analysis lint [paths...]``
    Run the :mod:`~repro.analysis.simlint` static pass (defaults to the
    installed ``repro`` source tree); exits non-zero on violations.

``python -m repro.analysis sanitize [options]``
    Run registry workloads with a :class:`~repro.core.tracer.PeiTracer`
    attached and check the collected event stream with
    :mod:`~repro.analysis.simsan`; exits non-zero on protocol violations.
    The default run set mirrors the Figure 10 experiment (SC, SVM, PR, HJ
    on large inputs under the locality-aware and balanced policies).

``python -m repro.analysis determinism [options]``
    Run each (workload, policy) experiment twice from fresh ``System``
    instances and require byte-identical results: cycles, instruction
    counts, the full statistics dictionary, and the complete
    :class:`~repro.core.tracer.PeiTracer` event stream (compared through
    ``repr`` so any bit-level float drift fails).  This pins the
    replayability guarantee that the SIM001/SIM002 lint rules protect
    statically; exits non-zero on any divergence.

``python -m repro.analysis telemetry <dirs-or-files...>``
    Validate telemetry artifacts (interval JSONL, Chrome trace, run
    bundles, and run-ledger event streams) written by ``python -m
    repro.bench run <exp> --telemetry`` / ``--events`` against the
    :mod:`~repro.analysis.telemetry` schema checks; exits non-zero on
    schema problems (or if no artifacts are found).

``python -m repro.analysis flow [options] [paths...]``
    Run the :mod:`~repro.analysis.flow` whole-program dataflow passes
    (fingerprint soundness, unit taint, hot-path purity) with JSON/SARIF
    output and a checked-in baseline; exits non-zero on findings.

``python -m repro.analysis flow-mutants [paths...]``
    Seeded-defect self-validation: patch each known defect into an
    in-memory copy of the tree and require the matching flow pass to
    catch it; exits non-zero if any mutant survives.

``python -m repro.analysis race [options] [paths...]``
    Run the :mod:`~repro.analysis.race` static concurrency passes
    (payload picklability, durable-write discipline, fork/worker
    hygiene, ordering soundness) with JSON/SARIF output and a checked-in
    baseline; exits non-zero on findings.

``python -m repro.analysis race-mutants [paths...]``
    Seeded concurrency-defect self-validation for the race passes;
    exits non-zero if any mutant survives.
"""

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.flow import (
    FLOW_CODES,
    load_baseline,
    run_flow,
    run_mutants,
    write_baseline,
)
from repro.analysis.flow.report import (
    format_report,
    write_json,
    write_sarif,
)
from repro.analysis.race import (
    RACE_CODES,
    load_baseline as load_race_baseline,
    run_race,
    run_race_mutants,
    write_baseline as write_race_baseline,
)
from repro.analysis.race.report import (
    format_report as format_race_report,
    write_json as write_race_json,
    write_sarif as write_race_sarif,
)
from repro.analysis.simlint import RULES, format_violations, lint_paths
from repro.analysis.simsan import CHECKS, sanitize_tracer
from repro.analysis.telemetry import (
    check_bundle_dir,
    check_chrome_trace,
    check_events_jsonl,
    check_interval_jsonl,
    check_run_bundle,
    format_problems,
)

#: Default sanitize run set: the Figure 10 workloads.
FIG10_WORKLOADS = ("SC", "SVM", "PR", "HJ")
DEFAULT_POLICIES = ("locality-aware", "locality-balanced")
#: Default determinism run set: one pointer-chasing and one streaming
#: workload cover both PEI dispatch paths without a long CI run.
DEFAULT_DETERMINISM_WORKLOADS = ("PR", "HJ")


def _default_lint_root() -> Path:
    """The installed repro package source (``src/repro``)."""
    return Path(__file__).resolve().parents[1]


def _default_baseline() -> Optional[Path]:
    """``flow-baseline.json`` next to the working directory, if present."""
    candidate = Path("flow-baseline.json")
    return candidate if candidate.exists() else None


def _default_race_baseline() -> Optional[Path]:
    """``race-baseline.json`` next to the working directory, if present."""
    candidate = Path("race-baseline.json")
    return candidate if candidate.exists() else None


def _check_paths(paths: List[Path]) -> bool:
    missing = [p for p in paths if not p.exists()]
    for p in missing:
        print(f"error: no such file or directory: {p}", file=sys.stderr)
    return not missing


def _parse_select(raw: Optional[str], known) -> Optional[List[str]]:
    """Validated code list from ``--select``; raises SystemExit-ish None."""
    if not raw:
        return None
    select = [c.strip().upper() for c in raw.split(",")]
    unknown = [c for c in select if c not in known]
    if unknown:
        print(f"error: unknown rule code(s): {', '.join(unknown)} "
              f"(known: {', '.join(sorted(known))})", file=sys.stderr)
        raise _BadArgs()
    return select


class _BadArgs(Exception):
    """Invalid CLI arguments detected past argparse (exit code 2)."""


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code}  {rule.title}")
            print(f"       {rule.rationale}")
        return 0
    paths = [Path(p) for p in args.paths] or [_default_lint_root()]
    if not _check_paths(paths):
        return 2
    try:
        select = _parse_select(args.select, RULES)
    except _BadArgs:
        return 2
    if args.bench:
        # The shared-walk refactor's visible payoff: one parse and one
        # dispatch walk per module, timed end to end over the real tree.
        start = time.perf_counter()  # simlint: ignore[SIM001] -- measures the analyzer's own host runtime, never simulated time
        violations = lint_paths(paths, select=select)
        elapsed_ms = (time.perf_counter() - start) * 1000.0  # simlint: ignore[SIM001] -- measures the analyzer's own host runtime, never simulated time
        n_rules = len(select) if select else len(RULES)
        print(f"lint-bench: {n_rules} rules over {len(paths)} root(s) in "
              f"{elapsed_ms:.1f} ms (single shared AST walk per module)")
    else:
        violations = lint_paths(paths, select=select)
    print(format_violations(violations))
    return 1 if violations else 0


def _cmd_flow(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code in sorted(FLOW_CODES):
            title, rationale = FLOW_CODES[code]
            print(f"{code}  {title}")
            print(f"       {rationale}")
        return 0
    paths = [Path(p) for p in args.paths] or [_default_lint_root()]
    if not _check_paths(paths):
        return 2
    try:
        select = _parse_select(args.select, FLOW_CODES)
    except _BadArgs:
        return 2
    baseline: Optional[Path]
    if args.no_baseline:
        baseline = None
    elif args.baseline is not None:
        baseline = Path(args.baseline)
        if not baseline.exists() and not args.update_baseline:
            print(f"error: baseline file not found: {baseline}",
                  file=sys.stderr)
            return 2
        try:
            if baseline.exists():
                load_baseline(baseline)
        except (ValueError, KeyError, OSError) as exc:
            print(f"error: malformed baseline {baseline}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        baseline = _default_baseline()
    if args.update_baseline:
        if baseline is None:
            print("error: --update-baseline needs --baseline PATH",
                  file=sys.stderr)
            return 2
        report = run_flow(paths, select=select, baseline=None)
        write_baseline(baseline, report.findings)
        print(f"simflow: wrote {len(report.findings)} finding(s) to "
              f"{baseline}")
        return 0
    report = run_flow(paths, select=select, baseline=baseline)
    if args.json is not None:
        write_json(report, Path(args.json))
    if args.sarif is not None:
        write_sarif(report, Path(args.sarif))
    print(format_report(report))
    return 1 if report.findings else 0


def _cmd_flow_mutants(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths] or [_default_lint_root()]
    if not _check_paths(paths):
        return 2
    baseline = None if args.no_baseline else _default_baseline()
    try:
        results, pristine = run_mutants(paths, baseline=baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    survived = 0
    for result in results:
        status = "killed" if result.killed else "SURVIVED"
        print(f"flow-mutant {result.mutant.name:<28} "
              f"[{result.mutant.code}] {status}")
        if result.killed and args.verbose:
            for line in result.new_findings:
                print(f"    {line}")
        if not result.killed:
            survived += 1
            print(f"    expected a new {result.mutant.code}: "
                  f"{result.mutant.description}")
    verdict = ("all killed" if survived == 0
               else f"{survived} SURVIVED")
    print(f"flow-mutants: {len(results)} seeded defect(s), {verdict} "
          f"(pristine tree: {len(pristine.findings)} finding(s))")
    return 1 if survived else 0


def _cmd_race(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code in sorted(RACE_CODES):
            title, rationale = RACE_CODES[code]
            print(f"{code}  {title}")
            print(f"       {rationale}")
        return 0
    paths = [Path(p) for p in args.paths] or [_default_lint_root()]
    if not _check_paths(paths):
        return 2
    try:
        select = _parse_select(args.select, RACE_CODES)
    except _BadArgs:
        return 2
    baseline: Optional[Path]
    if args.no_baseline:
        baseline = None
    elif args.baseline is not None:
        baseline = Path(args.baseline)
        if not baseline.exists() and not args.update_baseline:
            print(f"error: baseline file not found: {baseline}",
                  file=sys.stderr)
            return 2
        try:
            if baseline.exists():
                load_race_baseline(baseline)
        except (ValueError, KeyError, OSError) as exc:
            print(f"error: malformed baseline {baseline}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        baseline = _default_race_baseline()
    if args.update_baseline:
        if baseline is None:
            print("error: --update-baseline needs --baseline PATH",
                  file=sys.stderr)
            return 2
        report = run_race(paths, select=select, baseline=None)
        write_race_baseline(baseline, report.findings)
        print(f"simrace: wrote {len(report.findings)} finding(s) to "
              f"{baseline}")
        return 0
    report = run_race(paths, select=select, baseline=baseline)
    if args.json is not None:
        write_race_json(report, Path(args.json))
    if args.sarif is not None:
        write_race_sarif(report, Path(args.sarif))
    print(format_race_report(report))
    return 1 if report.findings else 0


def _cmd_race_mutants(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths] or [_default_lint_root()]
    if not _check_paths(paths):
        return 2
    baseline = None if args.no_baseline else _default_race_baseline()
    try:
        results, pristine = run_race_mutants(paths, baseline=baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    survived = 0
    for result in results:
        status = "killed" if result.killed else "SURVIVED"
        print(f"race-mutant {result.mutant.name:<28} "
              f"[{result.mutant.code}] {status}")
        if result.killed and args.verbose:
            for line in result.new_findings:
                print(f"    {line}")
        if not result.killed:
            survived += 1
            print(f"    expected a new {result.mutant.code}: "
                  f"{result.mutant.description}")
    verdict = ("all killed" if survived == 0
               else f"{survived} SURVIVED")
    print(f"race-mutants: {len(results)} seeded defect(s), {verdict} "
          f"(pristine tree: {len(pristine.findings)} finding(s))")
    return 1 if survived else 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    # Imported lazily: the lint half must not require numpy.
    from repro.core.dispatch import DispatchPolicy
    from repro.core.tracer import PeiTracer
    from repro.system.config import scaled_config, tiny_config
    from repro.system.system import System
    from repro.workloads.registry import make_workload

    workloads = args.workload or list(FIG10_WORKLOADS)
    policies = args.policy or list(DEFAULT_POLICIES)
    config_fn = tiny_config if args.config == "tiny" else scaled_config
    failures = 0
    total_peis = 0
    for name in workloads:
        for policy_name in policies:
            try:
                policy = DispatchPolicy(policy_name)
                workload = make_workload(name, args.size, seed=args.seed)
            except (KeyError, ValueError) as exc:
                message = exc.args[0] if exc.args else exc
                print(f"error: {message}", file=sys.stderr)
                return 2
            system = System(config_fn(), policy)
            tracer = PeiTracer()
            system.executor.tracer = tracer
            system.run(workload, max_ops_per_thread=args.ops)
            directory = system.machine.directory
            report = sanitize_tracer(
                tracer,
                operand_buffer_entries=system.config.pcu_operand_buffer_entries,
                directory_entries=None if directory.ideal else directory.entries,
            )
            total_peis += report.peis_checked
            status = "clean" if report.ok else f"{len(report.violations)} violation(s)"
            print(f"sanitize {name:>4} / {policy.value:<17} "
                  f"{report.peis_checked:>7} PEIs, "
                  f"{report.fences_checked:>4} pfences: {status}")
            if not report.ok:
                failures += len(report.violations)
                for violation in report.violations:
                    print(f"  {violation}")
    verdict = "clean" if failures == 0 else f"{failures} violation(s)"
    print(f"simsan: {total_peis} PEIs across "
          f"{len(workloads) * len(policies)} run(s): {verdict}")
    return 1 if failures else 0


def _fingerprint(result, tracer) -> Dict[str, object]:
    """Everything a replay must reproduce byte-for-byte.

    Floats are captured through ``repr`` (shortest round-trip form), so two
    fingerprints match iff every metric and every traced event is identical
    to the last bit — the replayability bar SIM001/SIM002 exist to protect.
    """
    return {
        "cycles": repr(result.cycles),
        "instructions": result.instructions,
        "per_core_instructions": tuple(result.per_core_instructions),
        "stats": tuple(sorted(
            (key, repr(value)) for key, value in result.stats.items())),
        "events": tuple(repr(event) for event in tracer.events),
        "dropped_events": tracer.dropped,
    }


def _cmd_determinism(args: argparse.Namespace) -> int:
    # Imported lazily: the lint half must not require numpy.
    from repro.core.dispatch import DispatchPolicy
    from repro.core.tracer import PeiTracer
    from repro.system.config import scaled_config, tiny_config
    from repro.system.system import System
    from repro.workloads.registry import make_workload

    workloads = args.workload or list(DEFAULT_DETERMINISM_WORKLOADS)
    policies = args.policy or list(DEFAULT_POLICIES)
    config_fn = tiny_config if args.config == "tiny" else scaled_config
    failures = 0
    for name in workloads:
        for policy_name in policies:
            fingerprints = []
            for _ in range(2):
                try:
                    policy = DispatchPolicy(policy_name)
                    workload = make_workload(name, args.size, seed=args.seed)
                except (KeyError, ValueError) as exc:
                    message = exc.args[0] if exc.args else exc
                    print(f"error: {message}", file=sys.stderr)
                    return 2
                system = System(config_fn(), policy)
                tracer = PeiTracer()
                system.executor.tracer = tracer
                result = system.run(workload, max_ops_per_thread=args.ops)
                fingerprints.append(_fingerprint(result, tracer))
            first, second = fingerprints
            diverged = sorted(k for k in first if first[k] != second[k])
            n_events = len(first["events"])
            if diverged:
                failures += 1
                print(f"determinism {name:>4} / {policy_name:<17} "
                      f"DIVERGED: {', '.join(diverged)}")
                for key in diverged:
                    a, b = first[key], second[key]
                    if isinstance(a, tuple) and isinstance(b, tuple):
                        for i, (x, y) in enumerate(zip(a, b)):
                            if x != y:
                                print(f"  {key}[{i}]: {x!r} != {y!r}")
                                break
                        else:
                            print(f"  {key}: lengths {len(a)} != {len(b)}")
                    else:
                        print(f"  {key}: {a!r} != {b!r}")
            else:
                print(f"determinism {name:>4} / {policy_name:<17} "
                      f"{n_events:>6} events, "
                      f"{len(first['stats']):>3} stats: identical")
    verdict = "replayable" if failures == 0 else f"{failures} divergent run(s)"
    print(f"determinism: {verdict}")
    return 1 if failures else 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    results: Dict[str, List[str]] = {}
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            try:
                results.update(check_bundle_dir(path))
            except FileNotFoundError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        elif path.name.endswith(".intervals.jsonl"):
            results[str(path)] = check_interval_jsonl(path)
        elif path.name.endswith(".trace.json"):
            results[str(path)] = check_chrome_trace(path)
        elif path.name.endswith(".run.json"):
            results[str(path)] = check_run_bundle(path)
        elif (path.name.endswith(".events.jsonl")
              or (path.name.startswith("EVENTS_")
                  and path.name.endswith(".jsonl"))):
            results[str(path)] = check_events_jsonl(path)
        else:
            print(f"error: unrecognized telemetry artifact: {path} "
                  f"(expected *.intervals.jsonl, *.trace.json, *.run.json, "
                  f"EVENTS_*.jsonl or *.events.jsonl)",
                  file=sys.stderr)
            return 2
    print(format_problems(results))
    return 1 if any(results.values()) else 0


def _cmd_checks(_args: argparse.Namespace) -> int:
    for code in sorted(CHECKS):
        print(f"{code}  {CHECKS[code]}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Simulator lint pass and PEI protocol sanitizer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="static simulator-discipline checks")
    lint.add_argument("paths", nargs="*", help="files/directories to lint "
                      "(default: the installed repro source tree)")
    lint.add_argument("--select", help="comma-separated rule codes to run")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--bench", action="store_true",
                      help="print a lint-runtime microbench line")
    lint.set_defaults(func=_cmd_lint)

    flow = sub.add_parser(
        "flow", help="whole-program dataflow checks (fingerprints, units, "
        "hot-path purity)")
    flow.add_argument("paths", nargs="*", help="files/directories to "
                      "analyze (default: the installed repro source tree)")
    flow.add_argument("--select", help="comma-separated FLW codes to run")
    flow.add_argument("--list-rules", action="store_true",
                      help="print the flow rule catalogue and exit")
    flow.add_argument("--baseline", help="accepted-findings file (default: "
                      "./flow-baseline.json when present)")
    flow.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file")
    flow.add_argument("--update-baseline", action="store_true",
                      help="write current findings to the baseline and exit")
    flow.add_argument("--json", help="write a machine-readable report here")
    flow.add_argument("--sarif", help="write a SARIF 2.1.0 report here "
                      "(code-scanning upload)")
    flow.set_defaults(func=_cmd_flow)

    flow_mutants = sub.add_parser(
        "flow-mutants", help="seeded-defect self-validation of the flow "
        "passes")
    flow_mutants.add_argument("paths", nargs="*",
                              help="tree to mutate in memory (default: the "
                              "installed repro source tree)")
    flow_mutants.add_argument("--no-baseline", action="store_true",
                              help="ignore any baseline file")
    flow_mutants.add_argument("--verbose", "-v", action="store_true",
                              help="print the findings that killed each "
                              "mutant")
    flow_mutants.set_defaults(func=_cmd_flow_mutants)

    race = sub.add_parser(
        "race", help="static concurrency checks (payload picklability, "
        "durable writes, worker hygiene, ordering)")
    race.add_argument("paths", nargs="*", help="files/directories to "
                      "analyze (default: the installed repro source tree)")
    race.add_argument("--select", help="comma-separated RCE codes to run")
    race.add_argument("--list-rules", action="store_true",
                      help="print the race rule catalogue and exit")
    race.add_argument("--baseline", help="accepted-findings file (default: "
                      "./race-baseline.json when present)")
    race.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file")
    race.add_argument("--update-baseline", action="store_true",
                      help="write current findings to the baseline and exit")
    race.add_argument("--json", help="write a machine-readable report here")
    race.add_argument("--sarif", help="write a SARIF 2.1.0 report here "
                      "(code-scanning upload)")
    race.set_defaults(func=_cmd_race)

    race_mutants = sub.add_parser(
        "race-mutants", help="seeded concurrency-defect self-validation of "
        "the race passes")
    race_mutants.add_argument("paths", nargs="*",
                              help="tree to mutate in memory (default: the "
                              "installed repro source tree)")
    race_mutants.add_argument("--no-baseline", action="store_true",
                              help="ignore any baseline file")
    race_mutants.add_argument("--verbose", "-v", action="store_true",
                              help="print the findings that killed each "
                              "mutant")
    race_mutants.set_defaults(func=_cmd_race_mutants)

    sanitize = sub.add_parser(
        "sanitize", help="run workloads under the PEI protocol sanitizer")
    sanitize.add_argument("--workload", "-w", action="append",
                          help="registry workload name (repeatable; default: "
                          f"{', '.join(FIG10_WORKLOADS)})")
    sanitize.add_argument("--policy", "-p", action="append",
                          help="dispatch policy value (repeatable; default: "
                          f"{', '.join(DEFAULT_POLICIES)})")
    sanitize.add_argument("--size", default="large",
                          choices=("small", "medium", "large"),
                          help="input regime (default: large, the Fig. 10 size)")
    sanitize.add_argument("--config", default="scaled",
                          choices=("scaled", "tiny"),
                          help="machine preset (default: scaled)")
    sanitize.add_argument("--ops", type=int, default=8000,
                          help="operations per thread (default: 8000)")
    sanitize.add_argument("--seed", type=int, default=42)
    sanitize.set_defaults(func=_cmd_sanitize)

    determinism = sub.add_parser(
        "determinism",
        help="run each experiment twice and require bit-identical results")
    determinism.add_argument("--workload", "-w", action="append",
                             help="registry workload name (repeatable; "
                             "default: "
                             f"{', '.join(DEFAULT_DETERMINISM_WORKLOADS)})")
    determinism.add_argument("--policy", "-p", action="append",
                             help="dispatch policy value (repeatable; "
                             f"default: {', '.join(DEFAULT_POLICIES)})")
    determinism.add_argument("--size", default="small",
                             choices=("small", "medium", "large"),
                             help="input regime (default: small)")
    determinism.add_argument("--config", default="tiny",
                             choices=("scaled", "tiny"),
                             help="machine preset (default: tiny)")
    determinism.add_argument("--ops", type=int, default=2000,
                             help="operations per thread (default: 2000)")
    determinism.add_argument("--seed", type=int, default=42)
    determinism.set_defaults(func=_cmd_determinism)

    telemetry = sub.add_parser(
        "telemetry", help="schema-check telemetry artifacts (JSONL + traces)")
    telemetry.add_argument("paths", nargs="+",
                           help="telemetry output directories or individual "
                           "artifact files")
    telemetry.set_defaults(func=_cmd_telemetry)

    checks = sub.add_parser("checks", help="print the sanitizer check catalogue")
    checks.set_defaults(func=_cmd_checks)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
