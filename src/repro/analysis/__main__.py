"""Command-line entry points for the analysis subsystem.

``python -m repro.analysis lint [paths...]``
    Run the :mod:`~repro.analysis.simlint` static pass (defaults to the
    installed ``repro`` source tree); exits non-zero on violations.

``python -m repro.analysis sanitize [options]``
    Run registry workloads with a :class:`~repro.core.tracer.PeiTracer`
    attached and check the collected event stream with
    :mod:`~repro.analysis.simsan`; exits non-zero on protocol violations.
    The default run set mirrors the Figure 10 experiment (SC, SVM, PR, HJ
    on large inputs under the locality-aware and balanced policies).

``python -m repro.analysis determinism [options]``
    Run each (workload, policy) experiment twice from fresh ``System``
    instances and require byte-identical results: cycles, instruction
    counts, the full statistics dictionary, and the complete
    :class:`~repro.core.tracer.PeiTracer` event stream (compared through
    ``repr`` so any bit-level float drift fails).  This pins the
    replayability guarantee that the SIM001/SIM002 lint rules protect
    statically; exits non-zero on any divergence.

``python -m repro.analysis telemetry <dirs-or-files...>``
    Validate telemetry artifacts (interval JSONL, Chrome trace, run
    bundles) written by ``python -m repro.bench run <exp> --telemetry``
    against the :mod:`~repro.analysis.telemetry` schema checks; exits
    non-zero on schema problems (or if no artifacts are found).
"""

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.simlint import RULES, format_violations, lint_paths
from repro.analysis.simsan import CHECKS, sanitize_tracer
from repro.analysis.telemetry import (
    check_bundle_dir,
    check_chrome_trace,
    check_interval_jsonl,
    check_run_bundle,
    format_problems,
)

#: Default sanitize run set: the Figure 10 workloads.
FIG10_WORKLOADS = ("SC", "SVM", "PR", "HJ")
DEFAULT_POLICIES = ("locality-aware", "locality-balanced")
#: Default determinism run set: one pointer-chasing and one streaming
#: workload cover both PEI dispatch paths without a long CI run.
DEFAULT_DETERMINISM_WORKLOADS = ("PR", "HJ")


def _default_lint_root() -> Path:
    """The installed repro package source (``src/repro``)."""
    return Path(__file__).resolve().parents[1]


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code}  {rule.title}")
            print(f"       {rule.rationale}")
        return 0
    paths = [Path(p) for p in args.paths] or [_default_lint_root()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
        return 2
    select = [c.strip().upper() for c in args.select.split(",")] if args.select else None
    if select:
        unknown = [c for c in select if c not in RULES]
        if unknown:
            print(f"error: unknown rule code(s): {', '.join(unknown)} "
                  f"(known: {', '.join(sorted(RULES))})", file=sys.stderr)
            return 2
    violations = lint_paths(paths, select=select)
    print(format_violations(violations))
    return 1 if violations else 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    # Imported lazily: the lint half must not require numpy.
    from repro.core.dispatch import DispatchPolicy
    from repro.core.tracer import PeiTracer
    from repro.system.config import scaled_config, tiny_config
    from repro.system.system import System
    from repro.workloads.registry import make_workload

    workloads = args.workload or list(FIG10_WORKLOADS)
    policies = args.policy or list(DEFAULT_POLICIES)
    config_fn = tiny_config if args.config == "tiny" else scaled_config
    failures = 0
    total_peis = 0
    for name in workloads:
        for policy_name in policies:
            try:
                policy = DispatchPolicy(policy_name)
                workload = make_workload(name, args.size, seed=args.seed)
            except (KeyError, ValueError) as exc:
                message = exc.args[0] if exc.args else exc
                print(f"error: {message}", file=sys.stderr)
                return 2
            system = System(config_fn(), policy)
            tracer = PeiTracer()
            system.executor.tracer = tracer
            system.run(workload, max_ops_per_thread=args.ops)
            directory = system.machine.directory
            report = sanitize_tracer(
                tracer,
                operand_buffer_entries=system.config.pcu_operand_buffer_entries,
                directory_entries=None if directory.ideal else directory.entries,
            )
            total_peis += report.peis_checked
            status = "clean" if report.ok else f"{len(report.violations)} violation(s)"
            print(f"sanitize {name:>4} / {policy.value:<17} "
                  f"{report.peis_checked:>7} PEIs, "
                  f"{report.fences_checked:>4} pfences: {status}")
            if not report.ok:
                failures += len(report.violations)
                for violation in report.violations:
                    print(f"  {violation}")
    verdict = "clean" if failures == 0 else f"{failures} violation(s)"
    print(f"simsan: {total_peis} PEIs across "
          f"{len(workloads) * len(policies)} run(s): {verdict}")
    return 1 if failures else 0


def _fingerprint(result, tracer) -> Dict[str, object]:
    """Everything a replay must reproduce byte-for-byte.

    Floats are captured through ``repr`` (shortest round-trip form), so two
    fingerprints match iff every metric and every traced event is identical
    to the last bit — the replayability bar SIM001/SIM002 exist to protect.
    """
    return {
        "cycles": repr(result.cycles),
        "instructions": result.instructions,
        "per_core_instructions": tuple(result.per_core_instructions),
        "stats": tuple(sorted(
            (key, repr(value)) for key, value in result.stats.items())),
        "events": tuple(repr(event) for event in tracer.events),
        "dropped_events": tracer.dropped,
    }


def _cmd_determinism(args: argparse.Namespace) -> int:
    # Imported lazily: the lint half must not require numpy.
    from repro.core.dispatch import DispatchPolicy
    from repro.core.tracer import PeiTracer
    from repro.system.config import scaled_config, tiny_config
    from repro.system.system import System
    from repro.workloads.registry import make_workload

    workloads = args.workload or list(DEFAULT_DETERMINISM_WORKLOADS)
    policies = args.policy or list(DEFAULT_POLICIES)
    config_fn = tiny_config if args.config == "tiny" else scaled_config
    failures = 0
    for name in workloads:
        for policy_name in policies:
            fingerprints = []
            for _ in range(2):
                try:
                    policy = DispatchPolicy(policy_name)
                    workload = make_workload(name, args.size, seed=args.seed)
                except (KeyError, ValueError) as exc:
                    message = exc.args[0] if exc.args else exc
                    print(f"error: {message}", file=sys.stderr)
                    return 2
                system = System(config_fn(), policy)
                tracer = PeiTracer()
                system.executor.tracer = tracer
                result = system.run(workload, max_ops_per_thread=args.ops)
                fingerprints.append(_fingerprint(result, tracer))
            first, second = fingerprints
            diverged = sorted(k for k in first if first[k] != second[k])
            n_events = len(first["events"])
            if diverged:
                failures += 1
                print(f"determinism {name:>4} / {policy_name:<17} "
                      f"DIVERGED: {', '.join(diverged)}")
                for key in diverged:
                    a, b = first[key], second[key]
                    if isinstance(a, tuple) and isinstance(b, tuple):
                        for i, (x, y) in enumerate(zip(a, b)):
                            if x != y:
                                print(f"  {key}[{i}]: {x!r} != {y!r}")
                                break
                        else:
                            print(f"  {key}: lengths {len(a)} != {len(b)}")
                    else:
                        print(f"  {key}: {a!r} != {b!r}")
            else:
                print(f"determinism {name:>4} / {policy_name:<17} "
                      f"{n_events:>6} events, "
                      f"{len(first['stats']):>3} stats: identical")
    verdict = "replayable" if failures == 0 else f"{failures} divergent run(s)"
    print(f"determinism: {verdict}")
    return 1 if failures else 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    results: Dict[str, List[str]] = {}
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            try:
                results.update(check_bundle_dir(path))
            except FileNotFoundError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        elif path.name.endswith(".intervals.jsonl"):
            results[str(path)] = check_interval_jsonl(path)
        elif path.name.endswith(".trace.json"):
            results[str(path)] = check_chrome_trace(path)
        elif path.name.endswith(".run.json"):
            results[str(path)] = check_run_bundle(path)
        else:
            print(f"error: unrecognized telemetry artifact: {path} "
                  f"(expected *.intervals.jsonl, *.trace.json or *.run.json)",
                  file=sys.stderr)
            return 2
    print(format_problems(results))
    return 1 if any(results.values()) else 0


def _cmd_checks(_args: argparse.Namespace) -> int:
    for code in sorted(CHECKS):
        print(f"{code}  {CHECKS[code]}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Simulator lint pass and PEI protocol sanitizer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="static simulator-discipline checks")
    lint.add_argument("paths", nargs="*", help="files/directories to lint "
                      "(default: the installed repro source tree)")
    lint.add_argument("--select", help="comma-separated rule codes to run")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.set_defaults(func=_cmd_lint)

    sanitize = sub.add_parser(
        "sanitize", help="run workloads under the PEI protocol sanitizer")
    sanitize.add_argument("--workload", "-w", action="append",
                          help="registry workload name (repeatable; default: "
                          f"{', '.join(FIG10_WORKLOADS)})")
    sanitize.add_argument("--policy", "-p", action="append",
                          help="dispatch policy value (repeatable; default: "
                          f"{', '.join(DEFAULT_POLICIES)})")
    sanitize.add_argument("--size", default="large",
                          choices=("small", "medium", "large"),
                          help="input regime (default: large, the Fig. 10 size)")
    sanitize.add_argument("--config", default="scaled",
                          choices=("scaled", "tiny"),
                          help="machine preset (default: scaled)")
    sanitize.add_argument("--ops", type=int, default=8000,
                          help="operations per thread (default: 8000)")
    sanitize.add_argument("--seed", type=int, default=42)
    sanitize.set_defaults(func=_cmd_sanitize)

    determinism = sub.add_parser(
        "determinism",
        help="run each experiment twice and require bit-identical results")
    determinism.add_argument("--workload", "-w", action="append",
                             help="registry workload name (repeatable; "
                             "default: "
                             f"{', '.join(DEFAULT_DETERMINISM_WORKLOADS)})")
    determinism.add_argument("--policy", "-p", action="append",
                             help="dispatch policy value (repeatable; "
                             f"default: {', '.join(DEFAULT_POLICIES)})")
    determinism.add_argument("--size", default="small",
                             choices=("small", "medium", "large"),
                             help="input regime (default: small)")
    determinism.add_argument("--config", default="tiny",
                             choices=("scaled", "tiny"),
                             help="machine preset (default: tiny)")
    determinism.add_argument("--ops", type=int, default=2000,
                             help="operations per thread (default: 2000)")
    determinism.add_argument("--seed", type=int, default=42)
    determinism.set_defaults(func=_cmd_determinism)

    telemetry = sub.add_parser(
        "telemetry", help="schema-check telemetry artifacts (JSONL + traces)")
    telemetry.add_argument("paths", nargs="+",
                           help="telemetry output directories or individual "
                           "artifact files")
    telemetry.set_defaults(func=_cmd_telemetry)

    checks = sub.add_parser("checks", help="print the sanitizer check catalogue")
    checks.set_defaults(func=_cmd_checks)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
