"""Machine-checked guardrails for the PEI reproduction.

Two halves:

* :mod:`repro.analysis.simlint` — an AST-based static-analysis pass
  enforcing simulator discipline (determinism, timestamp hygiene, unit
  discipline, ISA registry completeness) across ``src/repro``;
* :mod:`repro.analysis.simsan` — a runtime sanitizer that replays a
  :class:`~repro.core.tracer.PeiTracer` event stream against the paper's
  Section 4.3 atomicity/coherence protocol.

Command line: ``python -m repro.analysis lint|sanitize`` (see
``docs/analysis.md``).
"""

from repro.analysis.simlint import (
    RULES,
    LintViolation,
    format_violations,
    lint_paths,
)
from repro.analysis.simsan import (
    CHECKS,
    SanitizerReport,
    SanViolation,
    sanitize_events,
    sanitize_tracer,
)

__all__ = [
    "RULES",
    "CHECKS",
    "LintViolation",
    "SanViolation",
    "SanitizerReport",
    "lint_paths",
    "format_violations",
    "sanitize_events",
    "sanitize_tracer",
]
