"""Machine-checked guardrails for the PEI reproduction.

Three halves:

* :mod:`repro.analysis.simlint` — an AST-based, per-module static-analysis
  pass enforcing simulator discipline (determinism, timestamp hygiene,
  unit discipline, ISA registry completeness) across ``src/repro``;
* :mod:`repro.analysis.flow` — *simflow*, the whole-program dataflow
  analyzer: per-function CFGs, a project-wide call graph and three
  interprocedural pass families (cache-fingerprint soundness FLW001–003,
  unit/dimension taint FLW004–006, hot-path purity FLW007–009), with
  waivers, a checked-in baseline, SARIF output and a seeded-defect
  mutant gauntlet;
* :mod:`repro.analysis.simsan` — a runtime sanitizer that replays a
  :class:`~repro.core.tracer.PeiTracer` event stream against the paper's
  Section 4.3 atomicity/coherence protocol.

Command line: ``python -m repro.analysis lint|flow|flow-mutants|sanitize``
(see ``docs/analysis.md``).
"""

from repro.analysis.flow import (
    FLOW_CODES,
    MUTANTS,
    FlowReport,
    findings_to_json,
    findings_to_sarif,
    run_flow,
    run_mutants,
)
from repro.analysis.simlint import (
    RULES,
    LintViolation,
    format_violations,
    lint_paths,
)
from repro.analysis.simsan import (
    CHECKS,
    SanitizerReport,
    SanViolation,
    sanitize_events,
    sanitize_tracer,
)

__all__ = [
    "RULES",
    "CHECKS",
    "FLOW_CODES",
    "MUTANTS",
    "LintViolation",
    "SanViolation",
    "SanitizerReport",
    "FlowReport",
    "lint_paths",
    "format_violations",
    "run_flow",
    "run_mutants",
    "findings_to_json",
    "findings_to_sarif",
    "sanitize_events",
    "sanitize_tracer",
]
