"""simrace output: terminal text, machine JSON, and SARIF 2.1.0.

Same document shapes as simflow's report module — one SARIF run, one
driver carrying the RCE rule catalogue, ``rel`` paths as artifact URIs so
the document is machine-independent — with the scope line swapped for the
number this tool actually cares about: the size of the worker slice.
"""

import json
from pathlib import Path
from typing import Dict

from repro.analysis.race.engine import RACE_CODES, HYGIENE_CODE, RaceReport

__all__ = ["findings_to_json", "findings_to_sarif", "format_report"]

_TOOL_NAME = "simrace"
_TOOL_URI = "docs/analysis.md"


def format_report(report: RaceReport) -> str:
    """Human-readable result block (mirrors simlint's format)."""
    lines = [str(finding) for finding in report.findings]
    base = (f" ({report.baselined} baselined)" if report.baselined else "")
    scope = (f"{report.modules} modules, {report.functions} functions, "
             f"worker slice {report.worker_functions}")
    if report.clean:
        lines.append(f"simrace: clean{base} [{scope}]")
    else:
        lines.append(f"simrace: {len(report.findings)} finding(s){base} "
                     f"[{scope}]")
    return "\n".join(lines)


def findings_to_json(report: RaceReport) -> Dict:
    """A stable machine-readable document (the ``--json`` artifact)."""
    return {
        "tool": _TOOL_NAME,
        "summary": {
            "findings": len(report.findings),
            "baselined": report.baselined,
            "modules": report.modules,
            "functions": report.functions,
            "worker_functions": report.worker_functions,
            "select": list(report.select) if report.select else None,
            "clean": report.clean,
        },
        "findings": [
            {"code": f.code, "message": f.message, "path": f.path,
             "rel": f.rel, "line": f.line, "col": f.col}
            for f in report.findings
        ],
    }


def findings_to_sarif(report: RaceReport) -> Dict:
    """A SARIF 2.1.0 document for code-scanning upload."""
    rules = [
        {
            "id": code,
            "name": title.title().replace(" ", "").replace("-", ""),
            "shortDescription": {"text": title},
            "fullDescription": {"text": rationale},
            "helpUri": _TOOL_URI,
        }
        for code, (title, rationale) in sorted(RACE_CODES.items())
    ]
    rules.append({
        "id": HYGIENE_CODE,
        "name": "RaceHygiene",
        "shortDescription": {"text": "waiver/baseline hygiene"},
        "fullDescription": {
            "text": "unjustified or stale waiver pragmas and stale "
                    "baseline entries"},
        "helpUri": _TOOL_URI,
    })
    results = [
        {
            "ruleId": f.code,
            "level": "warning" if f.code == HYGIENE_CODE else "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.rel},
                    "region": {"startLine": max(1, f.line),
                               "startColumn": max(1, f.col + 1)},
                },
            }],
        }
        for f in report.findings
    ]
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": _TOOL_NAME,
                "informationUri": _TOOL_URI,
                "rules": rules,
            }},
            "results": results,
        }],
    }


def write_json(report: RaceReport, path: Path) -> None:
    Path(path).write_text(
        json.dumps(findings_to_json(report), indent=2) + "\n",
        encoding="utf-8")


def write_sarif(report: RaceReport, path: Path) -> None:
    Path(path).write_text(
        json.dumps(findings_to_sarif(report), indent=2) + "\n",
        encoding="utf-8")
