"""``simrace``: static concurrency & process-safety analysis for the
parallel frontier.

The frontier's promise is that ``jobs=N`` changes wall-clock time and
nothing else.  ``simrace`` checks the structural invariants that promise
rests on, reusing simflow's project model (shared source layer, call
graph, reachability) and pointing it at the process boundary:

* **RCE001–RCE002** payload safety (:mod:`~repro.analysis.race.payload`):
  everything a ``pool.submit`` captures must be frozen picklable data —
  no closures, bound methods, callbacks, open handles, locks, or
  instances of classes that hold them (traced transitively through the
  model's attribute types).
* **RCE003–RCE004** durable-write discipline (:mod:`~repro.analysis.race.
  durable`): bench/obs artifacts publish atomically via
  :mod:`repro.util.fsio`; shared JSONL streams append via
  ``append_jsonl`` (single O_APPEND write), never buffered ``open("a")``.
* **RCE005–RCE007** fork/worker hygiene (:mod:`~repro.analysis.race.
  worker`): the call-graph slice reachable from submit targets must not
  mutate module globals, read env vars the ``BenchSettings`` snapshot
  does not pin, or touch the process-global RNG off the seeded
  ``util/rng.py`` path.
* **RCE008–RCE009** ordering soundness (:mod:`~repro.analysis.race.
  ordering`): outputs must not depend on future-completion order or raw
  set iteration order.

Entry points: :func:`~repro.analysis.race.engine.run_race`
(programmatic), ``python -m repro.analysis race`` (CLI, JSON + SARIF +
baseline), and ``python -m repro.analysis race-mutants`` (seeded-defect
self-validation).
"""

from repro.analysis.race.engine import (
    RACE_CODES,
    HYGIENE_CODE,
    RaceReport,
    load_baseline,
    run_race,
    write_baseline,
)
from repro.analysis.race.mutants import RACE_MUTANTS, run_race_mutants
from repro.analysis.race.report import (
    findings_to_json,
    findings_to_sarif,
    format_report,
)
from repro.analysis.race.worker import RaceContext, build_context

__all__ = [
    "HYGIENE_CODE",
    "RACE_CODES",
    "RACE_MUTANTS",
    "RaceContext",
    "RaceReport",
    "build_context",
    "findings_to_json",
    "findings_to_sarif",
    "format_report",
    "load_baseline",
    "run_race",
    "run_race_mutants",
    "write_baseline",
]
