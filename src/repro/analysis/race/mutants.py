"""Seeded concurrency defects: the simrace self-test gauntlet.

Each mutant re-introduces, in memory, a realistic process-safety bug at
the exact sites the real tree hardened — a callback smuggled into a
payload, the trajectory write reverted to truncate-then-write, a worker
counting runs in a module global — and simrace must kill it (produce a
finding with the mutant's code that the pristine tree does not have).
Anchors are exact source snippets; if the tree drifts, the gauntlet
raises instead of silently testing nothing.  Shared loop:
:func:`repro.analysis.mutation.run_seeded_mutants`.
"""

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.mutation import Mutant, MutantResult, run_seeded_mutants
from repro.analysis.race.engine import run_race

__all__ = ["RACE_MUTANTS", "Mutant", "MutantResult", "run_race_mutants"]

_PAYLOAD_TUPLE = ("(request, tdir, telemetry_interval, parallel, handle,\n"
                  "                 plan_cache_limit)")

RACE_MUTANTS: Tuple[Mutant, ...] = (
    Mutant(
        name="payload-captures-callback",
        code="RCE001",
        description="the progress callback rides into the worker payload",
        edits=((
            "bench/frontier.py",
            _PAYLOAD_TUPLE,
            "(request, tdir, telemetry_interval, parallel, handle,\n"
            "                 plan_cache_limit, on_payload)",
        ),),
    ),
    Mutant(
        name="submit-wraps-lambda",
        code="RCE001",
        description="the submit target becomes a closure over the payload",
        edits=((
            "bench/frontier.py",
            "pool.submit(_execute_payload, payload)",
            "pool.submit(lambda: _execute_payload(payload))",
        ),),
    ),
    Mutant(
        name="ledger-ships-in-payload",
        code="RCE002",
        description="a live RunLedger (listener-holding) crosses the "
                    "process boundary",
        edits=((
            "bench/frontier.py",
            _PAYLOAD_TUPLE,
            "(request, tdir, telemetry_interval, parallel, handle,\n"
            "                 plan_cache_limit, RunLedger())",
        ),),
    ),
    Mutant(
        name="trajectory-write-reverts",
        code="RCE003",
        description="BENCH_<runid>.json goes back to truncate-then-write",
        edits=((
            "bench/history.py",
            "        # Atomic publish: a run killed mid-write must never "
            "leave a torn\n"
            "        # trajectory record for `history --compare` to trip "
            "over.\n"
            "        atomic_write_json(path, self.payload(), indent=2)\n",
            "        with open(path, \"w\", encoding=\"utf-8\") as fh:\n"
            "            json.dump(self.payload(), fh, indent=2)\n",
        ),),
    ),
    Mutant(
        name="ledger-buffered-append",
        code="RCE004",
        description="the ledger stream is appended via buffered open('a')",
        edits=((
            "obs/events.py",
            "        return atomic_write_text(Path(path), self.to_jsonl())",
            "        path = Path(path)\n"
            "        with open(path, \"a\", encoding=\"utf-8\") as fh:\n"
            "            for event in self.events:\n"
            "                fh.write(json.dumps(event) + \"\\n\")\n"
            "        return path",
        ),),
    ),
    Mutant(
        name="worker-mutates-module-state",
        code="RCE005",
        description="the worker counts runs in a module-global dict",
        edits=(
            (
                "bench/frontier.py",
                "EVENT_FINGERPRINT_LEN = 12\n",
                "EVENT_FINGERPRINT_LEN = 12\n"
                "_WORKER_STATS: Dict[str, int] = {}\n",
            ),
            (
                "bench/frontier.py",
                "    (request, telemetry_dir, telemetry_interval, "
                "unique_stem, trace,\n"
                "     plan_limit) = payload\n",
                "    (request, telemetry_dir, telemetry_interval, "
                "unique_stem, trace,\n"
                "     plan_limit) = payload\n"
                "    _WORKER_STATS[\"runs\"] = "
                "_WORKER_STATS.get(\"runs\", 0) + 1\n",
            ),
        ),
    ),
    Mutant(
        name="worker-env-read",
        code="RCE006",
        description="the worker consults an env var the settings snapshot "
                    "never pinned",
        edits=((
            "bench/frontier.py",
            "    runnable = trace if trace is not None else "
            "build_workload(request)\n",
            "    if os.environ.get(\"REPRO_FORCE_POLICY\"):\n"
            "        pass\n"
            "    runnable = trace if trace is not None else "
            "build_workload(request)\n",
        ),),
    ),
    Mutant(
        name="worker-rng-jitter",
        code="RCE007",
        description="the worker samples the process-global RNG",
        edits=((
            "bench/frontier.py",
            "    result = simulate(request, telemetry=telemetry, "
            "trace=trace)\n",
            "    _jitter = random.random()\n"
            "    result = simulate(request, telemetry=telemetry, "
            "trace=trace)\n",
        ),),
    ),
    Mutant(
        name="completion-order-results",
        code="RCE008",
        description="envelopes accumulate in completion order instead of "
                    "submission index",
        edits=((
            "bench/frontier.py",
            "                envelopes[i] = envelope\n",
            "                envelopes.append(envelope)\n",
        ),),
    ),
    Mutant(
        name="unsorted-trajectory-delta",
        code="RCE009",
        description="the trajectory delta iterates a raw set union",
        edits=((
            "bench/history.py",
            "for key in sorted(set(before) | set(after)):",
            "for key in set(before) | set(after):",
        ),),
    ),
)


def run_race_mutants(
    paths: Sequence,
    mutants: Sequence[Mutant] = RACE_MUTANTS,
    baseline: Optional[Path] = None,
) -> Tuple[List[MutantResult], object]:
    """Seed each concurrency defect in memory; simrace must kill it."""
    return run_seeded_mutants(run_race, paths, mutants, baseline=baseline)
