"""RCE008–RCE009: ordering soundness for parallel and set-driven outputs.

The frontier's contract is that ``jobs=N`` changes wall-clock time and
nothing else: results, history records and merged ledgers must be
bit-identical to a serial run.  Two structural hazards break that:

* **RCE008** — iterating futures in *completion* order (``wait(...)``
  result sets, ``as_completed(...)``) while accumulating results by
  ``append``/``extend``.  Completion order is scheduler noise; outputs
  built from it differ run to run.  The sanctioned shape keys results by
  submission index (``envelopes[i] = envelope``) so the loop may consume
  completions in any order and still emit deterministic output.
* **RCE009** — iterating a set (literal, comprehension, ``set()``/
  set-algebra expression, or a set-typed local) while feeding an
  order-sensitive sink (``append``/``write``/subscript store/``yield``)
  in a durable-artifact module.  Set iteration order varies with hash
  seeding; wrap the iterable in ``sorted(...)``.
"""

import ast
from typing import List, Set

from repro.analysis.source import (Violation, is_set_expr, set_typed_locals,
                                   terminal_identifier)
from repro.analysis.flow.model import FunctionInfo
from repro.analysis.race.worker import RaceContext
from repro.analysis.race.durable import _is_durable_module

__all__ = ["run_ordering_pass"]

#: Method calls that make a loop body order-sensitive.
_ORDER_SINKS = frozenset({"append", "extend", "emit", "write", "writelines"})


def run_ordering_pass(ctx: RaceContext) -> List[Violation]:
    findings: List[Violation] = []
    for qualname in sorted(ctx.model.functions):
        info = ctx.model.functions[qualname]
        findings.extend(_check_completion_order(info))
        if _is_durable_module(info.module.rel):
            findings.extend(_check_set_order(info))
    return findings


def _wait_result_names(func: ast.AST) -> Set[str]:
    """Names bound from ``concurrent.futures.wait(...)`` results."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        if not (isinstance(node.value, ast.Call)
                and terminal_identifier(node.value.func) == "wait"):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Tuple):
                names.update(elt.id for elt in target.elts
                             if isinstance(elt, ast.Name))
    return names


def _completion_iter(node: ast.For, wait_names: Set[str]) -> bool:
    it = node.iter
    if isinstance(it, ast.Name) and it.id in wait_names:
        return True
    return (isinstance(it, ast.Call)
            and terminal_identifier(it.func) == "as_completed")


def _body_shape(loop: ast.For):
    """(has order-sensitive accumulation, has indexed reorder store)."""
    accumulates = False
    reorders = False
    for node in ast.walk(loop):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "extend")):
            accumulates = True
        elif isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Subscript) for t in node.targets):
            reorders = True
    return accumulates, reorders


def _check_completion_order(info: FunctionInfo) -> List[Violation]:
    wait_names = _wait_result_names(info.node)
    out: List[Violation] = []
    for node in ast.walk(info.node):
        if not isinstance(node, ast.For):
            continue
        if not _completion_iter(node, wait_names):
            continue
        accumulates, reorders = _body_shape(node)
        if accumulates and not reorders:
            out.append(Violation(
                code="RCE008", path=str(info.module.path),
                line=node.lineno, col=node.col_offset,
                message=("results accumulated in future-completion order — "
                         "scheduler noise changes the output across runs "
                         "and jobs counts; key results by submission index "
                         "(results[i] = ...) and emit in index order")))
    return out


def _check_set_order(info: FunctionInfo) -> List[Violation]:
    set_locals = set_typed_locals(info.node)
    out: List[Violation] = []
    for node in ast.walk(info.node):
        if not isinstance(node, ast.For):
            continue
        it = node.iter
        if not (is_set_expr(it)
                or (isinstance(it, ast.Name) and it.id in set_locals)):
            continue
        if _order_sensitive_body(node):
            out.append(Violation(
                code="RCE009", path=str(info.module.path),
                line=node.lineno, col=node.col_offset,
                message=("set iteration feeds an order-sensitive output in "
                         "a durable-artifact module — hash seeding varies "
                         "the order across processes; wrap the iterable in "
                         "sorted(...)")))
    return out


def _order_sensitive_body(loop: ast.For) -> bool:
    for node in ast.walk(loop):
        if node is loop:
            continue
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDER_SINKS):
            return True
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Subscript) for t in node.targets):
            return True
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False
