"""RCE003–RCE004: durable-write discipline for bench/obs artifacts.

Cache entries, trajectory records, telemetry bundles and ledger streams
are read back by later runs and by ``history --compare`` — a process
killed mid-write (or two processes writing at once) must never leave a
torn file behind.  The repo's contract is structural: durable writers in
``bench/`` and ``obs/`` route through :mod:`repro.util.fsio`.

* **RCE003** — a direct ``open(path, "w"/"x"/"+")`` (or ``.write_text``)
  in a bench/obs module: a crash between truncate and final flush leaves
  a torn artifact that readers parse as corruption.  Route through
  ``atomic_write_json``/``atomic_write_text``.
* **RCE004** — a direct ``open(path, "a")`` append: buffered appends
  flush in arbitrary chunks, so concurrent appenders interleave partial
  lines.  Route through ``append_jsonl`` (one O_APPEND write per batch).

The fsio helpers themselves are exempt — they are the sanctioned
implementation the rest of the tree delegates to.
"""

import ast
from typing import List, Optional, Set

from repro.analysis.source import Violation, terminal_identifier
from repro.analysis.race.worker import RaceContext

__all__ = ["run_durable_pass"]

#: Path segments that mark a module as producing durable artifacts.
_DURABLE_SEGMENTS = ("bench", "obs")

#: Functions allowed to call open() for writing: the fsio primitives.
_SANCTIONED_DEFS = frozenset({
    "atomic_write_text", "atomic_write_json", "append_jsonl",
})


def _is_durable_module(rel: str) -> bool:
    parts = rel.replace("\\", "/").split("/")
    return any(seg in parts for seg in _DURABLE_SEGMENTS)


def _open_mode(call: ast.Call) -> Optional[str]:
    """The mode string of an ``open``/``os.fdopen`` call, if static."""
    if terminal_identifier(call.func) not in ("open", "fdopen"):
        return None
    mode: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode: out of scope


def _sanctioned_lines(tree: ast.Module) -> Set[int]:
    """Line numbers inside sanctioned writer definitions."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in _SANCTIONED_DEFS):
            end = getattr(node, "end_lineno", node.lineno)
            lines.update(range(node.lineno, end + 1))
    return lines


def run_durable_pass(ctx: RaceContext) -> List[Violation]:
    findings: List[Violation] = []
    for module in ctx.model.project.modules:
        if not _is_durable_module(module.rel):
            continue
        sanctioned = _sanctioned_lines(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if node.lineno in sanctioned:
                continue
            mode = _open_mode(node)
            if mode is not None:
                if any(flag in mode for flag in ("w", "x", "+")):
                    findings.append(Violation(
                        code="RCE003", path=str(module.path),
                        line=node.lineno, col=node.col_offset,
                        message=(f"durable artifact written via "
                                 f"open(..., {mode!r}) — a crash mid-write "
                                 f"leaves a torn file; publish atomically "
                                 f"via repro.util.fsio.atomic_write_json/"
                                 f"atomic_write_text")))
                elif "a" in mode:
                    findings.append(Violation(
                        code="RCE004", path=str(module.path),
                        line=node.lineno, col=node.col_offset,
                        message=("buffered append to a shared stream — "
                                 "concurrent appenders can interleave "
                                 "partial lines; use repro.util.fsio."
                                 "append_jsonl (single O_APPEND write per "
                                 "batch)")))
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "write_text"):
                findings.append(Violation(
                    code="RCE003", path=str(module.path),
                    line=node.lineno, col=node.col_offset,
                    message=("durable artifact written via .write_text() — "
                             "truncate-then-write is torn under a crash; "
                             "publish atomically via repro.util.fsio."
                             "atomic_write_text")))
    return findings
