"""RCE001–RCE002: cross-process payload safety.

Everything a ``pool.submit`` call captures crosses a process boundary by
pickling.  Closures, bound methods, open file handles and lock objects
either fail to pickle outright (spawn) or — worse — pickle *by value* and
silently decouple from the parent (fork): a listener shipped into a worker
fires into a dead copy of the parent's state.  The payload pass therefore
traces every expression that flows into a submit call's payload — through
payload-tuple list comprehensions and comprehension variables — and
requires each to be a frozen, picklable value:

* **RCE001** — the payload (or the submit target itself) is a lambda, a
  nested function, a bound method, a callback-shaped parameter
  (``Callable``-annotated or named ``on_*``/``listener``/``callback``), an
  ``open()`` handle, or a lock/synchronization primitive.
* **RCE002** — the payload is an instance of a *structurally
  process-unsafe class*: one whose methods store a callback/listener,
  a lock, or an open handle on ``self`` (transitively, through the flow
  model's attribute types).  ``RunLedger`` is the canonical example — its
  ``listener`` makes the parent-side object meaningless in a worker, which
  is why workers build bare events and ship them back in the envelope.
"""

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.source import Violation, terminal_identifier
from repro.analysis.flow.model import FunctionInfo, ProjectModel
from repro.analysis.race.worker import RaceContext

__all__ = ["run_payload_pass", "worker_unsafe_classes"]

#: Parameter names that conventionally carry callables.
_CALLBACK_NAMES = frozenset({
    "listener", "callback", "hook", "on_event", "on_payload", "on_progress",
})

#: Constructors of process-local synchronization primitives.
_LOCK_CLASSES = frozenset({
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Event", "Condition",
    "Barrier",
})

#: Bound on payload-provenance chain walks (defensive; real chains are 2-3).
_MAX_DEPTH = 8


def _is_callable_annotation(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    for sub in ast.walk(node):
        if terminal_identifier(sub) == "Callable":
            return True
    return False


def worker_unsafe_classes(model: ProjectModel) -> Dict[str, str]:
    """class name -> why instances must not cross a process boundary."""
    unsafe: Dict[str, str] = {}
    for name, cls in model.classes.items():
        for method in cls.methods.values():
            reason = _unsafe_store_in(method)
            if reason is not None:
                unsafe.setdefault(name, reason)
    # An instance holding an unsafe instance is itself unsafe (two rounds
    # settle one-step chains, mirroring the flow model's attr inference).
    for _ in range(2):
        for (owner, attr), value_cls in sorted(model.attr_types.items()):
            if value_cls in unsafe and owner not in unsafe:
                unsafe[owner] = (f"stores a {value_cls} in self.{attr} "
                                 f"({unsafe[value_cls]})")
    return unsafe


def _unsafe_store_in(method: FunctionInfo) -> Optional[str]:
    params = {arg.arg: arg.annotation
              for arg in (*method.node.args.posonlyargs,
                          *method.node.args.args,
                          *method.node.args.kwonlyargs)}
    for node in ast.walk(method.node):
        if not isinstance(node, ast.Assign):
            continue
        stores_self = any(
            isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name)
            and t.value.id == "self" for t in node.targets)
        if not stores_self:
            continue
        value = node.value
        if isinstance(value, ast.Call):
            ctor = terminal_identifier(value.func)
            if ctor in _LOCK_CLASSES:
                return f"holds a {ctor}() synchronization primitive"
            if ctor == "open":
                return "holds an open file handle"
        if isinstance(value, ast.Name) and value.id in params:
            if (value.id in _CALLBACK_NAMES
                    or _is_callable_annotation(params[value.id])):
                return f"holds the `{value.id}` callback/listener"
    return None


# ----------------------------------------------------------------------
# Payload provenance
# ----------------------------------------------------------------------

#: Binding to the element of an iterable, vs. directly to an expression.
_ELEM = "elem"


def _bindings(func: ast.AST) -> Dict[str, Tuple[str, ast.AST]]:
    """name -> ("expr", value) | ("elem", iterable) across the function.

    Comprehension and ``for`` targets bind to *elements* of their
    iterables; ``enumerate``/``zip`` wrappers are unwrapped positionally
    so ``for i, payload in enumerate(payloads)`` binds ``payload`` to an
    element of ``payloads``.
    """
    out: Dict[str, Tuple[str, ast.AST]] = {}

    def bind_target(target: ast.AST, iterable: ast.AST) -> None:
        call_name = (terminal_identifier(iterable.func)
                     if isinstance(iterable, ast.Call) else None)
        if isinstance(target, ast.Name):
            out[target.id] = (_ELEM, iterable)
            return
        if not isinstance(target, ast.Tuple):
            return
        if call_name == "enumerate" and iterable.args:
            # (index, item): only the item carries payload provenance.
            for elt in target.elts[1:]:
                bind_target(elt, iterable.args[0])
        elif call_name == "zip":
            for elt, src in zip(target.elts, iterable.args):
                bind_target(elt, src)
        else:
            for elt in target.elts:
                bind_target(elt, iterable)

    for node in ast.walk(func):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            out[node.targets[0].id] = ("expr", node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind_target(node.target, node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for gen in node.generators:
                bind_target(gen.target, gen.iter)
    return out


def _resolve(expr: ast.AST, bindings: Dict[str, Tuple[str, ast.AST]],
             depth: int, seen: Set[int]) -> Iterator[ast.AST]:
    """Terminal expressions an argument may evaluate to (over-approximate)."""
    if depth <= 0 or id(expr) in seen:
        yield expr
        return
    seen.add(id(expr))
    if isinstance(expr, ast.Tuple):
        for elt in expr.elts:
            yield from _resolve(elt, bindings, depth - 1, seen)
        return
    if isinstance(expr, ast.Name) and expr.id in bindings:
        kind, source = bindings[expr.id]
        if kind == "expr":
            yield from _resolve(source, bindings, depth - 1, seen)
            return
        # Element of an iterable: resolve the iterable, then take element
        # expressions where they are statically visible.
        for container in _resolve(source, bindings, depth - 1, seen):
            if isinstance(container, (ast.ListComp, ast.SetComp,
                                      ast.GeneratorExp)):
                yield from _resolve(container.elt, bindings, depth - 1, seen)
            elif isinstance(container, (ast.List, ast.Set)):
                for elt in container.elts:
                    yield from _resolve(elt, bindings, depth - 1, seen)
            else:
                yield container
        return
    yield expr


# ----------------------------------------------------------------------
# The pass
# ----------------------------------------------------------------------


def run_payload_pass(ctx: RaceContext) -> List[Violation]:
    unsafe = worker_unsafe_classes(ctx.model)
    findings: List[Violation] = []
    for info, call in ctx.submits:
        findings.extend(_check_submit(ctx.model, info, call, unsafe))
    return findings


def _nested_defs(func: ast.AST) -> Set[str]:
    return {node.name for node in ast.walk(func)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not func}


def _check_submit(model: ProjectModel, info: FunctionInfo, call: ast.Call,
                  unsafe: Dict[str, str]) -> Iterator[Violation]:
    types = model.local_types(info)
    nested = _nested_defs(info.node)
    params = {arg.arg: arg.annotation
              for arg in (*info.node.args.posonlyargs, *info.node.args.args,
                          *info.node.args.kwonlyargs)}
    bindings = _bindings(info.node)

    def violation(node: ast.AST, code: str, message: str) -> Violation:
        return Violation(code=code, message=message,
                         path=str(info.module.path),
                         line=getattr(node, "lineno", call.lineno),
                         col=getattr(node, "col_offset", call.col_offset))

    # The submit target itself must be a top-level function.
    if call.args:
        target = call.args[0]
        if isinstance(target, ast.Lambda):
            yield violation(target, "RCE001",
                            "pool.submit target is a lambda — closures "
                            "cannot cross the process boundary under spawn; "
                            "submit a module-level function and pass its "
                            "inputs through the payload")
        elif isinstance(target, ast.Name) and target.id in nested:
            yield violation(target, "RCE001",
                            f"pool.submit target `{target.id}` is a nested "
                            f"function — unpicklable under spawn; hoist it "
                            f"to module level")

    payload_args = list(call.args[1:]) + [kw.value for kw in call.keywords]
    for arg in payload_args:
        for expr in _resolve(arg, bindings, _MAX_DEPTH, set()):
            yield from _classify(expr, info, model, types, nested, params,
                                 unsafe, violation)


def _classify(expr: ast.AST, info: FunctionInfo, model: ProjectModel,
              types: Dict[str, str], nested: Set[str],
              params: Dict[str, Optional[ast.AST]],
              unsafe: Dict[str, str], violation) -> Iterator[Violation]:
    if isinstance(expr, ast.Lambda):
        yield violation(expr, "RCE001",
                        "payload captures a lambda — unpicklable under "
                        "spawn and a detached closure under fork; ship "
                        "frozen data instead")
        return
    if isinstance(expr, ast.Name):
        name = expr.id
        if name in nested:
            yield violation(expr, "RCE001",
                            f"payload captures nested function `{name}` — "
                            f"unpicklable under spawn; ship frozen data and "
                            f"rebuild behavior worker-side")
        elif (name in _CALLBACK_NAMES
                or (name in params
                    and _is_callable_annotation(params[name]))):
            yield violation(expr, "RCE001",
                            f"payload captures callback `{name}` — a "
                            f"callable shipped to a worker fires into a "
                            f"dead copy of the parent; keep callbacks "
                            f"parent-side and forward envelope events")
        elif types.get(name) in unsafe:
            cls = types[name]
            yield violation(expr, "RCE002",
                            f"payload captures `{name}`, a {cls} instance "
                            f"— {unsafe[cls]}; process-unsafe state must "
                            f"stay parent-side (ship bare events/data)")
        return
    if isinstance(expr, ast.Call):
        ctor = terminal_identifier(expr.func)
        if ctor == "open":
            yield violation(expr, "RCE001",
                            "payload captures an open() handle — file "
                            "objects cannot cross the process boundary; "
                            "pass the path and reopen worker-side")
        elif ctor in _LOCK_CLASSES:
            yield violation(expr, "RCE001",
                            f"payload captures a {ctor}() — process-local "
                            f"synchronization primitives do not survive "
                            f"pickling; coordinate through the pool instead")
        elif ctor in unsafe:
            yield violation(expr, "RCE002",
                            f"payload constructs a {ctor} — {unsafe[ctor]}; "
                            f"process-unsafe state must stay parent-side "
                            f"(ship bare events/data)")
        return
    if isinstance(expr, ast.Attribute):
        recv = model.expr_type(info, expr.value, types)
        if recv is not None:
            cls_info = model.classes.get(recv)
            if cls_info is not None and expr.attr in cls_info.methods:
                yield violation(expr, "RCE001",
                                f"payload captures bound method "
                                f"`{recv}.{expr.attr}` — it drags the whole "
                                f"instance across the process boundary; "
                                f"ship the data it needs instead")
