"""Worker-slice discovery plus RCE005–RCE007: fork/worker hygiene.

The *worker slice* is the call-graph closure of every function shipped to a
process pool — the code that executes inside forked/spawned workers, where
parent-side module state is a stale copy (fork) or freshly re-imported
(spawn).  Discovery is structural: any ``<pool>.submit(fn, ...)`` call
whose receiver was bound from a ``ProcessPoolExecutor``/``Pool``
construction (or is conventionally named ``pool``) roots the slice at
``fn``; :meth:`~repro.analysis.flow.model.ProjectModel.reachable_from`
provides the closure.

On that slice:

* **RCE005** — mutation of module-global mutable state (``global``
  statements, subscript stores, augmented assigns, or mutator-method calls
  on module-level dict/list/set bindings).  Under fork each worker mutates
  its own copy and the parent never sees it; under spawn the state resets
  per worker — either way the "shared" state is a silent lie.
* **RCE006** — environment reads of variables not pinned by
  ``BenchSettings`` (the ``RunRequest.resolve()`` snapshot).  A resolved
  request must fully describe its run; a worker-side ``os.environ`` read
  reintroduces shell dependence after resolution already happened.
* **RCE007** — global-RNG calls (``random.*``, ``np.random.*``) anywhere
  outside the sanctioned ``util/rng.py`` seeding path.  This one is
  tree-wide, not slice-scoped: unseeded RNG breaks bit-replay everywhere,
  and on the frontier it additionally diverges across workers.
"""

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.source import Violation, dotted_name, terminal_identifier
from repro.analysis.flow.model import FunctionInfo, ProjectModel

__all__ = [
    "RaceContext",
    "build_context",
    "module_mutables",
    "pinned_env",
    "run_worker_pass",
]

#: Process-pool constructors whose bound names root submit detection.
_POOL_CLASSES = ("ProcessPoolExecutor", "Pool")
#: Receiver names treated as pools even without a visible construction.
_POOL_RECEIVERS = ("pool",)

#: Module-level constructor calls that produce mutable containers.
_MUTABLE_CALLS = frozenset({
    "dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter",
})

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "update", "setdefault", "insert", "remove",
    "discard", "clear", "pop", "popitem", "appendleft",
})

#: The settings class whose env-var literals form the pinned set.
_SETTINGS_CLASS = "BenchSettings"
#: The sanctioned RNG module (rel suffix): the only place global RNG state
#: may be touched, because it is where seeding happens.
_RNG_MODULE = "util/rng.py"


@dataclass
class RaceContext:
    """Everything the simrace passes share for one analyzed tree."""

    model: ProjectModel
    #: (enclosing function, ``pool.submit(...)`` call) pairs.
    submits: List[Tuple[FunctionInfo, ast.Call]] = field(default_factory=list)
    #: Worker entry qualnames (first args of submit calls).
    entries: Tuple[str, ...] = ()
    #: Call-graph closure of the entries: the worker-side slice.
    worker_slice: Set[str] = field(default_factory=set)
    #: Env-var names pinned by the settings snapshot.
    pinned: Set[str] = field(default_factory=set)


def build_context(model: ProjectModel) -> RaceContext:
    submits = _submit_calls(model)
    entries = _worker_entries(model, submits)
    worker_slice = model.reachable_from(list(entries))
    worker_slice.update(q for q in entries if q in model.functions)
    return RaceContext(model=model, submits=submits, entries=entries,
                       worker_slice=worker_slice, pinned=pinned_env(model))


def _submit_calls(model: ProjectModel) -> List[Tuple[FunctionInfo, ast.Call]]:
    """Every ``<pool>.submit(...)`` call, with its enclosing function."""
    out: List[Tuple[FunctionInfo, ast.Call]] = []
    for qualname in sorted(model.functions):
        info = model.functions[qualname]
        pool_names = set(_POOL_RECEIVERS)
        for node in ast.walk(info.node):
            if isinstance(node, ast.With):
                for item in node.items:
                    if (_is_pool_ctor(item.context_expr)
                            and isinstance(item.optional_vars, ast.Name)):
                        pool_names.add(item.optional_vars.id)
            elif isinstance(node, ast.Assign) and _is_pool_ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        pool_names.add(target.id)
        for node in ast.walk(info.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "submit"
                    and terminal_identifier(node.func.value) in pool_names):
                out.append((info, node))
    return out


def _is_pool_ctor(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and terminal_identifier(node.func) in _POOL_CLASSES)


def _worker_entries(model: ProjectModel,
                    submits: List[Tuple[FunctionInfo, ast.Call]],
                    ) -> Tuple[str, ...]:
    """Qualnames of the functions handed to ``pool.submit`` as targets."""
    entries: Set[str] = set()
    for info, call in submits:
        if not call.args or not isinstance(call.args[0], ast.Name):
            continue
        name = call.args[0].id
        same = f"{info.module.rel}:{name}"
        if same in model.functions:
            entries.add(same)
            continue
        for candidate in model.by_name.get(name, ()):
            if candidate.cls is None:
                entries.add(candidate.qualname)
    return tuple(sorted(entries))


def pinned_env(model: ProjectModel) -> Set[str]:
    """Env-var names the settings snapshot reads (uppercase literals in
    ``BenchSettings``'s body — its default factories are the single
    sanctioned read site; ``RunRequest.resolve()`` freezes the result)."""
    cls = model.classes.get(_SETTINGS_CLASS)
    if cls is None:
        return set()
    pinned: Set[str] = set()
    for node in ast.walk(cls.node):
        if (isinstance(node, ast.Constant) and isinstance(node.value, str)
                and node.value.isupper() and "_" in node.value):
            pinned.add(node.value)
    return pinned


def module_mutables(module) -> Set[str]:
    """Module-level names bound to mutable containers."""
    names: Set[str] = set()
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if value is None or not targets:
            continue
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            names.update(t.id for t in targets)
        elif (isinstance(value, ast.Call)
                and terminal_identifier(value.func) in _MUTABLE_CALLS):
            names.update(t.id for t in targets)
    return names


# ----------------------------------------------------------------------
# The pass
# ----------------------------------------------------------------------


def run_worker_pass(ctx: RaceContext) -> List[Violation]:
    findings: List[Violation] = []
    for qualname in sorted(ctx.worker_slice):
        info = ctx.model.functions[qualname]
        findings.extend(_check_global_mutation(info))
        findings.extend(_check_env_reads(info, ctx.pinned))
    findings.extend(_check_global_rng(ctx.model))
    return findings


def _local_names(func: ast.AST) -> Set[str]:
    """Names the function binds itself (params + plain-Name assigns)."""
    names: Set[str] = set()
    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def _check_global_mutation(info: FunctionInfo) -> List[Violation]:
    mutables = module_mutables(info.module)
    locals_ = _local_names(info.node)
    out: List[Violation] = []

    def _hit(node: ast.AST, name: str, how: str) -> None:
        out.append(Violation(
            code="RCE005", path=str(info.module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=(f"worker-side code {how} module-global `{name}` — "
                     f"under fork each worker mutates a private copy and "
                     f"the parent never sees it; pass state through the "
                     f"payload and return it in the envelope")))

    for node in ast.walk(info.node):
        if isinstance(node, ast.Global):
            for name in node.names:
                _hit(node, name, "rebinds (via `global`)")
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in mutables
                        and target.value.id not in locals_):
                    _hit(node, target.value.id, "writes into")
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in mutables
                and node.func.value.id not in locals_):
            _hit(node, node.func.value.id, f"calls .{node.func.attr}() on")
    return out


def _env_read(node: ast.AST) -> bool:
    """Shares the env-read shapes with simflow's FLW007 detection."""
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func) or ""
        return (dotted.endswith("os.getenv") or dotted == "getenv"
                or f".{dotted}.".find(".environ.") >= 0
                or dotted.endswith("environ.get"))
    if isinstance(node, ast.Subscript):
        return (isinstance(node.value, ast.Attribute)
                and node.value.attr == "environ")
    return False


def _env_var_name(node: ast.AST) -> str:
    """The variable a read targets, or a placeholder when dynamic."""
    key = None
    if isinstance(node, ast.Call) and node.args:
        key = node.args[0]
    elif isinstance(node, ast.Subscript):
        key = node.slice
    if isinstance(key, ast.Constant) and isinstance(key.value, str):
        return key.value
    return "<dynamic>"


def _check_env_reads(info: FunctionInfo, pinned: Set[str]) -> List[Violation]:
    out: List[Violation] = []
    for node in ast.walk(info.node):
        if not _env_read(node):
            continue
        var = _env_var_name(node)
        if var in pinned:
            continue
        out.append(Violation(
            code="RCE006", path=str(info.module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=(f"worker-side read of env var `{var}` not pinned by "
                     f"the BenchSettings snapshot — the resolved request no "
                     f"longer fully describes the run; resolve it into the "
                     f"request before dispatch")))
    return out


def _check_global_rng(model: ProjectModel) -> List[Violation]:
    out: List[Violation] = []
    for module in model.project.modules:
        if module.rel.endswith(_RNG_MODULE):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            # `random` in module position: random.random(), np.random.seed()
            # — but not rng.random() on a seeded Generator instance.
            if "random" not in parts[:-1]:
                continue
            out.append(Violation(
                code="RCE007", path=str(module.path),
                line=node.lineno, col=node.col_offset,
                message=(f"global RNG call `{dotted}(...)` off the seeded "
                         f"path — process-global RNG state diverges across "
                         f"workers and runs; derive a generator via "
                         f"repro.util.rng.make_rng/derive_seed")))
    return out
