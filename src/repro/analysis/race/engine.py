"""simrace orchestration: parse -> model -> context -> passes -> baseline.

The pipeline is simflow's (same shared source model, same call-graph
model, same waiver and baseline machinery) pointed at a different hazard
class: process-safety on the parallel frontier.  One
:class:`~repro.analysis.race.worker.RaceContext` is built per run —
submit sites, worker-slice closure, pinned env set — and every pass reads
from it, so the whole-tree work (parse, call graph, reachability) happens
once no matter how many rule families run.

Waivers use the ``# simrace: ignore[RCE00x] -- justification`` namespace,
independent of simlint's and simflow's; unjustified/stale pragmas and
stale baseline entries report as ``RCE000``.
"""

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import (Finding, apply_baseline, load_baseline,
                                     write_baseline as _write_baseline)
from repro.analysis.source import Violation, apply_waivers, parse_project
from repro.analysis.flow.model import ProjectModel
from repro.analysis.race.worker import build_context, run_worker_pass
from repro.analysis.race.payload import run_payload_pass
from repro.analysis.race.durable import run_durable_pass
from repro.analysis.race.ordering import run_ordering_pass

__all__ = ["RACE_CODES", "HYGIENE_CODE", "SYNTAX_CODE", "Finding",
           "RaceReport", "load_baseline", "run_race", "write_baseline"]

#: Rule catalogue: code -> (title, one-line rationale).
RACE_CODES: Dict[str, Tuple[str, str]] = {
    "RCE001": ("unpicklable payload capture",
               "a pool.submit payload captures a closure, bound method, "
               "callback, open handle or lock — it cannot cross the "
               "process boundary intact"),
    "RCE002": ("process-unsafe payload object",
               "a pool.submit payload ships an instance of a class that "
               "holds callbacks, locks or open handles"),
    "RCE003": ("non-atomic durable write",
               "a bench/obs artifact is written with open('w')/"
               ".write_text instead of an atomic temp-file+replace "
               "publish"),
    "RCE004": ("torn-unsafe append",
               "a shared JSONL stream is appended with buffered open('a') "
               "— concurrent appenders can interleave partial lines"),
    "RCE005": ("worker-slice global mutation",
               "worker-side code mutates module-global state that fork "
               "privatizes and spawn resets"),
    "RCE006": ("unpinned worker env read",
               "worker-side code reads an env var the BenchSettings "
               "snapshot does not pin, so the resolved request no longer "
               "describes the run"),
    "RCE007": ("global RNG off the seeded path",
               "random.*/np.random.* global-state calls outside "
               "util/rng.py diverge across workers and break bit-replay"),
    "RCE008": ("completion-order dependent output",
               "results accumulated in future-completion order instead of "
               "submission-index order"),
    "RCE009": ("set-order dependent output",
               "set iteration feeds an order-sensitive durable output "
               "without sorted(...)"),
}

#: Hygiene findings (unjustified/stale waivers, stale baseline entries).
HYGIENE_CODE = "RCE000"
#: Unparseable-source findings.
SYNTAX_CODE = "RCE999"

#: Which pass implements which codes (drives --select pass skipping).
_PASSES = (
    (run_payload_pass, ("RCE001", "RCE002")),
    (run_durable_pass, ("RCE003", "RCE004")),
    (run_worker_pass, ("RCE005", "RCE006", "RCE007")),
    (run_ordering_pass, ("RCE008", "RCE009")),
)


@dataclass
class RaceReport:
    """The outcome of one simrace run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: int = 0
    modules: int = 0
    functions: int = 0
    worker_functions: int = 0
    select: Optional[Tuple[str, ...]] = None

    @property
    def clean(self) -> bool:
        return not self.findings


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Persist ``findings`` as the accepted simrace baseline."""
    _write_baseline(
        path, findings, tool="simrace",
        regenerate="python -m repro.analysis race --update-baseline")


def run_race(
    paths: Sequence,
    select: Optional[Iterable[str]] = None,
    baseline: Optional[Path] = None,
    overrides: Optional[Dict[str, str]] = None,
) -> RaceReport:
    """Run the race passes over every Python file under ``paths``.

    ``select`` restricts to the given RCE codes (a pass whose codes are
    all deselected is skipped entirely).  ``baseline`` names an
    accepted-findings file; matches are suppressed, stale entries
    reported.  ``overrides`` substitutes in-memory source text by
    rel-path suffix — the seeded-defect mutants run through this without
    touching the tree.
    """
    project, syntax_errors = parse_project(
        [Path(p) for p in paths], tool="simrace",
        syntax_error_code=SYNTAX_CODE, overrides=overrides)
    model = ProjectModel(project)
    ctx = build_context(model)

    selected = (set(code.upper() for code in select)
                if select is not None else set(RACE_CODES))
    raw: List[Violation] = list(syntax_errors)
    for pass_fn, codes in _PASSES:
        if not selected.intersection(codes):
            continue
        raw.extend(v for v in pass_fn(ctx) if v.code in selected)

    survivors = apply_waivers(project, raw, selected,
                              unjustified_code=HYGIENE_CODE,
                              stale_code=HYGIENE_CODE)

    rel_of = {str(m.path): m.rel for m in project.modules}
    findings = [Finding(code=v.code, message=v.message, path=v.path,
                        rel=rel_of.get(v.path, Path(v.path).name),
                        line=v.line, col=v.col)
                for v in survivors]

    baselined = 0
    if baseline is not None and Path(baseline).exists():
        entries = load_baseline(Path(baseline))
        findings, baselined = apply_baseline(findings, entries,
                                             Path(baseline),
                                             hygiene_code=HYGIENE_CODE)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return RaceReport(
        findings=findings,
        baselined=baselined,
        modules=len(project.modules),
        functions=len(model.functions),
        worker_functions=len(ctx.worker_slice),
        select=tuple(sorted(selected)) if select is not None else None,
    )
