"""``simlint``: static analysis enforcing simulator discipline.

The reproduction's correctness rests on invariants the code only enforces
implicitly: bit-for-bit replayability (every random draw routed through
:mod:`repro.util.rng`), a single notion of simulated time (monotonic float
timestamps in host-core cycles, converted from physical units only inside
:class:`~repro.sim.clock.ClockDomain` and the parameter tables), and a
complete ISA registry.  ``simlint`` is an AST pass (stdlib ``ast``, no
third-party dependencies) that machine-checks those conventions across
``src/repro`` so aggressive refactors cannot silently break them.

Each module is parsed once and walked once: rules declare the node types
they care about (:attr:`Rule.node_types`) and a single dispatch loop feeds
every node to the interested rules, so adding a rule costs a dict lookup
per node rather than another full ``ast.walk`` of the tree (measure with
``python -m repro.analysis lint --bench``).

Rules are identified by ``SIMxxx`` codes.  A violation can be waived with an
inline pragma **carrying a justification**::

    t_retrain_ns = 50.0  # simlint: ignore[SIM005] -- vendor-quoted retrain time

A waiver comment on its own line applies to the following line, and a
pragma anywhere on a multi-line statement (a decorator, a continuation
line of a long call) covers the whole statement.  Waivers without a
justification are themselves reported (``SIM000``), and justified waivers
that no longer suppress anything are reported as stale (``SIM008``), so
the tree can never silently accumulate unexplained or dead exemptions.
Pragma-shaped text inside strings and docstrings (like the example above)
is not a waiver — only real ``#`` comments count.

Use :func:`lint_paths` programmatically or ``python -m repro.analysis lint``
from the command line; see ``docs/analysis.md`` for the rule catalogue.
The interprocedural (dataflow) layer lives in :mod:`repro.analysis.flow`.
"""

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.source import (
    Module,
    Project,
    Violation as LintViolation,
    apply_waivers,
    parse_project,
    dotted_name as _dotted_name,
    terminal_identifier as _terminal_identifier,
)

__all__ = [
    "LintViolation",
    "Module",
    "Project",
    "RULES",
    "lint_paths",
    "format_violations",
]


def _annotation_allows_none(annotation: ast.AST) -> bool:
    """Does the annotation admit ``None`` (Optional/| None/Any/object)?"""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value
        return "None" in text or "Optional" in text or "Any" in text
    if isinstance(annotation, ast.Name):
        return annotation.id in ("Any", "object", "None")
    if isinstance(annotation, ast.Constant) and annotation.value is None:
        return True
    if isinstance(annotation, ast.Subscript):
        base = _terminal_identifier(annotation.value)
        if base == "Optional":
            return True
        if base == "Union":
            elems = annotation.slice
            if isinstance(elems, ast.Tuple):
                return any(_annotation_allows_none(e) for e in elems.elts)
            return _annotation_allows_none(elems)
        return False
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return (_annotation_allows_none(annotation.left)
                or _annotation_allows_none(annotation.right))
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in ("Any",)
    return False


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------


class Rule:
    """Base class: one coded check fed nodes from the shared module walk.

    ``node_types`` names the concrete AST classes the rule wants to see;
    :meth:`visit` receives each matching node exactly once per module.
    :meth:`prepare` runs before the walk (cross-file registries);
    :meth:`finish` runs after it (checks over collected state or over
    specific modules).  :meth:`applies` gates the rule per module
    (exempt-module carve-outs).
    """

    code = "SIM999"
    title = "unnamed rule"
    rationale = ""

    #: Concrete AST node classes this rule's visit() wants.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies(self, module: Module) -> bool:
        return True

    def prepare(self, project: Project) -> None:
        pass

    def visit(self, module: Module, node: ast.AST) -> Iterator[LintViolation]:
        return iter(())

    def finish(self, project: Project) -> Iterator[LintViolation]:
        return iter(())

    # Helper ------------------------------------------------------------

    def _violation(self, module: Module, node: ast.AST, message: str) -> LintViolation:
        return LintViolation(
            code=self.code,
            message=message,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


class WallClockRule(Rule):
    """SIM001: no wall-clock time sources inside the simulator."""

    code = "SIM001"
    title = "wall-clock time source"
    rationale = ("Simulated time is a deterministic function of the input; "
                 "reading the host's clock breaks bit-for-bit replayability "
                 "(tests/integration/test_determinism.py).")

    node_types = (ast.Call,)

    _FORBIDDEN = {
        "time.time", "time.monotonic", "time.monotonic_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.process_time", "time.time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    }

    #: The one sanctioned home of wall-clock reads: the scope profiler
    #: measures the simulator's *own* host cost; its readings never feed
    #: back into simulated timestamps (mirrors SIM002's util/rng.py carve-out).
    ALLOWED_MODULES = ("obs/profiler.py",)

    def applies(self, module: Module) -> bool:
        return not module.rel.endswith(self.ALLOWED_MODULES)

    def visit(self, module: Module, node: ast.AST) -> Iterator[LintViolation]:
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        tail2 = ".".join(dotted.split(".")[-2:])
        if dotted in self._FORBIDDEN or tail2 in self._FORBIDDEN:
            yield self._violation(
                module, node,
                f"wall-clock call `{dotted}()` — simulator code must use "
                f"simulated timestamps only")


class UnseededRandomnessRule(Rule):
    """SIM002: all randomness must flow through repro.util.rng."""

    code = "SIM002"
    title = "unseeded randomness"
    rationale = ("Replayability requires every random stream to derive from "
                 "an explicit seed via derive_seed/make_rng; bare random.* or "
                 "np.random.* calls use hidden global state.")

    node_types = (ast.Call,)

    #: The one sanctioned home of np.random calls.
    ALLOWED_MODULES = ("util/rng.py",)

    def applies(self, module: Module) -> bool:
        return not module.rel.endswith(self.ALLOWED_MODULES)

    def visit(self, module: Module, node: ast.AST) -> Iterator[LintViolation]:
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) > 1:
            yield self._violation(
                module, node,
                f"`{dotted}()` draws from the global `random` module — "
                f"route randomness through repro.util.rng.make_rng")
        elif "random" in parts[:-1] and parts[0] in ("np", "numpy"):
            yield self._violation(
                module, node,
                f"`{dotted}()` bypasses the seed derivation tree — use "
                f"repro.util.rng.make_rng / derive_seed")


class TimestampEqualityRule(Rule):
    """SIM003: no float ==/!= on timestamps."""

    code = "SIM003"
    title = "float equality on timestamps"
    rationale = ("Timestamps are floats in host cycles; exact equality is "
                 "brittle under refactors that reassociate arithmetic. "
                 "Order comparisons (<, <=) are the only meaningful tests.")

    node_types = (ast.Compare,)

    _TIME_TOKENS = {"time", "timestamp", "completion", "horizon",
                    "deadline", "grant", "arrival"}

    def _is_time_like(self, node: ast.AST) -> bool:
        name = _terminal_identifier(node)
        if name is None:
            return False
        return bool(self._TIME_TOKENS.intersection(name.lower().split("_")))

    def visit(self, module: Module, node: ast.AST) -> Iterator[LintViolation]:
        operands = [node.left] + list(node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            for side in (left, right):
                if self._is_time_like(side):
                    yield self._violation(
                        module, node,
                        f"`==`/`!=` on timestamp-like operand "
                        f"`{_terminal_identifier(side)}` — compare "
                        f"timestamps with ordering, not equality")
                    break


class DefaultArgumentRule(Rule):
    """SIM004: no mutable defaults and no type-lying None defaults."""

    code = "SIM004"
    title = "mutable or type-lying default"
    rationale = ("A mutable default is shared across calls; an annotation "
                 "like `stats: Stats = None` lies to every reader and type "
                 "checker about what the parameter accepts.")

    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.AnnAssign)

    _MUTABLE = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                ast.SetComp, ast.GeneratorExp)

    def visit(self, module: Module, node: ast.AST) -> Iterator[LintViolation]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_signature(module, node)
        elif isinstance(node, ast.AnnAssign):
            if (node.value is not None
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is None
                    and node.annotation is not None
                    and not _annotation_allows_none(node.annotation)):
                target = _terminal_identifier(node.target) or "<target>"
                yield self._violation(
                    module, node,
                    f"`{target}` is annotated non-Optional but assigned "
                    f"None — use `Optional[...]` (or `| None`)")

    def _check_signature(self, module, node) -> Iterator[LintViolation]:
        args = node.args
        positional = args.posonlyargs + args.args
        pairs = list(zip(positional[len(positional) - len(args.defaults):],
                         args.defaults))
        pairs += [(a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
                  if d is not None]
        for arg, default in pairs:
            if isinstance(default, self._MUTABLE):
                yield self._violation(
                    module, default,
                    f"mutable default for `{arg.arg}` in `{node.name}()` — "
                    f"default to None and build inside the function")
            elif (isinstance(default, ast.Constant) and default.value is None
                    and arg.annotation is not None
                    and not _annotation_allows_none(arg.annotation)):
                yield self._violation(
                    module, default,
                    f"`{arg.arg}` in `{node.name}()` is annotated "
                    f"non-Optional but defaults to None — annotate "
                    f"`Optional[...]` and normalize explicitly")


class RawUnitLiteralRule(Rule):
    """SIM005: raw ns/GHz literals only in the sanctioned parameter tables."""

    code = "SIM005"
    title = "raw physical-unit literal"
    rationale = ("Global time is host-core cycles; nanosecond and GHz "
                 "quantities must be declared in the parameter tables "
                 "(SystemConfig, ClockDomain defaults, repro.energy.params) "
                 "and converted through ClockDomain, or every scaling sweep "
                 "silently desynchronizes.")

    node_types = (ast.keyword, ast.Assign, ast.AnnAssign,
                  ast.FunctionDef, ast.AsyncFunctionDef)

    #: Unit-bearing parameter tables where physical constants belong.
    ALLOWED_MODULES = ("sim/clock.py", "energy/params.py", "system/config.py")

    _SUFFIXES = ("_ns", "_ghz", "_mhz", "_ps")

    def applies(self, module: Module) -> bool:
        return not module.rel.endswith(self.ALLOWED_MODULES)

    def _suffixed(self, name: Optional[str]) -> bool:
        return name is not None and name.lower().endswith(self._SUFFIXES)

    def visit(self, module: Module, node: ast.AST) -> Iterator[LintViolation]:
        if isinstance(node, ast.keyword):
            if self._suffixed(node.arg) and self._is_numeric(node.value):
                yield self._violation(
                    module, node.value,
                    f"raw unit literal for `{node.arg}=` — take the value "
                    f"from SystemConfig / repro.energy.params instead")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                name = _terminal_identifier(target)
                if self._suffixed(name) and self._is_numeric(node.value):
                    yield self._violation(
                        module, node,
                        f"raw unit literal assigned to `{name}` — move it "
                        f"into a parameter table")
        elif isinstance(node, ast.AnnAssign):
            name = _terminal_identifier(node.target)
            if self._suffixed(name) and self._is_numeric(node.value):
                yield self._violation(
                    module, node,
                    f"raw unit literal assigned to `{name}` — move it "
                    f"into a parameter table")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            positional = args.posonlyargs + args.args
            pairs = list(zip(
                positional[len(positional) - len(args.defaults):],
                args.defaults))
            pairs += [(a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
                      if d is not None]
            for arg, default in pairs:
                if self._suffixed(arg.arg) and self._is_numeric(default):
                    yield self._violation(
                        module, default,
                        f"raw unit default for `{arg.arg}` in "
                        f"`{node.name}()` — require the caller to pass a "
                        f"parameter-table value")

    @staticmethod
    def _is_numeric(node: Optional[ast.AST]) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return (isinstance(node, ast.Constant)
                and isinstance(node.value, (int, float))
                and not isinstance(node.value, bool))


class IntrinsicRegistryRule(Rule):
    """SIM006: every pim_* intrinsic uses an ISA-registered operation."""

    code = "SIM006"
    title = "unregistered PEI intrinsic"
    rationale = ("The dispatch tables, energy model, and Table 1 checks all "
                 "key on PIM_OPS; an intrinsic wrapping an op missing from "
                 "the registry would simulate an instruction the machine "
                 "does not decode.")

    # Confined to two known modules: cheaper to walk just those in finish()
    # than to tap the shared walk over the whole tree.

    def finish(self, project: Project) -> Iterator[LintViolation]:
        isa = project.find("core/isa.py")
        intrinsics = project.find("core/intrinsics.py")
        if isa is None or intrinsics is None:
            return
        registered = self._registered_ops(isa)
        for func in ast.walk(intrinsics.tree):
            if not isinstance(func, ast.FunctionDef):
                continue
            if not func.name.startswith("pim_"):
                continue
            ops = self._ops_constructed(func)
            if not ops:
                yield self._violation(
                    intrinsics, func,
                    f"intrinsic `{func.name}()` constructs no `Pei(...)` "
                    f"record — every pim_* intrinsic must emit exactly one")
                continue
            for name, node in ops:
                if name not in registered:
                    yield self._violation(
                        intrinsics, node,
                        f"intrinsic `{func.name}()` uses `{name}`, which is "
                        f"not registered in repro.core.isa.PIM_OPS")

    @staticmethod
    def _registered_ops(isa: Module) -> Set[str]:
        """Names listed in the PIM_OPS registry construction."""
        registered: Set[str] = set()
        for node in ast.walk(isa.tree):
            targets = []
            if isinstance(node, ast.Assign):
                targets = [t for t in node.targets if isinstance(t, ast.Name)]
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                targets = [node.target]
            if not any(t.id == "PIM_OPS" for t in targets):
                continue
            value = node.value
            if value is None:
                continue
            for sub in ast.walk(value):
                if isinstance(sub, ast.Name) and sub.id.isupper():
                    registered.add(sub.id)
        return registered

    @staticmethod
    def _ops_constructed(func: ast.FunctionDef) -> List[Tuple[str, ast.AST]]:
        ops = []
        for node in ast.walk(func):
            if (isinstance(node, ast.Call)
                    and _terminal_identifier(node.func) == "Pei"
                    and node.args):
                first = node.args[0]
                name = _terminal_identifier(first)
                if name is not None:
                    ops.append((name, first))
        return ops


class StatsKeyRegistryRule(Rule):
    """SIM007: literal stats keys must be declared in sim/stat_keys.py."""

    code = "SIM007"
    title = "undeclared stats key"
    rationale = ("The Stats namespace is flat and typo-prone: a misspelled "
                 "key silently creates a parallel counter that every "
                 "consumer reads as zero.  All literal `stats.add`/"
                 "`stats.set` keys must appear in the repro.sim.stat_keys "
                 "registry.")

    node_types = (ast.Call,)

    _REGISTRY = "sim/stat_keys.py"
    _METHODS = ("add", "set")

    def __init__(self):
        self._declared: Optional[Set[str]] = None
        self._registry: Optional[Module] = None

    def prepare(self, project: Project) -> None:
        self._registry = project.find(self._REGISTRY)
        self._declared = (self._declared_keys(self._registry)
                          if self._registry is not None else None)

    def applies(self, module: Module) -> bool:
        return self._declared is not None and module is not self._registry

    def visit(self, module: Module, node: ast.AST) -> Iterator[LintViolation]:
        key = self._literal_stats_key(node)
        if key is not None and key not in self._declared:
            yield self._violation(
                module, node,
                f"stats key \"{key}\" is not declared in "
                f"repro.sim.stat_keys — add it to the matching "
                f"*_KEYS group (or fix the typo)")

    @classmethod
    def _literal_stats_key(cls, node: ast.AST) -> Optional[str]:
        """The literal key of a ``<...>.stats.add("key")``-shaped call."""
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in cls._METHODS:
            return None
        if _terminal_identifier(func.value) != "stats":
            return None
        if not node.args:
            return None
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
        return None  # dynamic key — out of scope for a static registry

    @staticmethod
    def _declared_keys(registry: Module) -> Set[str]:
        """String constants in module-level assignments to ``*_KEYS`` names."""
        declared: Set[str] = set()
        for node in registry.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = [t for t in node.targets if isinstance(t, ast.Name)]
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                targets = [node.target]
            if not any(t.id.endswith("_KEYS") for t in targets):
                continue
            value = node.value
            if value is None:
                continue
            for sub in ast.walk(value):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    declared.add(sub.value)
        return declared


class HotLoopStatsRule(Rule):
    """SIM009: no per-event ``stats.add()`` in engine hot-loop modules."""

    code = "SIM009"
    title = "stats.add in an engine hot loop"
    rationale = ("The per-operation modules keep counters in preallocated "
                 "Stats slots (`self._slots[SLOT_*] += x`), the batched "
                 "fast path the trace-replay engine's throughput depends "
                 "on; a `stats.add()` call there pays a dict lookup plus a "
                 "method call per simulated event and silently undoes the "
                 "optimization.  One-shot summary writes (`stats.set` at "
                 "end of run) are fine.")

    node_types = (ast.Call,)

    #: Modules on the per-operation path of the run engine.  Everything
    #: else (workloads, bench harness, verification) may use stats.add
    #: freely — it runs once per experiment, not once per simulated op.
    #: The flow layer's FLW009 re-derives this list from call-graph
    #: reachability; this lexical rule stays as the fast first line.
    HOT_MODULES = (
        "cache/hierarchy.py",
        "cpu/core.py",
        "core/executor.py",
        "core/pmu.py",
        "core/locality_monitor.py",
        "core/pim_directory.py",
        "mem/hmc.py",
        "system/system.py",
    )

    def applies(self, module: Module) -> bool:
        return module.rel.endswith(self.HOT_MODULES)

    def visit(self, module: Module, node: ast.AST) -> Iterator[LintViolation]:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "add":
            return
        if _terminal_identifier(func.value) != "stats":
            return
        yield self._violation(
            module, node,
            "per-event `stats.add()` in an engine hot-loop module — "
            "bind a slot once (`self._slots[SLOT_*]`) and increment it "
            "in place")


#: The rule registry, keyed by code.
RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        WallClockRule(),
        UnseededRandomnessRule(),
        TimestampEqualityRule(),
        DefaultArgumentRule(),
        RawUnitLiteralRule(),
        IntrinsicRegistryRule(),
        StatsKeyRegistryRule(),
        HotLoopStatsRule(),
    )
}

#: Waiver hygiene pseudo-rules (not waivable themselves).
WAIVER_CODE = "SIM000"
UNUSED_WAIVER_CODE = "SIM008"


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def run_rules(project: Project, rules: Sequence[Rule]) -> List[LintViolation]:
    """One shared walk per module, dispatching nodes to interested rules."""
    raw: List[LintViolation] = []
    for rule in rules:
        rule.prepare(project)
    for module in project.modules:
        dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in rules:
            if not rule.node_types or not rule.applies(module):
                continue
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        if not dispatch:
            continue
        for node in ast.walk(module.tree):
            interested = dispatch.get(type(node))
            if interested is None:
                continue
            for rule in interested:
                raw.extend(rule.visit(module, node))
    for rule in rules:
        raw.extend(rule.finish(project))
    return raw


def lint_paths(
    paths: Sequence,
    select: Optional[Iterable[str]] = None,
) -> List[LintViolation]:
    """Lint every Python file under ``paths``; return surviving violations.

    ``select`` restricts checking to the given rule codes (waiver hygiene is
    always checked).  Violations waived by a justified inline pragma are
    suppressed; unjustified pragmas surface as ``SIM000``, and pragmas that
    suppress nothing surface as ``SIM008`` so stale waivers cannot outlive
    the code they excused (only when every waived code's rule actually ran —
    a ``select`` that skips the rule says nothing about the waiver).
    """
    project, violations = parse_project(
        [Path(p) for p in paths], tool="simlint", syntax_error_code="SIM999")
    active = [RULES[c] for c in select] if select is not None else list(RULES.values())
    active_codes = {rule.code for rule in active}
    raw: List[LintViolation] = list(violations)
    raw.extend(run_rules(project, active))
    return apply_waivers(project, raw, active_codes,
                         unjustified_code=WAIVER_CODE,
                         stale_code=UNUSED_WAIVER_CODE)


def format_violations(violations: Sequence[LintViolation]) -> str:
    if not violations:
        return "simlint: clean"
    lines = [str(v) for v in violations]
    lines.append(f"simlint: {len(violations)} violation(s)")
    return "\n".join(lines)
