"""Shared baseline machinery for the whole-program analyzers.

simflow and simrace both suppress accepted pre-existing findings through a
checked-in JSON baseline matched by ``(code, rel-path, message)`` — line
numbers excluded so unrelated edits never churn the file — and both report
entries that no longer match anything as hygiene findings, so a baseline
can only shrink.  This module owns that machinery once: the
:class:`Finding` record (the analyzers' common output type, carrying both
absolute and rel paths), loading/validation, writing, and application.

The tools differ only in their hygiene code (``FLW000`` vs ``RCE000``) and
the regenerate command named in the file's comment, which is why
:func:`apply_baseline` and :func:`write_baseline` take them as parameters.
"""

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

__all__ = ["Finding", "apply_baseline", "load_baseline", "write_baseline"]


@dataclass(frozen=True)
class Finding:
    """One surviving analyzer finding, carrying both absolute and rel paths."""

    code: str
    message: str
    path: str
    rel: str
    line: int
    col: int = 0

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def key(self) -> Tuple[str, str, str]:
        """The line-independent identity used for baseline matching."""
        return (self.code, self.rel, self.message)


def load_baseline(path: Path) -> List[Dict[str, str]]:
    """Baseline entries ``[{code, rel, message}, ...]`` from disk."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"baseline {path} is not a JSON object")
    entries = payload.get("entries", [])
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path}: 'entries' must be a list")
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"baseline entry {entry!r} is not an object")
        missing = {"code", "rel", "message"} - set(entry)
        if missing:
            raise ValueError(
                f"baseline entry {entry!r} lacks {sorted(missing)}")
    return entries


def write_baseline(path: Path, findings: Sequence[Finding], tool: str,
                   regenerate: str) -> None:
    """Persist ``findings`` as the accepted baseline (sorted, de-duplicated)."""
    entries = sorted({f.key() for f in findings})
    payload = {
        "comment": (f"Accepted pre-existing {tool} findings.  Matched by "
                    "(code, rel, message) — line-independent — and stale "
                    "entries are themselves reported; regenerate with "
                    f"`{regenerate}`."),
        "entries": [{"code": c, "rel": r, "message": m}
                    for c, r, m in entries],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def apply_baseline(findings: List[Finding], entries: List[Dict[str, str]],
                   baseline_path: Path,
                   hygiene_code: str) -> Tuple[List[Finding], int]:
    """Suppress baselined findings; report stale entries under ``hygiene_code``.

    Returns ``(kept, suppressed_count)``.  An entry is *stale* when no
    current finding carries its key; staleness anchors at the baseline file
    itself (line 1) so the report points at what must be edited.
    """
    accepted: Set[Tuple[str, str, str]] = {
        (e["code"], e["rel"], e["message"]) for e in entries}
    kept = [f for f in findings if f.key() not in accepted]
    suppressed = len(findings) - len(kept)
    matched = {f.key() for f in findings} & accepted
    for code, rel, message in sorted(accepted - matched):
        snippet = message if len(message) <= 60 else message[:57] + "..."
        kept.append(Finding(
            code=hygiene_code,
            message=(f"stale baseline entry: {code} in {rel} "
                     f"(\"{snippet}\") no longer matches any finding — "
                     f"remove it"),
            path=str(baseline_path), rel=Path(baseline_path).name, line=1))
    return kept, suppressed
