"""``simsan``: post-hoc sanitizer for the Section 4.3 PEI protocol.

LazyPIM (Boroumand et al.) and the bulk-bitwise consistency line of work
show that PIM coherence/atomicity protocols are exactly where subtle bugs
hide.  ``simsan`` consumes the event stream of a
:class:`~repro.core.tracer.PeiTracer` (PEI records interleaved with pfence
records, in directory-acquire order) and re-derives the protocol invariants
the :class:`~repro.core.pim_directory.PimDirectory`, the PMU, and the
operand buffers are supposed to enforce:

========  ==============================================================
code      invariant (paper section)
========  ==============================================================
SAN001    writer-writer exclusion per block (4.3: single writer)
SAN002    readers never overlap a writer of the same block (4.3)
SAN003    back-invalidation (writer) / back-writeback (reader) issued
          before every memory-side PEI touches DRAM (4.3, Fig. 5 step 3)
SAN004    per-PEI timestamp monotonicity:
          issue <= decision <= grant <= completion (timing model)
SAN005    pfence horizon: a pfence returns no earlier than the
          completion of every previously issued writer PEI (3.2)
SAN006    host-side operand-buffer occupancy never exceeds its entry
          count (4.2, Section 6.1's in-flight budget)
SAN007    trace integrity: no dropped events (a truncated trace makes
          the other checks unsound)
SAN008    every traced mnemonic decodes in the ISA registry (Table 1)
SAN009    entry-level exclusion in the tag-less directory: two PEIs
          whose (different) blocks XOR-fold onto one entry must still
          serialize like a conflict (4.3, Section 6.1's 2048 entries)
SAN010    per-entry reader concurrency never exceeds what the 10-bit
          reader counter can represent (Section 6.1)
========  ==============================================================

SAN009/SAN010 need the directory geometry and activate only when the
caller passes ``directory_entries`` (they are meaningless for an ideal
per-block directory).  The same invariants are proven exhaustively in the
small by :mod:`repro.verify`; here they are monitored on real runs.

Because the executor is synchronous, trace order equals directory-acquire
order, so the single-pass checks below mirror the timestamp semantics of
the directory exactly; every violation reports the offending slice of PEI
trace records.
"""

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.isa import PIM_OPS, PimOp
from repro.core.pim_directory import READER_COUNTER_BITS
from repro.core.tracer import FenceTrace, PeiTrace, PeiTracer
from repro.util.bitops import ilog2, is_power_of_two, xor_fold

__all__ = [
    "SanViolation",
    "SanitizerReport",
    "sanitize_events",
    "sanitize_tracer",
    "CHECKS",
]

#: Check codes and one-line summaries (rendered by the CLI and the docs).
CHECKS: Dict[str, str] = {
    "SAN001": "writer-writer exclusion per block",
    "SAN002": "reader/writer ordering per block",
    "SAN003": "back-invalidation/back-writeback before memory-side PEIs",
    "SAN004": "per-PEI timestamp monotonicity (issue <= decision <= grant <= completion)",
    "SAN005": "pfence horizon covers all previously issued writer PEIs",
    "SAN006": "host-side operand-buffer capacity never exceeded",
    "SAN007": "trace integrity (no dropped events)",
    "SAN008": "traced mnemonics decode in the ISA registry",
    "SAN009": "entry-level exclusion for blocks aliased onto one directory entry",
    "SAN010": "per-entry reader concurrency fits the hardware reader counter",
}

Event = Union[PeiTrace, FenceTrace]


@dataclass(frozen=True)
class SanViolation:
    """One protocol violation, with the trace slice that exhibits it."""

    code: str
    message: str
    events: Tuple[Event, ...] = ()

    def __str__(self) -> str:
        head = f"{self.code} {self.message}"
        if not self.events:
            return head
        slice_lines = "\n".join(f"    {event!r}" for event in self.events)
        return f"{head}\n  offending trace slice:\n{slice_lines}"


@dataclass
class SanitizerReport:
    """Outcome of one sanitizer pass."""

    violations: List[SanViolation] = field(default_factory=list)
    peis_checked: int = 0
    fences_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        summary = (f"simsan: {self.peis_checked} PEI(s), "
                   f"{self.fences_checked} pfence(s) checked")
        if self.ok:
            return f"{summary}: clean"
        body = "\n".join(str(v) for v in self.violations)
        return f"{summary}: {len(self.violations)} violation(s)\n{body}"


# ----------------------------------------------------------------------
# Per-block and per-core incremental state
# ----------------------------------------------------------------------


@dataclass
class _BlockState:
    """Directory-mirroring timestamps for one *real* block address."""

    last_writer: Optional[PeiTrace] = None    # writer with max completion
    max_reader: Optional[PeiTrace] = None     # reader with max completion

    @property
    def writer_free(self) -> float:
        return self.last_writer.completion if self.last_writer else float("-inf")

    @property
    def readers_max(self) -> float:
        return self.max_reader.completion if self.max_reader else float("-inf")


@dataclass
class _EntryState:
    """Directory-mirroring timestamps for one tag-less directory *entry*.

    Unlike :class:`_BlockState` this aggregates every block folding onto the
    entry; the hardware cannot tell them apart, so neither may the timing.
    """

    last_writer: Optional[PeiTrace] = None
    max_reader: Optional[PeiTrace] = None


class _ReaderWidthState:
    """Counts genuinely overlapping readers of one entry (SAN010)."""

    def __init__(self, max_readers: int):
        self.max_readers = max_readers
        self._completions: List[float] = []
        self._holders: List[Tuple[float, PeiTrace]] = []

    def admit(self, trace: PeiTrace) -> Optional[List[PeiTrace]]:
        """Admit one reader; return the over-width slice on violation."""
        while self._completions and self._completions[0] <= trace.grant_time:
            retired = heapq.heappop(self._completions)
            for i, (held, _) in enumerate(self._holders):
                if held == retired:
                    del self._holders[i]
                    break
        heapq.heappush(self._completions, trace.completion)
        self._holders.append((trace.completion, trace))
        if len(self._completions) > self.max_readers:
            return [t for _, t in self._holders]
        return None


class _HostBufferState:
    """Replays one host PCU's operand-buffer occupancy from the trace."""

    def __init__(self, entries: int):
        self.entries = entries
        self._releases: List[float] = []
        self._holders: List[Tuple[float, PeiTrace]] = []

    def admit(self, trace: PeiTrace, release: float) -> Optional[List[PeiTrace]]:
        """Admit one PEI; return the over-capacity slice on violation.

        Entries whose PEI has completed by this PEI's (post-stall) issue
        time are reusable, mirroring ``OperandBuffer.allocate``.
        """
        while self._releases and self._releases[0] <= trace.issue_time:
            freed = heapq.heappop(self._releases)
            for i, (r, _) in enumerate(self._holders):
                if r == freed:
                    del self._holders[i]
                    break
        heapq.heappush(self._releases, release)
        self._holders.append((release, trace))
        if len(self._releases) > self.entries:
            return [t for _, t in self._holders]
        return None


# ----------------------------------------------------------------------
# The sanitizer
# ----------------------------------------------------------------------


def _op_for(trace: PeiTrace) -> Optional[PimOp]:
    return PIM_OPS.get(trace.op)


def _host_release_time(trace: PeiTrace, op: PimOp) -> float:
    """When the PEI's *host-side* operand-buffer entry frees.

    Mirrors repro.core.executor: host-side and output-producing PEIs hold
    their entry until completion; offloaded no-output PEIs free it at
    dispatch (the vault PCU tracks them from then on).
    """
    if trace.on_host or op.output_bytes > 0:
        return trace.completion
    return trace.grant_time


def sanitize_events(
    events: Sequence[Event],
    operand_buffer_entries: Optional[int] = None,
    dropped: int = 0,
    directory_entries: Optional[int] = None,
    reader_counter_bits: int = READER_COUNTER_BITS,
) -> SanitizerReport:
    """Check a PEI/pfence event stream against the Section 4.3 protocol.

    ``events`` must be in record order (the order ``PeiTracer`` collected
    them, which equals directory-acquire order).  ``operand_buffer_entries``
    enables the SAN006 capacity replay; pass the machine's
    ``pcu_operand_buffer_entries``.  ``dropped`` is the tracer's dropped-
    event count (SAN007).  ``directory_entries`` (the non-ideal directory's
    entry count) enables the entry-granular SAN009/SAN010 checks;
    ``reader_counter_bits`` overrides the Section 6.1 reader-counter width
    for them (the tests use tiny widths to exercise the check cheaply).
    """
    report = SanitizerReport()
    blocks: Dict[int, _BlockState] = {}
    buffers: Dict[int, _HostBufferState] = {}
    writer_horizon: Optional[PeiTrace] = None  # globally latest writer
    index_bits: Optional[int] = None
    entry_states: Dict[int, _EntryState] = {}
    reader_widths: Dict[int, _ReaderWidthState] = {}
    if directory_entries is not None:
        if not is_power_of_two(directory_entries):
            raise ValueError(
                f"directory_entries must be a power of two, got "
                f"{directory_entries}")
        index_bits = ilog2(directory_entries)
    max_readers = (1 << reader_counter_bits) - 1

    if dropped:
        report.violations.append(SanViolation(
            code="SAN007",
            message=(f"tracer dropped {dropped} event(s) — raise the tracer "
                     f"capacity; protocol checks on a truncated trace are "
                     f"unsound"),
        ))

    for event in events:
        if isinstance(event, FenceTrace):
            report.fences_checked += 1
            _check_fence(event, writer_horizon, report)
            continue
        trace = event
        report.peis_checked += 1
        op = _op_for(trace)
        if op is None:
            report.violations.append(SanViolation(
                code="SAN008",
                message=(f"mnemonic `{trace.op}` does not decode in "
                         f"repro.core.isa.PIM_OPS"),
                events=(trace,),
            ))
            continue
        _check_monotonic(trace, report)
        _check_coherence(trace, op, report)
        _check_exclusion(trace, op, blocks, report)
        if index_bits is not None:
            entry = xor_fold(trace.block, index_bits)
            state = entry_states.get(entry)
            if state is None:
                state = entry_states[entry] = _EntryState()
            _check_entry_exclusion(trace, op, entry, state, report)
            if not op.is_writer:
                width = reader_widths.get(entry)
                if width is None:
                    width = reader_widths[entry] = _ReaderWidthState(max_readers)
                over = width.admit(trace)
                if over is not None:
                    report.violations.append(SanViolation(
                        code="SAN010",
                        message=(f"entry {entry}: {len(over)} readers in "
                                 f"flight at once — the {reader_counter_bits}"
                                 f"-bit reader counter holds at most "
                                 f"{max_readers}"),
                        events=tuple(over),
                    ))
        if op.is_writer and (writer_horizon is None
                             or trace.completion > writer_horizon.completion):
            writer_horizon = trace
        if operand_buffer_entries is not None:
            state = buffers.get(trace.core)
            if state is None:
                state = buffers[trace.core] = _HostBufferState(operand_buffer_entries)
            over = state.admit(trace, _host_release_time(trace, op))
            if over is not None:
                report.violations.append(SanViolation(
                    code="SAN006",
                    message=(f"core {trace.core}: {len(over)} PEIs hold "
                             f"host operand-buffer entries simultaneously "
                             f"(capacity {operand_buffer_entries})"),
                    events=tuple(over),
                ))
    return report


def sanitize_tracer(
    tracer: PeiTracer,
    operand_buffer_entries: Optional[int] = None,
    directory_entries: Optional[int] = None,
    reader_counter_bits: int = READER_COUNTER_BITS,
) -> SanitizerReport:
    """Sanitize everything a :class:`PeiTracer` collected."""
    return sanitize_events(
        tracer.events,
        operand_buffer_entries=operand_buffer_entries,
        dropped=tracer.dropped,
        directory_entries=directory_entries,
        reader_counter_bits=reader_counter_bits,
    )


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------


def _check_monotonic(trace: PeiTrace, report: SanitizerReport) -> None:
    stamps = [("issue_time", trace.issue_time)]
    if trace.decision_time is not None:
        stamps.append(("decision_time", trace.decision_time))
    stamps.append(("grant_time", trace.grant_time))
    stamps.append(("completion", trace.completion))
    for (prev_name, prev), (name, value) in zip(stamps, stamps[1:]):
        if value < prev:
            report.violations.append(SanViolation(
                code="SAN004",
                message=(f"non-monotonic timestamps: {name} ({value:g}) "
                         f"precedes {prev_name} ({prev:g})"),
                events=(trace,),
            ))
            return


def _check_coherence(trace: PeiTrace, op: PimOp, report: SanitizerReport) -> None:
    if trace.on_host:
        if trace.clean_time is not None:
            report.violations.append(SanViolation(
                code="SAN003",
                message=("host-side PEI carries a back-invalidation record — "
                         "host execution must go through the core's L1, not "
                         "flush it"),
                events=(trace,),
            ))
        return
    if trace.clean_time is None:
        report.violations.append(SanViolation(
            code="SAN003",
            message=("memory-side PEI executed without back-invalidation/"
                     "back-writeback of the target block"),
            events=(trace,),
        ))
        return
    if trace.clean_invalidate is not None and trace.clean_invalidate != op.is_writer:
        wanted = "back-invalidation" if op.is_writer else "back-writeback"
        report.violations.append(SanViolation(
            code="SAN003",
            message=(f"memory-side {'writer' if op.is_writer else 'reader'} "
                     f"PEI used the wrong coherence action (needs {wanted})"),
            events=(trace,),
        ))
    elif not (trace.grant_time <= trace.clean_time <= trace.completion):
        report.violations.append(SanViolation(
            code="SAN003",
            message=(f"back-invalidation at {trace.clean_time:g} falls "
                     f"outside the PEI's [grant, completion] window"),
            events=(trace,),
        ))


def _check_exclusion(
    trace: PeiTrace,
    op: PimOp,
    blocks: Dict[int, _BlockState],
    report: SanitizerReport,
) -> None:
    state = blocks.get(trace.block)
    if state is None:
        state = blocks[trace.block] = _BlockState()
    if op.is_writer:
        if state.last_writer is not None and trace.grant_time < state.writer_free:
            report.violations.append(SanViolation(
                code="SAN001",
                message=(f"two writers of block {trace.block:#x} overlap: "
                         f"grant {trace.grant_time:g} precedes the previous "
                         f"writer's completion {state.writer_free:g}"),
                events=(state.last_writer, trace),
            ))
        if state.max_reader is not None and trace.grant_time < state.readers_max:
            report.violations.append(SanViolation(
                code="SAN002",
                message=(f"writer of block {trace.block:#x} granted at "
                         f"{trace.grant_time:g} while a reader is in flight "
                         f"until {state.readers_max:g}"),
                events=(state.max_reader, trace),
            ))
        if state.last_writer is None or trace.completion > state.writer_free:
            state.last_writer = trace
    else:
        if state.last_writer is not None and trace.grant_time < state.writer_free:
            report.violations.append(SanViolation(
                code="SAN002",
                message=(f"reader of block {trace.block:#x} granted at "
                         f"{trace.grant_time:g} while a writer is in flight "
                         f"until {state.writer_free:g}"),
                events=(state.last_writer, trace),
            ))
        if state.max_reader is None or trace.completion > state.readers_max:
            state.max_reader = trace


def _check_entry_exclusion(
    trace: PeiTrace,
    op: PimOp,
    entry: int,
    state: _EntryState,
    report: SanitizerReport,
) -> None:
    """SAN009: exclusion at *entry* granularity, for aliased blocks.

    Same-block conflicts are already SAN001/SAN002; this only reports pairs
    whose blocks differ but collide in the tag-less table, where the
    hardware must serialize them regardless (a false positive it cannot
    distinguish from a real conflict).
    """
    def clash(holder: Optional[PeiTrace], kind: str) -> None:
        if holder is None or holder.block == trace.block:
            return
        if trace.grant_time < holder.completion:
            report.violations.append(SanViolation(
                code="SAN009",
                message=(f"entry {entry}: {'writer' if op.is_writer else 'reader'} "
                         f"of block {trace.block:#x} granted at "
                         f"{trace.grant_time:g} while a {kind} of aliased "
                         f"block {holder.block:#x} is in flight until "
                         f"{holder.completion:g}"),
                events=(holder, trace),
            ))

    clash(state.last_writer, "writer")
    if op.is_writer:
        clash(state.max_reader, "reader")
        if (state.last_writer is None
                or trace.completion > state.last_writer.completion):
            state.last_writer = trace
    else:
        if (state.max_reader is None
                or trace.completion > state.max_reader.completion):
            state.max_reader = trace


def _check_fence(
    fence: FenceTrace,
    writer_horizon: Optional[PeiTrace],
    report: SanitizerReport,
) -> None:
    if fence.release_time < fence.issue_time:
        report.violations.append(SanViolation(
            code="SAN004",
            message=(f"pfence releases at {fence.release_time:g}, before its "
                     f"own issue at {fence.issue_time:g}"),
            events=(fence,),
        ))
        return
    if writer_horizon is not None and fence.release_time < writer_horizon.completion:
        report.violations.append(SanViolation(
            code="SAN005",
            message=(f"pfence released at {fence.release_time:g} while a "
                     f"previously issued writer PEI completes at "
                     f"{writer_horizon.completion:g}"),
            events=(writer_horizon, fence),
        ))
