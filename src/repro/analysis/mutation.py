"""Shared seeded-defect gauntlet machinery for the whole-program analyzers.

A static analyzer that is never shown a true positive is just a formatter.
Both simflow and simrace validate themselves the same way: each
:class:`Mutant` patches one realistic defect into an *in-memory* copy of
the tree (the files on disk are never touched — ``parse_project``'s
``overrides`` hook substitutes the source text) and the analyzer must
produce a finding the pristine tree does not have.  This module owns the
mutant record, the source collection, and the kill-judging loop; each tool
supplies its own mutant catalogue and its ``run`` function.
"""

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.source import collect_files

__all__ = ["Mutant", "MutantResult", "collect_sources", "run_seeded_mutants"]


@dataclass(frozen=True)
class Mutant:
    """One seeded defect: textual edits plus the code that must catch it."""

    name: str
    code: str                              # the rule code that must fire
    description: str
    edits: Tuple[Tuple[str, str, str], ...]  # (rel suffix, old, new)


@dataclass
class MutantResult:
    mutant: Mutant
    killed: bool
    new_findings: List[str]


def collect_sources(paths: Sequence) -> Dict[str, str]:
    """rel -> source text for every file under the analyzed roots."""
    out: Dict[str, str] = {}
    for file, rel in collect_files([Path(p) for p in paths]):
        out[rel] = file.read_text(encoding="utf-8")
    return out


def run_seeded_mutants(
    run_fn: Callable,
    paths: Sequence,
    mutants: Sequence[Mutant],
    baseline: Optional[Path] = None,
):
    """Seed each defect in memory and require the analyzer to catch it.

    ``run_fn(paths, baseline=..., overrides=...)`` must return a report
    with a ``findings`` list of keyed findings (the analyzers' shared
    :class:`~repro.analysis.baseline.Finding`).  A mutant is *killed* when
    the mutated tree produces at least one finding with the mutant's code
    that the pristine tree does not have (same line-independent identity).
    Raises ``ValueError`` if a mutant's anchor text no longer exists — a
    drifted anchor must fail loudly, not silently test nothing.

    Returns ``(results, pristine_report)``.
    """
    sources = collect_sources(paths)
    pristine = run_fn(paths, baseline=baseline)
    pristine_keys = {f.key() for f in pristine.findings}
    results: List[MutantResult] = []
    for mutant in mutants:
        overrides: Dict[str, str] = {}
        for rel_suffix, old, new in mutant.edits:
            matches = [rel for rel in sources if rel.endswith(rel_suffix)]
            if len(matches) != 1:
                raise ValueError(
                    f"mutant {mutant.name}: {len(matches)} files match "
                    f"{rel_suffix!r}")
            text = overrides.get(matches[0], sources[matches[0]])
            if old not in text:
                raise ValueError(
                    f"mutant {mutant.name}: anchor not found in "
                    f"{matches[0]} — update the mutant to the current tree")
            overrides[matches[0]] = text.replace(old, new, 1)
        mutated = run_fn(paths, baseline=baseline, overrides=overrides)
        new = [str(f) for f in mutated.findings
               if f.code == mutant.code and f.key() not in pristine_keys]
        results.append(MutantResult(mutant=mutant, killed=bool(new),
                                    new_findings=new))
    return results, pristine
