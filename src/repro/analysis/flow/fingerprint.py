"""FLW001–FLW003: fingerprint soundness for the content-addressed caches.

The disk cache (:mod:`repro.bench.cache`) and trace store
(:mod:`repro.bench.traces`) serve results/traces keyed by content
fingerprints.  They are correct only while a closed-world property holds:
**every config/settings field the keyed computation actually reads is part
of the key**.  A field read on the simulate path but absent from
``RunRequest`` fingerprinting means two different machines share a cache
entry; a field read on the capture path but absent from
``trace_request_key`` means two different op streams share a trace.  No
local lint can see this — it is a property of the whole call graph — so
this pass walks reachability from the cache-keyed entry points and
compares the *read set* against the *covered set* extracted from the
fingerprint functions themselves.

* **FLW001** — a field is read somewhere reachable from a keyed
  computation but not covered by that computation's fingerprint.
* **FLW002** — a config/settings field is never read anywhere: dead
  parameter surface that still churns every fingerprint when touched.
* **FLW003** — a ``BenchSettings`` field is read by bench code but never
  pinned in ``RunRequest.resolve``, so the resolved request does not fully
  describe the run it produces.  (Fields that shape the *request set*
  rather than any one request — e.g. how many mixes exist — carry a
  ``simflow: ignore[FLW003]`` waiver at the read site.)

``SystemConfig.fingerprint`` serializes ``asdict(self)`` wholesale; the
pass recognizes the ``asdict`` idiom as covering every field, so the
normal tree passes without enumerating anything.  The seeded-defect
mutants replace it with an enumerated subset and must be caught.
"""

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.source import Violation, dotted_name, terminal_identifier
from repro.analysis.flow.model import FunctionInfo, ProjectModel, dataclass_fields

__all__ = ["run_fingerprint_pass"]

#: rel-path suffixes anchoring the pass to the simulator's own layout.
CONFIG_MODULE = "system/config.py"
SETTINGS_MODULE = "bench/runner.py"
FRONTIER_MODULE = "bench/frontier.py"
TRACES_MODULE = "bench/traces.py"
SYSTEM_MODULE = "system/system.py"

CONFIG_CLASS = "SystemConfig"
SETTINGS_CLASS = "BenchSettings"
REQUEST_CLASS = "RunRequest"

#: Roots of the result-cache-keyed computation (what a RunRequest
#: fingerprint must describe): executing a request end to end.
SIMULATE_ROOTS = (
    f"{FRONTIER_MODULE}:simulate",
    f"{FRONTIER_MODULE}:build_workload",
    f"{SYSTEM_MODULE}:System.__init__",
    f"{SYSTEM_MODULE}:System.run",
    f"{SYSTEM_MODULE}:System._run_trace",
)

#: Root of the trace-store-keyed computation (what trace_request_key must
#: describe): capturing a workload's operation stream.
CAPTURE_ROOTS = (f"{TRACES_MODULE}:TraceStore.get_or_capture",)

#: Receiver names under which SystemConfig instances travel.
_CONFIG_RECEIVERS = ("config", "cfg")


def run_fingerprint_pass(model: ProjectModel) -> List[Violation]:
    pass_ = _FingerprintPass(model)
    return pass_.run()


class _FingerprintPass:
    def __init__(self, model: ProjectModel):
        self.model = model
        self.findings: List[Violation] = []

    # ------------------------------------------------------------------

    def run(self) -> List[Violation]:
        config_fields = self._class_fields(CONFIG_MODULE, CONFIG_CLASS)
        settings_fields = self._class_fields(SETTINGS_MODULE, SETTINGS_CLASS)
        request_fields = self._class_fields(FRONTIER_MODULE, REQUEST_CLASS)
        if config_fields:
            self._check_result_cache(config_fields, request_fields)
            self._check_trace_cache(config_fields, request_fields)
            self._check_dead_fields(CONFIG_MODULE, CONFIG_CLASS, config_fields)
        if settings_fields:
            self._check_dead_fields(SETTINGS_MODULE, SETTINGS_CLASS,
                                    settings_fields)
            self._check_settings_resolution(settings_fields)
        return self.findings

    # ------------------------------------------------------------------
    # Anchors
    # ------------------------------------------------------------------

    def _class_fields(self, rel: str, cls: str) -> List[str]:
        info = self.model.classes.get(cls)
        if info is None or not info.module.rel.endswith(rel):
            return []
        return dataclass_fields(info.node)

    def _method(self, cls: str, name: str) -> Optional[FunctionInfo]:
        info = self.model.classes.get(cls)
        if info is None:
            return None
        return info.methods.get(name)

    def _function(self, qual_suffix: str) -> Optional[FunctionInfo]:
        return self.model.find_function(qual_suffix)

    # ------------------------------------------------------------------
    # Covered sets (what the fingerprint functions mention)
    # ------------------------------------------------------------------

    def _self_coverage(self, func: Optional[FunctionInfo],
                       fields: List[str]) -> Set[str]:
        """Fields a method covers: ``self.<f>`` reads, ``"<f>"`` literals,
        or *everything* when it serializes ``asdict(self)`` wholesale."""
        if func is None:
            return set()
        covered: Set[str] = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call) and \
                    terminal_identifier(node.func) == "asdict":
                return set(fields)
            if (isinstance(node, ast.Attribute) and node.attr in fields
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                covered.add(node.attr)
            if (isinstance(node, ast.Constant)
                    and isinstance(node.value, str) and node.value in fields):
                covered.add(node.value)
        return covered

    def _request_key_coverage(
        self, func: Optional[FunctionInfo],
        config_fields: List[str], request_fields: List[str],
    ) -> Tuple[Set[str], Set[str]]:
        """(config fields, request fields) mentioned by trace_request_key."""
        if func is None:
            return set(), set()
        config_cov: Set[str] = set()
        request_cov: Set[str] = set()
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Attribute):
                continue
            if (node.attr in config_fields
                    and terminal_identifier(node.value) in _CONFIG_RECEIVERS):
                config_cov.add(node.attr)
            if node.attr in request_fields:
                request_cov.add(node.attr)
        if config_cov:
            # request.config.<f> chains read the config through the request.
            request_cov.add("config")
        return config_cov, request_cov

    # ------------------------------------------------------------------
    # Read sets (what reachable code actually touches)
    # ------------------------------------------------------------------

    def _reads_in(
        self, reachable: Set[str], fields: List[str],
        receivers: Tuple[str, ...], exclude: Set[str],
    ) -> Dict[str, Tuple[str, int]]:
        """field -> first (path, line) reading it under a matching receiver,
        across the reachable functions (minus ``exclude`` sinks)."""
        reads: Dict[str, Tuple[str, int]] = {}
        for qualname in sorted(reachable - exclude):
            info = self.model.functions[qualname]
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Attribute):
                    continue
                if not isinstance(node.ctx, ast.Load):
                    continue
                if node.attr not in fields:
                    continue
                recv = terminal_identifier(node.value)
                if recv not in receivers and not (
                        recv is None and self._is_settings_call(node.value)):
                    continue
                site = (str(info.module.path), node.lineno)
                reads.setdefault(node.attr, site)
        return reads

    @staticmethod
    def _is_settings_call(node: ast.AST) -> bool:
        """``current_settings().<field>`` — the receiver is a call."""
        return (isinstance(node, ast.Call)
                and terminal_identifier(node.func) == "current_settings")

    def _self_reads(self, cls: str, fields: List[str]) -> Set[str]:
        """Fields the owning class itself reads (``self.<f>`` in methods,
        plus literal field names in its own bodies — the ``__post_init__``
        ``getattr(self, name)`` idiom)."""
        info = self.model.classes.get(cls)
        if info is None:
            return set()
        reads: Set[str] = set()
        for method in info.methods.values():
            if method.name in ("fingerprint", "describe"):
                continue  # the sinks themselves are not simulation reads
            for node in ast.walk(method.node):
                if (isinstance(node, ast.Attribute) and node.attr in fields
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"):
                    reads.add(node.attr)
                if (isinstance(node, ast.Constant)
                        and isinstance(node.value, str)
                        and node.value in fields):
                    reads.add(node.value)
        return reads

    # ------------------------------------------------------------------
    # FLW001: read-but-unfingerprinted
    # ------------------------------------------------------------------

    def _check_result_cache(self, config_fields: List[str],
                            request_fields: List[str]) -> None:
        reachable = self.model.reachable_from(
            [self._qual(r) for r in SIMULATE_ROOTS])
        sinks = self._sink_quals()
        config_cov = self._self_coverage(
            self._method(CONFIG_CLASS, "fingerprint"), config_fields)
        config_reads = self._reads_in(reachable, config_fields,
                                      _CONFIG_RECEIVERS, sinks)
        for field_name in sorted(set(config_reads) - config_cov):
            path, line = config_reads[field_name]
            self.findings.append(Violation(
                code="FLW001", path=path, line=line,
                message=(f"config field `{field_name}` is read on the "
                         f"simulate path but not covered by "
                         f"SystemConfig.fingerprint() — the result cache "
                         f"would serve stale results across configs that "
                         f"differ in it")))
        if request_fields:
            describe_cov = self._self_coverage(
                self._method(REQUEST_CLASS, "describe"), request_fields)
            request_reads = self._reads_in(
                reachable, request_fields, ("request", "req"), sinks)
            for field_name in sorted(set(request_reads) - describe_cov):
                path, line = request_reads[field_name]
                self.findings.append(Violation(
                    code="FLW001", path=path, line=line,
                    message=(f"request field `{field_name}` is read on the "
                             f"simulate path but missing from "
                             f"RunRequest.describe() — it never reaches the "
                             f"result-cache fingerprint")))

    def _check_trace_cache(self, config_fields: List[str],
                           request_fields: List[str]) -> None:
        key_func = self._function(f"{TRACES_MODULE}:trace_request_key")
        if key_func is None:
            return
        reachable = self.model.reachable_from(
            [self._qual(r) for r in CAPTURE_ROOTS])
        # The capture path hands the workload to the engine-independent
        # capture; the simulate subtree (reached only through by-name
        # fallbacks) is keyed by the *result* cache, not the trace key.
        reachable -= self.model.reachable_from(
            [self._qual(r) for r in SIMULATE_ROOTS])
        reachable.update(self._qual(r) for r in CAPTURE_ROOTS
                         if self._qual(r) in self.model.functions)
        config_cov, request_cov = self._request_key_coverage(
            key_func, config_fields, request_fields)
        sinks = self._sink_quals()
        config_reads = self._reads_in(reachable, config_fields,
                                      _CONFIG_RECEIVERS, sinks)
        for field_name in sorted(set(config_reads) - config_cov):
            path, line = config_reads[field_name]
            self.findings.append(Violation(
                code="FLW001", path=path, line=line,
                message=(f"config field `{field_name}` is read on the "
                         f"trace-capture path but missing from "
                         f"trace_request_key() — the trace store would "
                         f"serve one config's op stream to another")))

    def _sink_quals(self) -> Set[str]:
        sinks = set()
        for cls, name in ((CONFIG_CLASS, "fingerprint"),
                          (REQUEST_CLASS, "describe"),
                          (REQUEST_CLASS, "fingerprint")):
            method = self._method(cls, name)
            if method is not None:
                sinks.add(method.qualname)
        key_func = self._function(f"{TRACES_MODULE}:trace_request_key")
        if key_func is not None:
            sinks.add(key_func.qualname)
        return sinks

    def _qual(self, suffix: str) -> str:
        info = self.model.find_function(suffix)
        return info.qualname if info is not None else suffix

    # ------------------------------------------------------------------
    # FLW002: dead fields
    # ------------------------------------------------------------------

    def _check_dead_fields(self, rel: str, cls: str,
                           fields: List[str]) -> None:
        info = self.model.classes.get(cls)
        if info is None:
            return
        read_anywhere: Set[str] = set()
        for module in self.model.project.modules:
            for node in ast.walk(module.tree):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Load)
                        and node.attr in fields):
                    read_anywhere.add(node.attr)
        # The owning class may read its own fields through the
        # ``getattr(self, name)`` idiom with literal name tables.
        read_anywhere.update(self._self_reads(cls, fields))
        declared_at = {}
        for stmt in info.node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                declared_at[stmt.target.id] = stmt.lineno
        for field_name in fields:
            if field_name in read_anywhere:
                continue
            self.findings.append(Violation(
                code="FLW002", path=str(info.module.path),
                line=declared_at.get(field_name, info.node.lineno),
                message=(f"{cls} field `{field_name}` is never read "
                         f"anywhere in the tree — dead parameter surface "
                         f"that still churns every cache fingerprint")))

    # ------------------------------------------------------------------
    # FLW003: settings fields read but never pinned by resolve()
    # ------------------------------------------------------------------

    def _check_settings_resolution(self, settings_fields: List[str]) -> None:
        resolve = self._method(REQUEST_CLASS, "resolve")
        if resolve is None:
            return
        pinned: Set[str] = set()
        for node in ast.walk(resolve.node):
            if (isinstance(node, ast.Attribute)
                    and node.attr in settings_fields
                    and terminal_identifier(node.value) == "settings"):
                pinned.add(node.attr)
        settings_cls = self.model.classes.get(SETTINGS_CLASS)
        own = {m.qualname for m in settings_cls.methods.values()} \
            if settings_cls else set()
        skip = own | {resolve.qualname}
        for qualname in sorted(self.model.functions):
            if qualname in skip:
                continue
            info = self.model.functions[qualname]
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Attribute):
                    continue
                if node.attr not in settings_fields or node.attr in pinned:
                    continue
                recv = terminal_identifier(node.value)
                if recv != "settings" and not self._is_settings_call(node.value):
                    continue
                self.findings.append(Violation(
                    code="FLW003", path=str(info.module.path),
                    line=node.lineno,
                    message=(f"settings field `{node.attr}` is read here but "
                             f"never pinned by RunRequest.resolve() — the "
                             f"resolved request does not fully describe the "
                             f"run (waive if it only shapes the request "
                             f"set)")))
