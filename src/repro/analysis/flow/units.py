"""FLW004–FLW006: flow-sensitive unit/dimension taint.

SIM005 polices where raw ``_ns``/``_ghz`` *literals* may appear; this pass
generalizes it from lexical to flow-sensitive.  Values are tagged with a
physical dimension at their sources — name suffixes (``*_ns``, ``*_ghz``,
``*_cycles``, ``*_latency``, ``*_bytes``, ``*_bytes_per_cycle``) and the
:class:`~repro.sim.clock.ClockDomain` conversion methods — and the tags
are propagated through each function's CFG by a worklist dataflow, so a
nanosecond quantity that travels through two assignments and an ``if``
still carries its dimension when it finally meets a cycles quantity.

* **FLW004** — additive arithmetic (``+``/``-``) over two *different*
  concrete dimensions with no conversion in between (adding nanoseconds
  to host cycles silently corrupts every downstream timestamp at any
  frequency other than 1 GHz).
* **FLW005** — an order comparison across two different concrete
  dimensions (branching on ``t_ns > t_cycles`` picks sides based on the
  unit system, not the physics).
* **FLW006** — an assignment whose *target name* promises one dimension
  but whose value carries another (``walk_latency = cfg.dram_burst_ns``):
  the name is the API other code trusts.

The lattice is deliberately forgiving: numeric literals are dimensionless
(``any`` — unify with everything), unknown expressions never fire, and the
sanctioned conversions — ``ns x ghz -> cycles``, ``bytes /
bytes_per_cycle -> cycles``, ``dim / same dim -> scalar``, the ClockDomain
methods — produce correctly-typed results instead of findings.  Only a
meeting of two *confidently different* dimensions reports.
"""

import ast
from typing import Dict, List, Optional

from repro.analysis.source import Module, Violation, terminal_identifier
from repro.analysis.flow.cfg import build_cfg
from repro.analysis.flow.model import ProjectModel

__all__ = ["run_units_pass", "dim_of_name"]

# The dimension lattice: concrete dims, plus `any` (literals: unify with
# everything), `scalar` (dimensionless ratios) and `unknown` (no claim).
NS = "ns"
GHZ = "ghz"
CYCLES = "cycles"
BYTES = "bytes"
BW = "bytes_per_cycle"
SCALAR = "scalar"
ANY = "any"
UNKNOWN = "unknown"

CONCRETE = (NS, GHZ, CYCLES, BYTES, BW)

#: ClockDomain-style conversion methods and their result dimensions.
_CONVERSION_RESULTS = {
    "from_ns": CYCLES,
    "cycles": CYCLES,
    "bytes_per_host_cycle": BW,
}

#: Name-suffix sources, checked in order (longest suffix first).
_SUFFIX_DIMS = (
    ("bytes_per_cycle", BW),
    ("_ns", NS),
    ("_ps", NS),
    ("nanoseconds", NS),
    ("_ghz", GHZ),
    ("_mhz", GHZ),
    ("_cycles", CYCLES),
    ("cycles", CYCLES),
    ("_latency", CYCLES),
    ("latency", CYCLES),
    ("_bytes", BYTES),
    ("nbytes", BYTES),
)


def dim_of_name(name: Optional[str]) -> str:
    if not name:
        return UNKNOWN
    lowered = name.lower()
    for suffix, dim in _SUFFIX_DIMS:
        if lowered.endswith(suffix):
            return dim
    return UNKNOWN


def _join(a: str, b: str) -> str:
    if a == b:
        return a
    if a == ANY:
        return b
    if b == ANY:
        return a
    return UNKNOWN


def run_units_pass(model: ProjectModel) -> List[Violation]:
    findings: List[Violation] = []
    for info in model.functions.values():
        checker = _FunctionChecker(info.module, info.node)
        findings.extend(checker.run())
    return findings


class _FunctionChecker:
    """One function: seed from parameter names, propagate over the CFG."""

    def __init__(self, module: Module, func: ast.AST):
        self.module = module
        self.func = func
        self.findings: List[Violation] = []
        self._emit = False          # emission off during fixpoint iteration

    def run(self) -> List[Violation]:
        cfg = build_cfg(self.func)
        seed = self._seed_env()
        env_in: Dict[int, Dict[str, str]] = {cfg.entry.index: dict(seed)}
        # Fixpoint: propagate environments until stable (joins only widen
        # toward `unknown`, so this terminates; the cap is a backstop).
        for _ in range(max(4, 2 * len(cfg.blocks))):
            changed = False
            for block in cfg.blocks:
                env = dict(env_in.get(block.index, seed if block is cfg.entry
                                      else {}))
                out = self._transfer(block, env)
                for succ in block.succs:
                    previous = env_in.get(succ.index)
                    merged = self._merge(previous, out)
                    if merged != previous:
                        env_in[succ.index] = merged
                        changed = True
            if not changed:
                break
        # Emission pass over the stable environments.
        self._emit = True
        for block in cfg.blocks:
            env = dict(env_in.get(block.index, seed if block is cfg.entry
                                  else {}))
            self._transfer(block, env)
        return self.findings

    def _seed_env(self) -> Dict[str, str]:
        env: Dict[str, str] = {}
        args = self.func.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + [a for a in (args.vararg, args.kwarg) if a]):
            dim = dim_of_name(arg.arg)
            if dim != UNKNOWN:
                env[arg.arg] = dim
        return env

    @staticmethod
    def _merge(previous: Optional[Dict[str, str]],
               incoming: Dict[str, str]) -> Dict[str, str]:
        if previous is None:
            return dict(incoming)
        merged = dict(previous)
        for name, dim in incoming.items():
            merged[name] = _join(merged[name], dim) if name in merged else dim
        for name in previous:
            if name not in incoming:
                merged[name] = UNKNOWN
        return merged

    # ------------------------------------------------------------------
    # Transfer function
    # ------------------------------------------------------------------

    def _transfer(self, block, env: Dict[str, str]) -> Dict[str, str]:
        for stmt in block.statements:
            if isinstance(stmt, ast.Assign):
                dim = self._dim(stmt.value, env)
                for target in stmt.targets:
                    self._assign(target, dim, env)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                dim = self._dim(stmt.value, env)
                self._assign(stmt.target, dim, env)
            elif isinstance(stmt, ast.AugAssign):
                target_dim = self._target_dim(stmt.target, env)
                value_dim = self._dim(stmt.value, env)
                dim = self._binop_dim(stmt.op, target_dim, value_dim, stmt)
                self._assign(stmt.target, dim, env)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                self._dim(stmt.value, env)
            else:
                # Branch tests, expression statements, `for` headers, …:
                # evaluate every contained expression for its side effect of
                # checking, without tracking a result.
                for value in ast.iter_child_nodes(stmt):
                    if isinstance(value, ast.expr):
                        self._dim(value, env)
        return env

    def _assign(self, target: ast.AST, dim: str, env: Dict[str, str]) -> None:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, UNKNOWN, env)
            return
        if name is None:
            return
        declared = dim_of_name(name)
        if (declared in CONCRETE and dim in CONCRETE and dim != declared
                and self._emit):
            self.findings.append(self._violation(
                "FLW006", target,
                f"`{name}` is named as {declared} but is assigned a {dim} "
                f"value — rename it or convert the value"))
        if isinstance(target, ast.Name):
            # Trust the declared suffix over a lost trail, but keep the
            # computed dimension when the name makes no unit claim.
            env[target.id] = declared if declared != UNKNOWN else dim

    def _target_dim(self, target: ast.AST, env: Dict[str, str]) -> str:
        if isinstance(target, ast.Name):
            return env.get(target.id, dim_of_name(target.id))
        if isinstance(target, ast.Attribute):
            return dim_of_name(target.attr)
        return UNKNOWN

    # ------------------------------------------------------------------
    # Expression dimensions
    # ------------------------------------------------------------------

    def _dim(self, node: ast.AST, env: Dict[str, str]) -> str:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                    node.value, (int, float)):
                return UNKNOWN
            return ANY
        if isinstance(node, ast.Name):
            if node.id in env and env[node.id] != UNKNOWN:
                return env[node.id]
            return dim_of_name(node.id)
        if isinstance(node, ast.Attribute):
            self._dim(node.value, env)
            return dim_of_name(node.attr)
        if isinstance(node, ast.BinOp):
            left = self._dim(node.left, env)
            right = self._dim(node.right, env)
            return self._binop_dim(node.op, left, right, node)
        if isinstance(node, ast.UnaryOp):
            return self._dim(node.operand, env)
        if isinstance(node, ast.Compare):
            self._compare(node, env)
            return UNKNOWN
        if isinstance(node, ast.BoolOp):
            dims = [self._dim(v, env) for v in node.values]
            out = dims[0]
            for dim in dims[1:]:
                out = _join(out, dim)
            return out
        if isinstance(node, ast.IfExp):
            self._dim(node.test, env)
            return _join(self._dim(node.body, env),
                         self._dim(node.orelse, env))
        if isinstance(node, ast.Call):
            return self._call_dim(node, env)
        if isinstance(node, ast.Subscript):
            self._dim(node.value, env)
            if isinstance(node.slice, ast.expr):
                self._dim(node.slice, env)
            # `table[i]` inherits any unit claim of the table's name.
            return dim_of_name(terminal_identifier(node.value))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._dim(elt, env)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for value in list(node.keys) + list(node.values):
                if value is not None:
                    self._dim(value, env)
            return UNKNOWN
        # Comprehensions, lambdas, f-strings, …: walk for nested checks.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._dim(child, env)
        return UNKNOWN

    def _call_dim(self, node: ast.Call, env: Dict[str, str]) -> str:
        for arg in node.args:
            self._dim(arg, env)
        for kw in node.keywords:
            self._dim(kw.value, env)
        func = node.func
        if isinstance(func, ast.Attribute):
            self._dim(func.value, env)
            if func.attr in _CONVERSION_RESULTS:
                return _CONVERSION_RESULTS[func.attr]
            return UNKNOWN
        name = terminal_identifier(func)
        if name in ("int", "float", "round", "abs"):
            return self._dim(node.args[0], env) if node.args else UNKNOWN
        if name in ("min", "max", "sum"):
            dims = [self._dim(arg, env) for arg in node.args]
            out = dims[0] if dims else UNKNOWN
            for dim in dims[1:]:
                out = _join(out, dim)
            return out
        if name == "len":
            return ANY
        return UNKNOWN

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def _binop_dim(self, op: ast.AST, left: str, right: str,
                   node: ast.AST) -> str:
        if isinstance(op, (ast.Add, ast.Sub)):
            if left in CONCRETE and right in CONCRETE and left != right:
                if self._emit:
                    self.findings.append(self._violation(
                        "FLW004", node,
                        f"{self._describe(node)}: adds {left} to {right} "
                        f"without a conversion — route one side through "
                        f"ClockDomain first"))
                return UNKNOWN
            return _join(left, right)
        if isinstance(op, ast.Mult):
            pair = {left, right}
            if pair == {NS, GHZ}:
                return CYCLES          # the ClockDomain.from_ns identity
            if left in (SCALAR, ANY):
                return right
            if right in (SCALAR, ANY):
                return left
            return UNKNOWN
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left in CONCRETE and left == right:
                return SCALAR
            if left == BYTES and right == BW:
                return CYCLES          # occupancy: bytes over bandwidth
            if right in (SCALAR, ANY):
                return left
            return UNKNOWN
        return UNKNOWN

    def _compare(self, node: ast.Compare, env: Dict[str, str]) -> None:
        dims = [self._dim(node.left, env)]
        dims.extend(self._dim(comp, env) for comp in node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                   ast.Eq, ast.NotEq)):
                continue
            left, right = dims[i], dims[i + 1]
            if (left in CONCRETE and right in CONCRETE and left != right
                    and self._emit):
                self.findings.append(self._violation(
                    "FLW005", node,
                    f"{self._describe(node)}: compares {left} against "
                    f"{right} — the branch direction depends on the unit "
                    f"system, not the physics"))

    # ------------------------------------------------------------------

    def _describe(self, node: ast.AST) -> str:
        try:
            text = ast.unparse(node)
        except Exception:
            return "expression"
        return f"`{text[:60]}`" if len(text) <= 60 else f"`{text[:57]}...`"

    def _violation(self, code: str, node: ast.AST, message: str) -> Violation:
        return Violation(code=code, message=message,
                         path=str(self.module.path),
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0))
