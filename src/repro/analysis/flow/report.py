"""simflow output: terminal text, machine JSON, and SARIF 2.1.0.

The SARIF document is the minimal valid subset GitHub code scanning
ingests: one run, one driver with the FLW rule catalogue, one result per
finding with a physical location.  ``rel`` paths (relative to the analyzed
root) are used as artifact URIs so the document is machine-independent.
"""

import json
from pathlib import Path
from typing import Dict

from repro.analysis.flow.engine import FLOW_CODES, HYGIENE_CODE, FlowReport

__all__ = ["findings_to_json", "findings_to_sarif", "format_report"]

_TOOL_NAME = "simflow"
_TOOL_URI = "docs/analysis.md"


def format_report(report: FlowReport) -> str:
    """Human-readable result block (mirrors simlint's format)."""
    lines = [str(finding) for finding in report.findings]
    base = (f" ({report.baselined} baselined)" if report.baselined else "")
    scope = (f"{report.modules} modules, {report.functions} functions, "
             f"hot set {report.hot_functions}")
    if report.clean:
        lines.append(f"simflow: clean{base} [{scope}]")
    else:
        lines.append(f"simflow: {len(report.findings)} finding(s){base} "
                     f"[{scope}]")
    return "\n".join(lines)


def findings_to_json(report: FlowReport) -> Dict:
    """A stable machine-readable document (the ``--json`` artifact)."""
    return {
        "tool": _TOOL_NAME,
        "summary": {
            "findings": len(report.findings),
            "baselined": report.baselined,
            "modules": report.modules,
            "functions": report.functions,
            "hot_functions": report.hot_functions,
            "select": list(report.select) if report.select else None,
            "clean": report.clean,
        },
        "findings": [
            {"code": f.code, "message": f.message, "path": f.path,
             "rel": f.rel, "line": f.line, "col": f.col}
            for f in report.findings
        ],
    }


def findings_to_sarif(report: FlowReport) -> Dict:
    """A SARIF 2.1.0 document for code-scanning upload."""
    rules = [
        {
            "id": code,
            "name": title.title().replace(" ", "").replace("-", ""),
            "shortDescription": {"text": title},
            "fullDescription": {"text": rationale},
            "helpUri": _TOOL_URI,
        }
        for code, (title, rationale) in sorted(FLOW_CODES.items())
    ]
    rules.append({
        "id": HYGIENE_CODE,
        "name": "FlowHygiene",
        "shortDescription": {"text": "waiver/baseline hygiene"},
        "fullDescription": {
            "text": "unjustified or stale waiver pragmas and stale "
                    "baseline entries"},
        "helpUri": _TOOL_URI,
    })
    results = [
        {
            "ruleId": f.code,
            "level": "warning" if f.code == HYGIENE_CODE else "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.rel},
                    "region": {"startLine": max(1, f.line),
                               "startColumn": max(1, f.col + 1)},
                },
            }],
        }
        for f in report.findings
    ]
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": _TOOL_NAME,
                "informationUri": _TOOL_URI,
                "rules": rules,
            }},
            "results": results,
        }],
    }


def write_json(report: FlowReport, path: Path) -> None:
    Path(path).write_text(
        json.dumps(findings_to_json(report), indent=2) + "\n",
        encoding="utf-8")


def write_sarif(report: FlowReport, path: Path) -> None:
    Path(path).write_text(
        json.dumps(findings_to_sarif(report), indent=2) + "\n",
        encoding="utf-8")
