"""Seeded-defect self-validation for the flow passes.

A static analyzer that is never shown a true positive is just a formatter.
Each mutant below patches one realistic defect into an *in-memory* copy of
the tree (the files on disk are never touched — ``parse_project``'s
``overrides`` hook substitutes the source text) and the corresponding pass
must produce a finding that the pristine tree does not have.  ``make
flow-mutants`` runs the full gauntlet and fails if any mutant survives —
so a refactor of the analyzer that silently blinds a pass fails CI even
though the clean tree still reports clean.

The defects are the actual failure modes the passes exist for: a config
field dropped from the fingerprint (stale-cache corruption), an ns/cycles
mix (unit corruption), a set iteration in the replay loop (replay
nondeterminism), a per-op allocation (the regression trace replay was
built to remove).
"""

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.mutation import Mutant, MutantResult, run_seeded_mutants
from repro.analysis.flow.engine import FlowReport, run_flow

__all__ = ["MUTANTS", "Mutant", "MutantResult", "run_mutants"]


MUTANTS: Tuple[Mutant, ...] = (
    # ---- FLW001: fingerprint soundness --------------------------------
    Mutant(
        name="fingerprint-enumerates-subset",
        code="FLW001",
        description="SystemConfig.fingerprint() hashes an enumerated field "
                    "subset instead of asdict() — every other read field "
                    "goes uncovered",
        edits=(("system/config.py",
                "payload = json.dumps(asdict(self), sort_keys=True, "
                "default=repr)",
                "payload = json.dumps({\"n_cores\": self.n_cores}, "
                "sort_keys=True, default=repr)"),),
    ),
    Mutant(
        name="describe-drops-ops-cap",
        code="FLW001",
        description="RunRequest.describe() stops serializing the op cap — "
                    "two different-length runs share a cache entry",
        edits=(("bench/frontier.py",
                '            "max_ops_per_thread": self.max_ops_per_thread,\n',
                ""),),
    ),
    Mutant(
        name="trace-key-drops-page-size",
        code="FLW001",
        description="trace_request_key() stops keying on page_size — traces "
                    "captured under one layout replay under another",
        edits=(("bench/traces.py",
                '        "page_size": request.config.page_size,\n',
                ""),),
    ),
    Mutant(
        name="capture-reads-unkeyed-field",
        code="FLW001",
        description="the capture path starts reading config.block_size, "
                    "which trace_request_key() does not cover",
        edits=(("bench/traces.py",
                "        from repro.bench.frontier import build_workload\n",
                "        from repro.bench.frontier import build_workload\n"
                "        granularity = request.config.block_size\n"),),
    ),
    # ---- FLW002/FLW003: field hygiene ---------------------------------
    Mutant(
        name="dead-config-knob",
        code="FLW002",
        description="a config field is added but nothing ever reads it",
        edits=(("system/config.py",
                "    page_size: int = 4096\n",
                "    page_size: int = 4096\n"
                "    prefetch_depth: int = 4\n"),),
    ),
    Mutant(
        name="settings-field-unpinned",
        code="FLW003",
        description="a new BenchSettings field is read by bench code but "
                    "RunRequest.resolve() never pins it",
        edits=(
            ("bench/runner.py",
             "    seed: int = field(\n"
             "        default_factory=lambda: _env_int(\"REPRO_BENCH_SEED\", "
             "42))\n",
             "    seed: int = field(\n"
             "        default_factory=lambda: _env_int(\"REPRO_BENCH_SEED\", "
             "42))\n"
             "    warmup_ops: int = field(\n"
             "        default_factory=lambda: _env_int(\"REPRO_BENCH_WARMUP\","
             " 0))\n"),
            ("bench/experiments.py",
             "        n_mixes = current_settings().n_mixes",
             "        n_mixes = current_settings().n_mixes\n"
             "        warmup = current_settings().warmup_ops"),
        ),
    ),
    # ---- FLW004-FLW006: unit taint ------------------------------------
    Mutant(
        name="ns-added-to-cycles",
        code="FLW004",
        description="a DRAM timing adds raw nanoseconds onto converted "
                    "host cycles",
        edits=(("mem/dram.py",
                "            t_cl=clock.from_ns(t_cl_ns),",
                "            t_cl=clock.from_ns(t_cl_ns) + t_rp_ns,"),),
    ),
    Mutant(
        name="cycles-compared-to-ghz",
        code="FLW005",
        description="a conversion branches on cycles-vs-frequency — the "
                    "comparison has no physical meaning",
        edits=(("sim/clock.py",
                "    def cycles(self, device_cycles: float) -> float:\n"
                "        \"\"\"Convert cycles of this domain into host-core "
                "cycles.\"\"\"\n",
                "    def cycles(self, device_cycles: float) -> float:\n"
                "        \"\"\"Convert cycles of this domain into host-core "
                "cycles.\"\"\"\n"
                "        if device_cycles > self.freq_ghz:\n"
                "            pass\n"),),
    ),
    Mutant(
        name="cycles-name-holds-ghz",
        code="FLW006",
        description="a *_cycles name is bound to a frequency value — every "
                    "reader now trusts a lie",
        edits=(("sim/clock.py",
                "        return gbytes_per_second / self.host_freq_ghz",
                "        denom_cycles = self.host_freq_ghz\n"
                "        return gbytes_per_second / denom_cycles"),),
    ),
    # ---- FLW007-FLW009: hot-path purity -------------------------------
    Mutant(
        name="hot-set-iteration",
        code="FLW007",
        description="the per-load window scan iterates a set — replay "
                    "order becomes hash-seed-dependent",
        edits=(("cpu/core.py",
                "    def do_load(self, vaddr: int, dep: bool) -> None:\n",
                "    def do_load(self, vaddr: int, dep: bool) -> None:\n"
                "        for _probe in {1, 2}:\n"
                "            pass\n"),),
    ),
    Mutant(
        name="hot-id-keyed-lookup",
        code="FLW007",
        description="the executor keys completion state by id() — identity "
                    "depends on allocation order across runs",
        edits=(("core/executor.py",
                "        self._slots[SLOT_PEI_ISSUED] += 1.0\n",
                "        self._slots[SLOT_PEI_ISSUED] += 1.0\n"
                "        self._inflight = id(core)\n"),),
    ),
    Mutant(
        name="hot-env-read",
        code="FLW007",
        description="the executor consults an environment variable per PEI "
                    "— results silently depend on the shell",
        edits=(("core/executor.py",
                "        self._slots[SLOT_PEI_ISSUED] += 1.0\n",
                "        self._slots[SLOT_PEI_ISSUED] += 1.0\n"
                "        if os.environ.get(\"REPRO_FORCE_HOST\"):\n"
                "            pass\n"),),
    ),
    Mutant(
        name="hot-per-op-allocation",
        code="FLW008",
        description="the per-load path allocates a fresh list per operation",
        edits=(("cpu/core.py",
                "    def do_load(self, vaddr: int, dep: bool) -> None:\n",
                "    def do_load(self, vaddr: int, dep: bool) -> None:\n"
                "        pending = []\n"),),
    ),
    Mutant(
        name="hot-stats-add",
        code="FLW009",
        description="the per-load path calls stats.add() per operation — "
                    "the slot fast path is silently undone",
        edits=(("cpu/core.py",
                "    def do_load(self, vaddr: int, dep: bool) -> None:\n",
                "    def do_load(self, vaddr: int, dep: bool) -> None:\n"
                "        self.stats.add(\"cpu.loads\", 1.0)\n"),),
    ),
)


def run_mutants(
    paths: Sequence,
    baseline: Optional[Path] = None,
    mutants: Sequence[Mutant] = MUTANTS,
) -> Tuple[List[MutantResult], FlowReport]:
    """Seed each defect in memory and require its pass to catch it.

    See :func:`repro.analysis.mutation.run_seeded_mutants` for the kill
    criterion and anchor-drift behavior.
    """
    return run_seeded_mutants(run_flow, paths, mutants, baseline=baseline)
