"""Per-function control-flow graphs for flow-sensitive passes.

The CFG is statement-granular: each :class:`Block` holds a run of simple
statements; compound statements (``if``/``while``/``for``/``try``/
``with``) split blocks and contribute edges.  ``break``/``continue``/
``return``/``raise`` terminate their block and route to the matching
loop-exit/loop-header/function-exit.  The graph is *forward* only — that
is all the dataflow clients need — and loops contribute back edges, so a
worklist pass over blocks reaches a fixpoint over loop-carried state.

This is intentionally much smaller than a real interpreter's CFG: dynamic
control flow (exceptions from arbitrary expressions) is approximated by
treating a ``try`` body as splittable straight-line code whose handlers
join it, which is sound for the dimension-taint client (it only widens
joins, never narrows).
"""

import ast
from typing import List, Optional, Sequence

__all__ = ["Block", "CFG", "build_cfg"]


class Block:
    """A basic block: straight-line statements plus successor edges."""

    __slots__ = ("index", "statements", "succs")

    def __init__(self, index: int):
        self.index = index
        self.statements: List[ast.stmt] = []
        self.succs: List["Block"] = []

    def add_succ(self, other: Optional["Block"]) -> None:
        if other is not None and other not in self.succs:
            self.succs.append(other)

    def __repr__(self) -> str:
        return (f"Block({self.index}, {len(self.statements)} stmts, "
                f"-> {[b.index for b in self.succs]})")


class CFG:
    """All blocks of one function; ``entry`` starts, ``exit`` joins returns."""

    def __init__(self):
        self.blocks: List[Block] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block


class _Builder:
    def __init__(self):
        self.cfg = CFG()
        # (loop_after, loop_header) stack for break/continue routing.
        self._loops: List[tuple] = []

    def build(self, func: ast.AST) -> CFG:
        last = self._body(func.body, self.cfg.entry)
        if last is not None:
            last.add_succ(self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------

    def _body(self, stmts: Sequence[ast.stmt],
              current: Optional[Block]) -> Optional[Block]:
        """Wire ``stmts`` starting at ``current``; return the fall-through
        block (None when every path left the straight line)."""
        for stmt in stmts:
            if current is None:
                # Unreachable code after return/raise/break: give it its own
                # island block so its text is still analyzed, edges or not.
                current = self.cfg.new_block()
            current = self._statement(stmt, current)
        return current

    def _statement(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.statements.append(stmt)  # the item expressions
            return self._body(stmt.body, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.statements.append(stmt)
            current.add_succ(self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            if self._loops:
                current.add_succ(self._loops[-1][0])
            return None
        if isinstance(stmt, ast.Continue):
            if self._loops:
                current.add_succ(self._loops[-1][1])
            return None
        current.statements.append(stmt)
        return current

    def _if(self, stmt: ast.If, current: Block) -> Optional[Block]:
        current.statements.append(_TestExpr(stmt.test))
        after = self.cfg.new_block()
        then_entry = self.cfg.new_block()
        current.add_succ(then_entry)
        then_exit = self._body(stmt.body, then_entry)
        if then_exit is not None:
            then_exit.add_succ(after)
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            current.add_succ(else_entry)
            else_exit = self._body(stmt.orelse, else_entry)
            if else_exit is not None:
                else_exit.add_succ(after)
        else:
            current.add_succ(after)
        return after

    def _loop(self, stmt, current: Block) -> Block:
        header = self.cfg.new_block()
        current.add_succ(header)
        if isinstance(stmt, ast.While):
            header.statements.append(_TestExpr(stmt.test))
        else:
            header.statements.append(stmt)  # `for target in iter` binding
        after = self.cfg.new_block()
        body_entry = self.cfg.new_block()
        header.add_succ(body_entry)
        header.add_succ(after)
        self._loops.append((after, header))
        body_exit = self._body(stmt.body, body_entry)
        self._loops.pop()
        if body_exit is not None:
            body_exit.add_succ(header)      # the back edge
        if stmt.orelse:
            else_exit = self._body(stmt.orelse, after)
            return else_exit if else_exit is not None else after
        return after

    def _try(self, stmt, current: Block) -> Optional[Block]:
        after = self.cfg.new_block()
        body_exit = self._body(stmt.body, current)
        if body_exit is not None:
            body_exit.add_succ(after)
        for handler in stmt.handlers:
            handler_entry = self.cfg.new_block()
            # Any statement of the body may raise into the handler.
            current.add_succ(handler_entry)
            if body_exit is not None:
                body_exit.add_succ(handler_entry)
            handler_exit = self._body(handler.body, handler_entry)
            if handler_exit is not None:
                handler_exit.add_succ(after)
        if stmt.orelse and body_exit is not None:
            else_exit = self._body(stmt.orelse, after)
            after = else_exit if else_exit is not None else after
        if stmt.finalbody:
            final_exit = self._body(stmt.finalbody, after)
            after = final_exit if final_exit is not None else after
        return after


class _TestExpr(ast.stmt):
    """Wrapper carrying a branch/loop test expression into its block."""

    _fields = ("value",)

    def __init__(self, value: ast.expr):
        super().__init__()
        self.value = value
        self.lineno = getattr(value, "lineno", 1)
        self.col_offset = getattr(value, "col_offset", 0)


def build_cfg(func: ast.AST) -> CFG:
    """The CFG of one FunctionDef/AsyncFunctionDef."""
    return _Builder().build(func)
