"""FLW007–FLW009: hot-path purity via call-graph reachability.

Replay throughput and bit-identity both depend on what the engine's inner
loop can reach.  SIM009 approximates "the hot path" with a hand-maintained
module list; this pass derives it instead: the roots are the call targets
inside the ``while`` loops of ``System._run_trace`` (the replay engine —
per-batch work like ``telemetry.on_progress`` and the barrier closures
included, once-per-run work like ``_collect`` and the drain loop
excluded), and the hot set is the call-graph closure over those roots.
When a refactor reroutes the loop through a new helper, the helper joins
the hot set automatically — no list to forget to update.

On every function of the hot set:

* **FLW007** — nondeterminism sources: iteration over a ``set`` (order is
  hash-seed-dependent), ``id()``-keyed lookups (identity depends on
  allocation order), and environment reads (results silently depend on
  the shell).  Any of these feeding simulation state breaks the
  bit-replayability contract ``make determinism`` enforces dynamically.
* **FLW008** — per-op allocation sinks: list/dict/set displays,
  comprehensions, and ``list()``/``dict()``/``set()`` constructor calls.
  The hot path's idiom is preallocated slots and in-place mutation; a
  fresh ``[]`` per simulated event is the regression the trace-replay
  speedup was built on removing.  Allocations whose only consumer is a
  ``raise`` are exempt (error paths execute once, then the run is dead).
* **FLW009** — per-event ``stats.add()`` (SIM009's check, on the derived
  hot set instead of the module list).

The ``obs/`` observability layer is carved out by design: its hot-path
entry points are interval-gated (they return after one comparison except
at sample boundaries), so its allocations are per-interval, not per-op —
the same shape as SIM001's profiler carve-out.
"""

import ast
from typing import Iterator, List, Set

from repro.analysis.source import (Violation, dotted_name, is_set_expr,
                                   set_typed_locals, terminal_identifier)
from repro.analysis.flow.model import FunctionInfo, ProjectModel

__all__ = ["run_purity_pass", "hot_set"]

#: The replay inner loop whose while-loop call targets root the hot set.
ENGINE_FUNCTION = "system/system.py:System._run_trace"

#: Module prefixes exempt from purity findings (interval-gated
#: observability; see the module docstring).
OBS_EXEMPT = ("obs/",)


def _is_obs(rel: str) -> bool:
    return rel.startswith(OBS_EXEMPT) or any(
        f"/{prefix}" in f"/{rel}" for prefix in OBS_EXEMPT)


def hot_set(model: ProjectModel) -> Set[str]:
    """Qualnames reachable from the replay loop's call targets.

    Reachability does not propagate *through* ``obs/``: its hot-path entry
    points are interval-gated, so whatever they call runs per-interval,
    not per-op (the carve-out would be meaningless if the closure walked
    straight through it into the sinks it guards).
    """
    engine = model.find_function(ENGINE_FUNCTION)
    if engine is None:
        return set()
    seen: Set[str] = set()
    queue = [r for r in sorted(model.loop_call_targets(engine))
             if r in model.functions]
    while queue:
        current = queue.pop()
        if current in seen:
            continue
        seen.add(current)
        if _is_obs(model.functions[current].module.rel):
            continue
        queue.extend(model.edges.get(current, ()))
    return seen


def run_purity_pass(model: ProjectModel) -> List[Violation]:
    findings: List[Violation] = []
    for qualname in sorted(hot_set(model)):
        info = model.functions[qualname]
        if _is_obs(info.module.rel):
            continue
        findings.extend(_check_function(info))
    return findings


def _check_function(info: FunctionInfo) -> Iterator[Violation]:
    set_locals = set_typed_locals(info.node)
    raise_nodes = _nodes_under_raises(info.node)
    for node in _own_nodes(info.node):
        yield from _check_nondeterminism(info, node, set_locals)
        if id(node) not in raise_nodes:
            yield from _check_allocation(info, node)
        yield from _check_stats_add(info, node)


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Nodes of this function, nested defs excluded (they are hot-set
    members in their own right when the loop actually calls them)."""
    skip: Set[int] = set()
    for child in ast.walk(func):
        if (isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not func):
            for sub in ast.walk(child):
                skip.add(id(sub))
    for node in ast.walk(func):
        if id(node) not in skip:
            yield node


def _nodes_under_raises(func: ast.AST) -> Set[int]:
    """ids of every node inside a ``raise`` statement (error paths run
    once; their f-string/format allocations are not per-op costs)."""
    under: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Raise):
            for sub in ast.walk(node):
                under.add(id(sub))
    return under


# ----------------------------------------------------------------------
# FLW007: nondeterminism sources
# ----------------------------------------------------------------------


def _check_nondeterminism(info: FunctionInfo, node: ast.AST,
                          set_locals: Set[str]) -> Iterator[Violation]:
    if isinstance(node, ast.Call):
        name = terminal_identifier(node.func)
        if name == "id":
            yield _violation(info, node, "FLW007",
                             "`id()` on the hot path — identity hashes "
                             "depend on allocation order and break replay "
                             "bit-identity; key on a stable field instead")
        dotted = dotted_name(node.func) or ""
        if dotted.endswith("os.getenv") or dotted == "getenv" or \
                ".environ." in f".{dotted}." or dotted.endswith("environ.get"):
            yield _violation(info, node, "FLW007",
                             "environment read on the hot path — results "
                             "would silently depend on the shell; read env "
                             "once at configuration time")
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Attribute):
        if node.value.attr == "environ":
            yield _violation(info, node, "FLW007",
                             "environment read on the hot path — results "
                             "would silently depend on the shell; read env "
                             "once at configuration time")
    if isinstance(node, (ast.For, ast.AsyncFor)):
        iter_node = node.iter
        is_set = is_set_expr(iter_node) or (
            isinstance(iter_node, ast.Name) and iter_node.id in set_locals)
        if is_set:
            yield _violation(info, node, "FLW007",
                             "iteration over a set on the hot path — "
                             "order is hash-seed-dependent; iterate a "
                             "sorted() copy or keep a list")


# ----------------------------------------------------------------------
# FLW008: per-op allocation sinks
# ----------------------------------------------------------------------


def _check_allocation(info: FunctionInfo, node: ast.AST) -> Iterator[Violation]:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        kind = type(node).__name__.lower()
        yield _violation(info, node, "FLW008",
                         f"{kind} display allocates per call on the hot "
                         f"path — preallocate outside the loop and mutate "
                         f"in place (`.clear()` instead of rebinding)")
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
        yield _violation(info, node, "FLW008",
                         "comprehension allocates per call on the hot path "
                         "— hoist it out of the per-op code")
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("list", "dict", "set"):
        yield _violation(info, node, "FLW008",
                         f"`{node.func.id}()` allocates per call on the "
                         f"hot path — preallocate and reuse")


# ----------------------------------------------------------------------
# FLW009: per-event stats.add (reachability-derived SIM009)
# ----------------------------------------------------------------------


def _check_stats_add(info: FunctionInfo, node: ast.AST) -> Iterator[Violation]:
    if not isinstance(node, ast.Call):
        return
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "add":
        return
    if terminal_identifier(func.value) != "stats":
        return
    yield _violation(info, node, "FLW009",
                     "per-event `stats.add()` is reachable from the replay "
                     "inner loop — bind a Stats slot once and increment it "
                     "in place")


def _violation(info: FunctionInfo, node: ast.AST, code: str,
               message: str) -> Violation:
    return Violation(code=code, message=message,
                     path=str(info.module.path),
                     line=getattr(node, "lineno", 1),
                     col=getattr(node, "col_offset", 0))
