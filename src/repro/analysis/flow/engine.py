"""simflow orchestration: parse -> model -> passes -> waivers -> baseline.

The run pipeline mirrors simlint's but adds two layers the interprocedural
passes need:

* **waivers** — ``# simflow: ignore[FLW00x] -- justification`` pragmas,
  same tokenize-based parser and statement-span matching as simlint but an
  independent namespace (a simlint waiver never silences a flow finding or
  vice versa).  Unjustified and stale pragmas report as ``FLW000``.
* **baseline** — a checked-in JSON file of accepted pre-existing findings,
  matched by ``(code, rel-path, message)`` (line numbers excluded so
  unrelated edits do not churn the file).  Findings in the baseline are
  suppressed and counted; baseline entries that no longer match anything
  report as ``FLW000`` so the file can only shrink.

Waivers are for findings that are *correct but intended* (a settings field
that shapes the request set); the baseline is for *debt* — real findings
accepted at adoption time and burned down over later PRs.
"""

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import (Finding, apply_baseline, load_baseline,
                                     write_baseline as _write_baseline)
from repro.analysis.source import Violation, apply_waivers, parse_project
from repro.analysis.flow.fingerprint import run_fingerprint_pass
from repro.analysis.flow.model import ProjectModel
from repro.analysis.flow.purity import hot_set, run_purity_pass
from repro.analysis.flow.units import run_units_pass

__all__ = ["FLOW_CODES", "HYGIENE_CODE", "SYNTAX_CODE", "Finding",
           "FlowReport", "load_baseline", "run_flow", "write_baseline"]

#: Rule catalogue: code -> (title, one-line rationale).
FLOW_CODES: Dict[str, Tuple[str, str]] = {
    "FLW001": ("fingerprint gap",
               "a config/request field is read by a cache-keyed computation "
               "but not covered by its fingerprint"),
    "FLW002": ("dead config field",
               "a config/settings field is never read anywhere in the tree"),
    "FLW003": ("unresolved settings field",
               "a BenchSettings field is read by bench code but never "
               "pinned in RunRequest.resolve()"),
    "FLW004": ("cross-dimension arithmetic",
               "adds/subtracts two different physical dimensions without a "
               "conversion"),
    "FLW005": ("cross-dimension comparison",
               "compares two different physical dimensions"),
    "FLW006": ("dimension-lying name",
               "assigns a value of one dimension to a name suffixed as "
               "another"),
    "FLW007": ("hot-path nondeterminism",
               "set iteration, id()-keyed lookups or env reads reachable "
               "from the replay inner loop"),
    "FLW008": ("hot-path allocation",
               "per-op list/dict/set allocation reachable from the replay "
               "inner loop"),
    "FLW009": ("hot-path stats.add",
               "per-event stats.add() reachable from the replay inner loop"),
}

#: Hygiene findings (unjustified/stale waivers, stale baseline entries).
HYGIENE_CODE = "FLW000"
#: Unparseable-source findings.
SYNTAX_CODE = "FLW999"

#: Which pass implements which codes (drives --select pass skipping).
_PASSES = (
    (run_fingerprint_pass, ("FLW001", "FLW002", "FLW003")),
    (run_units_pass, ("FLW004", "FLW005", "FLW006")),
    (run_purity_pass, ("FLW007", "FLW008", "FLW009")),
)


@dataclass
class FlowReport:
    """The outcome of one simflow run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: int = 0
    modules: int = 0
    functions: int = 0
    hot_functions: int = 0
    select: Optional[Tuple[str, ...]] = None

    @property
    def clean(self) -> bool:
        return not self.findings


# ----------------------------------------------------------------------
# Baseline file (shared machinery lives in repro.analysis.baseline)
# ----------------------------------------------------------------------


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Persist ``findings`` as the accepted simflow baseline."""
    _write_baseline(
        path, findings, tool="simflow",
        regenerate="python -m repro.analysis flow --update-baseline")


# ----------------------------------------------------------------------
# The run pipeline
# ----------------------------------------------------------------------


def run_flow(
    paths: Sequence,
    select: Optional[Iterable[str]] = None,
    baseline: Optional[Path] = None,
    overrides: Optional[Dict[str, str]] = None,
) -> FlowReport:
    """Run the flow passes over every Python file under ``paths``.

    ``select`` restricts to the given FLW codes (a pass whose codes are all
    deselected is skipped entirely).  ``baseline`` names an accepted-findings
    file; matches are suppressed, stale entries reported.  ``overrides``
    substitutes in-memory source text by rel-path suffix — the seeded-defect
    mutants run through this without touching the tree.
    """
    project, syntax_errors = parse_project(
        [Path(p) for p in paths], tool="simflow",
        syntax_error_code=SYNTAX_CODE, overrides=overrides)
    model = ProjectModel(project)

    selected = (set(code.upper() for code in select)
                if select is not None else set(FLOW_CODES))
    raw: List[Violation] = list(syntax_errors)
    for pass_fn, codes in _PASSES:
        if not selected.intersection(codes):
            continue
        raw.extend(v for v in pass_fn(model) if v.code in selected)

    survivors = apply_waivers(project, raw, selected,
                              unjustified_code=HYGIENE_CODE,
                              stale_code=HYGIENE_CODE)

    rel_of = {str(m.path): m.rel for m in project.modules}
    findings = [Finding(code=v.code, message=v.message, path=v.path,
                        rel=rel_of.get(v.path, Path(v.path).name),
                        line=v.line, col=v.col)
                for v in survivors]

    baselined = 0
    if baseline is not None and Path(baseline).exists():
        entries = load_baseline(Path(baseline))
        findings, baselined = apply_baseline(findings, entries,
                                             Path(baseline),
                                             hygiene_code=HYGIENE_CODE)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return FlowReport(
        findings=findings,
        baselined=baselined,
        modules=len(project.modules),
        functions=len(model.functions),
        hot_functions=len(hot_set(model)),
        select=tuple(sorted(selected)) if select is not None else None,
    )
