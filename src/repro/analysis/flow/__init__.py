"""``simflow``: whole-program dataflow analysis over the simulator tree.

Where :mod:`repro.analysis.simlint` checks each module in isolation,
``simflow`` builds a project model — per-function CFGs
(:mod:`~repro.analysis.flow.cfg`), a project-wide call graph with
reachability (:mod:`~repro.analysis.flow.model`) — and runs three
interprocedural pass families on top:

* **FLW001–FLW003** fingerprint soundness (:mod:`~repro.analysis.flow.
  fingerprint`): every config/settings field the simulation reads must be
  covered by the cache fingerprints, no field may be dead, and every
  settings field must be pinned by ``RunRequest.resolve``.
* **FLW004–FLW006** unit/dimension taint (:mod:`~repro.analysis.flow.
  units`): ns/GHz/cycles/bytes quantities tracked flow-sensitively through
  each function's CFG; cross-dimension arithmetic, comparisons, and
  mis-suffixed assignments are reported.
* **FLW007–FLW009** hot-path purity (:mod:`~repro.analysis.flow.purity`):
  call-graph reachability from the replay inner loop; nondeterminism
  sources, per-op allocation sinks and ``stats.add`` calls on that set.

Entry points: :func:`~repro.analysis.flow.engine.run_flow` (programmatic),
``python -m repro.analysis flow`` (CLI, JSON + SARIF + baseline), and
``python -m repro.analysis flow-mutants`` (seeded-defect self-validation).
"""

from repro.analysis.flow.engine import (
    FLOW_CODES,
    HYGIENE_CODE,
    FlowReport,
    load_baseline,
    run_flow,
    write_baseline,
)
from repro.analysis.flow.model import ProjectModel
from repro.analysis.flow.mutants import MUTANTS, run_mutants
from repro.analysis.flow.report import findings_to_json, findings_to_sarif, format_report

__all__ = [
    "FLOW_CODES",
    "HYGIENE_CODE",
    "FlowReport",
    "MUTANTS",
    "ProjectModel",
    "findings_to_json",
    "findings_to_sarif",
    "format_report",
    "load_baseline",
    "run_flow",
    "run_mutants",
    "write_baseline",
]
