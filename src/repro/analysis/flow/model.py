"""Project model: function index, class index, call graph, reachability.

The model is deliberately *approximate in the safe direction for each
client*.  Call edges are resolved in tiers — lexical scope, ``self``
dispatch, receiver types inferred from ``self.x = Class(...)`` assignments
and annotations, then a name-based fallback over every project function
with that method name — so the graph over-approximates real call targets
(reachability clients like the hot-path purity pass see a superset and
cannot miss a callee through a dynamic dispatch they failed to resolve).
A blocklist keeps container-protocol names (``append``, ``get``, …) from
wiring the whole project together through ``dict``/``list`` method calls.

Everything here is derived from the parsed :class:`~repro.analysis.source.
Module` objects; no simulator code is imported or executed.
"""

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.source import Module, Project, dotted_name, terminal_identifier

__all__ = ["ClassInfo", "FunctionInfo", "ProjectModel"]


#: Attribute names whose calls are overwhelmingly container/stdlib protocol
#: methods; following them by name would connect unrelated classes through
#: every ``dict.get`` and ``list.append`` in the tree.
_FALLBACK_BLOCKLIST = frozenset({
    "append", "extend", "pop", "popitem", "push", "get", "items", "keys",
    "values", "setdefault", "update", "add", "clear", "discard", "remove",
    "sort", "reverse", "count", "index", "insert_left", "copy", "split",
    "join", "strip", "lstrip", "rstrip", "format", "encode", "decode",
    "startswith", "endswith", "lower", "upper", "replace", "move_to_end",
    "tolist", "read_text", "write_text", "write", "open", "close", "exists",
    "mkdir", "resolve", "relative_to", "as_posix", "heappush", "heappop",
    "heapify", "to_dict", "from_dict",
})


@dataclass
class FunctionInfo:
    """One function or method (nested defs included)."""

    qualname: str                 # "<rel>:Outer.inner" (def nesting dotted)
    name: str
    module: Module
    node: ast.AST                 # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None     # enclosing class name, if a method


@dataclass
class ClassInfo:
    """One class: its methods, bases and annotated/assigned attribute types."""

    name: str
    module: Module
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    bases: Tuple[str, ...] = ()


class ProjectModel:
    """Functions, classes, attribute types and the call graph of a Project."""

    def __init__(self, project: Project):
        self.project = project
        #: qualname -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: simple name -> [FunctionInfo] (dispatch fallback)
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        #: class name -> ClassInfo (last definition wins; names are unique
        #: in this tree)
        self.classes: Dict[str, ClassInfo] = {}
        #: class name -> every definition (collision-aware class-call
        #: resolution prefers the caller's own module)
        self.class_defs: Dict[str, List[ClassInfo]] = {}
        #: (class name, attribute) -> class name of the attribute's value
        self.attr_types: Dict[Tuple[str, str], str] = {}
        #: function simple name -> class name (from `-> Class` annotations)
        self.return_types: Dict[str, str] = {}
        #: caller qualname -> callee qualnames
        self.edges: Dict[str, Set[str]] = {}
        self._index()
        self._infer_return_types()
        self._infer_attr_types()
        for info in self.functions.values():
            self.edges[info.qualname] = self._resolve_calls(info)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def _index(self) -> None:
        for module in self.project.modules:
            self._index_body(module, module.tree.body, prefix="", cls=None)

    def _index_body(self, module: Module, body: Sequence[ast.stmt],
                    prefix: str, cls: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module.rel}:{prefix}{node.name}"
                info = FunctionInfo(qualname=qual, name=node.name,
                                    module=module, node=node, cls=cls)
                self.functions[qual] = info
                self.by_name.setdefault(node.name, []).append(info)
                if cls is not None and cls in self.classes:
                    self.classes[cls].methods[node.name] = info
                # Nested defs belong to their enclosing function's scope;
                # the class context does not propagate through them.
                self._index_body(module, node.body,
                                 prefix=f"{prefix}{node.name}.", cls=None)
            elif isinstance(node, ast.ClassDef):
                bases = tuple(b for b in
                              (terminal_identifier(base) for base in node.bases)
                              if b is not None)
                self.classes[node.name] = ClassInfo(
                    name=node.name, module=module, node=node, bases=bases)
                self.class_defs.setdefault(node.name, []).append(
                    self.classes[node.name])
                self._index_body(module, node.body,
                                 prefix=f"{prefix}{node.name}.", cls=node.name)

    def _infer_return_types(self) -> None:
        """``def f(...) -> Class`` annotations, keyed by simple name.

        A name annotated with two different project classes across the tree
        is dropped (conflicting evidence beats a wrong guess)."""
        conflicting: Set[str] = set()
        for info in self.functions.values():
            returns = getattr(info.node, "returns", None)
            hint = (terminal_identifier(returns)
                    if returns is not None else None)
            if hint not in self.classes:
                continue
            existing = self.return_types.get(info.name)
            if existing is not None and existing != hint:
                conflicting.add(info.name)
            self.return_types[info.name] = hint
        for name in conflicting:
            del self.return_types[name]

    def _infer_attr_types(self) -> None:
        """Attribute type hints: ``x: Class`` class-body annotations plus
        ``self.x = <typed expr>`` assignments (a constructed class, an
        annotated parameter, a ``-> Class`` factory call, ...).

        Two rounds so attribute chains settle — ``self.machine =
        build_machine(...)`` in one class feeds ``machine.executor`` typing
        in another.
        """
        for round_ in range(2):
            for cls in self.classes.values():
                for stmt in cls.node.body:
                    if (isinstance(stmt, ast.AnnAssign)
                            and isinstance(stmt.target, ast.Name)):
                        hint = self._annotation_class(stmt.annotation)
                        if hint is not None:
                            self.attr_types[(cls.name, stmt.target.id)] = hint
                for method in cls.methods.values():
                    types = self._local_types(method)
                    for node in ast.walk(method.node):
                        if isinstance(node, ast.AnnAssign):
                            # ``self.tracer: Optional[PeiTracer] = None``
                            target = node.target
                            hint = self._annotation_class(node.annotation)
                            if (hint is not None
                                    and isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"):
                                self.attr_types[(cls.name, target.attr)] = hint
                            continue
                        if not isinstance(node, ast.Assign):
                            continue
                        value_cls = self._expr_type(method, node.value, types)
                        if value_cls is None:
                            continue
                        for target in node.targets:
                            if (isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"):
                                self.attr_types[(cls.name, target.attr)] = \
                                    value_cls

    def _annotation_class(self, node: Optional[ast.AST]) -> Optional[str]:
        """Project class named by an annotation; unwraps ``Optional[X]``.

        Container annotations (``List[X]``, ``Dict[..]``) yield None — the
        annotated value is the container, not the element.
        """
        if node is None:
            return None
        if isinstance(node, ast.Subscript):
            if terminal_identifier(node.value) == "Optional":
                return self._annotation_class(node.slice)
            return None
        hint = terminal_identifier(node)
        return hint if hint in self.classes else None

    def _constructed_class(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            name = terminal_identifier(node.func)
            if name in self.classes:
                return name
            if name is not None:              # factory with -> Class annotation
                return self.return_types.get(name)
        return None

    # ------------------------------------------------------------------
    # Local type environments
    # ------------------------------------------------------------------

    def _local_types(self, info: FunctionInfo) -> Dict[str, str]:
        """Local name -> project class, from annotations and assignments.

        Two passes over the assignment list so one-step chains settle
        (``machine = self.machine`` then ``executor = machine.executor``).
        """
        types: Dict[str, str] = {}
        args = info.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            hint = self._annotation_class(arg.annotation)
            if hint is not None:
                types[arg.arg] = hint
        assigns = [n for n in ast.walk(info.node)
                   if isinstance(n, (ast.Assign, ast.AnnAssign))]
        for _ in range(2):
            for node in assigns:
                if isinstance(node, ast.AnnAssign):
                    hint = self._annotation_class(node.annotation)
                    if (isinstance(node.target, ast.Name)
                            and hint is not None):
                        types[node.target.id] = hint
                    continue
                inferred = self._expr_type(info, node.value, types)
                if inferred is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types[target.id] = inferred
        return types

    def _expr_type(self, info: FunctionInfo, node: ast.AST,
                   types: Dict[str, str]) -> Optional[str]:
        """Project class an expression evaluates to, or None."""
        if isinstance(node, ast.Name):
            if node.id == "self" and info.cls:
                return info.cls
            return types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._expr_type(info, node.value, types)
            if base is not None:
                return self._attr_type_on(base, node.attr)
            return None
        if isinstance(node, ast.Call):
            return self._constructed_class(node)
        if isinstance(node, ast.IfExp):
            # ``x = (Telemetry(...) if enabled else None)``: either branch
            # may flow; take whichever resolves (over-approximate).
            return (self._expr_type(info, node.body, types)
                    or self._expr_type(info, node.orelse, types))
        return None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------

    def _resolve_calls(self, info: FunctionInfo) -> Set[str]:
        targets: Set[str] = set()
        types = self._local_types(info)
        aliases = self._local_aliases(info, types)
        for call in self._own_calls(info):
            targets.update(self._targets_of(info, call.func, aliases, types))
        return targets

    @staticmethod
    def _own_calls(info: FunctionInfo) -> Iterator[ast.Call]:
        """Call nodes of this function, nested defs excluded (they have
        their own entry in the graph; their bodies run when *called*)."""
        nested = {child for child in ast.walk(info.node)
                  if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                  and child is not info.node}
        skip: Set[int] = set()
        for fn in nested:
            for sub in ast.walk(fn):
                skip.add(id(sub))
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) and id(node) not in skip:
                yield node

    def _local_aliases(self, info: FunctionInfo,
                       types: Dict[str, str]) -> Dict[str, Set[str]]:
        """Local name -> bound-callable targets (qualnames or bare names).

        Tracks the engine's locals-bound dispatch idiom
        (``execute = executor._execute``, possibly through a conditional
        expression) and references to nested ``def``s.  When the receiver's
        class is known the method resolves to an exact qualname; otherwise
        the bare attribute name is kept for the by-name fallback.
        """
        aliases: Dict[str, Set[str]] = {}
        for child in info.node.body:
            for node in ast.walk(child):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{info.qualname}.{node.name}"
                    if qual in self.functions:
                        aliases.setdefault(node.name, set()).add(qual)
                if not isinstance(node, ast.Assign):
                    continue
                names = self._bound_targets(info, node.value, types)
                if not names:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.setdefault(target.id, set()).update(names)
                    elif isinstance(target, ast.Tuple):
                        # ``a, b = x.f, x.g``: any name may bind any value —
                        # over-approximate rather than track positions.
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                aliases.setdefault(elt.id, set()).update(names)
        return aliases

    def _bound_targets(self, info: FunctionInfo, value: ast.AST,
                       types: Dict[str, str]) -> Set[str]:
        """Targets a bound-callable assignment may refer to.

        Exact qualnames when the receiver type resolves; bare method names
        (for the by-name fallback) when it does not.
        """
        if isinstance(value, ast.Attribute):
            recv = self._expr_type(info, value.value, types)
            if recv is not None:
                resolved = self._method_on(recv, value.attr)
                if resolved is not None:
                    return {resolved.qualname}
            return {value.attr}
        if isinstance(value, ast.IfExp):
            return (self._bound_targets(info, value.body, types)
                    | self._bound_targets(info, value.orelse, types))
        if isinstance(value, ast.Tuple):
            names: Set[str] = set()
            for elt in value.elts:
                names.update(self._bound_targets(info, elt, types))
            return names
        return set()

    def _targets_of(self, info: FunctionInfo, func: ast.AST,
                    aliases: Dict[str, Set[str]],
                    types: Dict[str, str]) -> Set[str]:
        if isinstance(func, ast.Name):
            return self._targets_of_name(info, func.id, aliases)
        if isinstance(func, ast.Attribute):
            return self._targets_of_attr(info, func, types)
        return set()

    def _targets_of_name(self, info: FunctionInfo, name: str,
                         aliases: Dict[str, Set[str]]) -> Set[str]:
        if name in aliases:
            targets: Set[str] = set()
            for bound in aliases[name]:
                if bound in self.functions:   # nested def, already qualified
                    targets.add(bound)
                else:                          # bound method: by-name fallback
                    targets.update(self._by_name(bound))
            return targets
        if name in self.class_defs:            # Class(...) -> Class.__init__
            defs = self.class_defs[name]
            # Colliding class names resolve to the caller's own module's
            # definition when it has one (the cross-module case keeps all).
            same = [c for c in defs if c.module is info.module]
            inits = {c.methods["__init__"].qualname for c in (same or defs)
                     if "__init__" in c.methods}
            return inits
        # Same-module function first, else any module-level def of that name
        # (cross-module import; the tree has no name collisions that matter).
        same = [f.qualname for f in self.by_name.get(name, ())
                if f.module is info.module and f.cls is None]
        if same:
            return set(same)
        return {f.qualname for f in self.by_name.get(name, ())
                if f.cls is None and "." not in f.qualname.split(":")[1]}

    def _targets_of_attr(self, info: FunctionInfo, func: ast.Attribute,
                         types: Dict[str, str]) -> Set[str]:
        method = func.attr
        receiver = func.value
        # self.m(...): the enclosing class's own method (or inherited name).
        if isinstance(receiver, ast.Name) and receiver.id == "self" and info.cls:
            resolved = self._method_on(info.cls, method)
            if resolved is not None:
                return {resolved.qualname}
        # Typed receiver: any expression whose class the local type
        # environment resolves (``machine.executor.fence(...)``, a typed
        # parameter, a constructed local, ...).
        recv_type = self._expr_type(info, receiver, types)
        if recv_type is not None:
            resolved = self._method_on(recv_type, method)
            if resolved is not None:
                return {resolved.qualname}
        if method in _FALLBACK_BLOCKLIST:
            return set()
        # Untyped attribute dispatch can only land on a *method* — nested
        # closure defs that happen to share the name are not reachable
        # through an object attribute here and would wire unrelated
        # subsystems together.
        return {f.qualname for f in self.by_name.get(method, ())
                if f.cls is not None}

    def _attr_type_on(self, cls: str, attr: str) -> Optional[str]:
        seen: Set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            hit = self.attr_types.get((current, attr))
            if hit is not None:
                return hit
            queue.extend(self.classes[current].bases
                         if current in self.classes else ())
        return None

    def _method_on(self, cls: str, method: str) -> Optional[FunctionInfo]:
        """``cls``'s method, following base-class names (MRO-ish, by name)."""
        seen: Set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            hit = self.classes[current].methods.get(method)
            if hit is not None:
                return hit
            queue.extend(self.classes[current].bases)
        return None

    def _by_name(self, name: str) -> Set[str]:
        return {f.qualname for f in self.by_name.get(name, ())}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def local_types(self, info: FunctionInfo) -> Dict[str, str]:
        """Public view of the per-function local-type map (name -> class).

        Downstream passes (simrace's payload analysis) resolve what class a
        payload element is before deciding whether it may cross a process
        boundary; they share the flow model's inference rather than
        re-deriving it.
        """
        return self._local_types(info)

    def expr_type(self, info: FunctionInfo, node: ast.AST,
                  types: Dict[str, str]) -> Optional[str]:
        """Public view of expression-type resolution (see ``local_types``)."""
        return self._expr_type(info, node, types)

    def find_function(self, qual_suffix: str) -> Optional[FunctionInfo]:
        """The function whose qualname ends with ``qual_suffix``
        (e.g. ``system.py:System._run_trace``)."""
        for qualname, info in self.functions.items():
            if qualname.endswith(qual_suffix):
                return info
        return None

    def reachable_from(self, roots: Sequence[str]) -> Set[str]:
        """Transitive closure of the call graph from ``roots`` (qualnames)."""
        seen: Set[str] = set()
        queue = [r for r in roots if r in self.functions]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.edges.get(current, ()))
        return seen

    def calls_in_while_loops(self, info: FunctionInfo) -> List[ast.Call]:
        """Call nodes lexically inside any ``while`` loop of ``info``.

        This is the hot-root extractor: the engine's inner loops are
        ``while heap:`` / ``while True:``, and once-per-run work
        (``for core in cores: core.drain()``, ``_collect``) sits outside
        every ``while`` and is deliberately not included.
        """
        calls: List[ast.Call] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.While):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        calls.append(sub)
        return calls

    def loop_call_targets(self, info: FunctionInfo) -> Set[str]:
        """Resolved targets of the calls inside ``info``'s while loops."""
        types = self._local_types(info)
        aliases = self._local_aliases(info, types)
        targets: Set[str] = set()
        for call in self.calls_in_while_loops(info):
            targets.update(self._targets_of(info, call.func, aliases, types))
        return targets


def dataclass_fields(cls_node: ast.ClassDef) -> List[str]:
    """Field names of a dataclass body (annotated, non-ClassVar)."""
    fields: List[str] = []
    for stmt in cls_node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        annotation = dotted_name(stmt.annotation) or ""
        if "ClassVar" in annotation:
            continue
        fields.append(stmt.target.id)
    return fields
