"""Schema checks for telemetry artifacts (pure stdlib, like simlint).

Validates the three files a :class:`~repro.obs.telemetry.Telemetry` bundle
writes — the interval time-series JSONL, the Chrome Trace Event JSON, and
the ``.run.json`` summary — so CI can assert that a telemetry-enabled
benchmark produced well-formed, internally consistent artifacts (monotonic
counters, ordered quantiles, loadable trace events) without depending on
the simulator at all.

Used by ``python -m repro.analysis telemetry <dir-or-files...>``.
"""

import json
import math
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "check_interval_jsonl",
    "check_chrome_trace",
    "check_run_bundle",
    "check_bundle_dir",
]

#: Counters that must never decrease across interval records.
_MONOTONIC = (
    "pei.issued",
    "pei.host_executed",
    "pei.mem_executed",
    "dram.reads",
    "dram.writes",
    "offchip.request_bytes",
    "offchip.response_bytes",
)

_VALID_PHASES = {"B", "E", "X", "I", "i", "M", "C", "b", "e", "n",
                 "s", "t", "f", "P", "N", "O", "D"}


def _is_number(value) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value))


def check_interval_jsonl(path) -> List[str]:
    """Problems found in an ``.intervals.jsonl`` time series (empty = ok)."""
    path = Path(path)
    problems: List[str] = []
    records: List[Dict] = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    if not lines:
        return [f"{path}: empty interval series (expected >= 1 record)"]
    for lineno, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{lineno}: invalid JSON: {exc.msg}")
            continue
        if not isinstance(record, dict):
            problems.append(f"{path}:{lineno}: record is not an object")
            continue
        records.append(record)
        for key in ("seq", "t", "final", "stats", "delta", "derived"):
            if key not in record:
                problems.append(f"{path}:{lineno}: missing key {key!r}")
        stats = record.get("stats")
        if isinstance(stats, dict):
            for name, value in stats.items():
                if not isinstance(name, str) or not _is_number(value):
                    problems.append(
                        f"{path}:{lineno}: stats[{name!r}] is not a finite "
                        f"number")
                    break
        elif "stats" in record:
            problems.append(f"{path}:{lineno}: stats is not an object")
    if problems:
        return problems
    # Cross-record invariants.
    for i, record in enumerate(records):
        if record.get("seq") != i:
            problems.append(f"{path}: record {i} has seq {record.get('seq')} "
                            f"(expected {i})")
            break
    times = [r.get("t") for r in records]
    if any(not _is_number(t) for t in times):
        problems.append(f"{path}: non-numeric sample time")
    elif any(b < a for a, b in zip(times, times[1:])):
        problems.append(f"{path}: sample times are not non-decreasing")
    finals = [r for r in records if r.get("final")]
    if len(finals) != 1 or not records[-1].get("final"):
        problems.append(f"{path}: expected exactly one final record, at the "
                        f"end (found {len(finals)})")
    for name in _MONOTONIC:
        values = [r["stats"].get(name, 0.0) for r in records
                  if isinstance(r.get("stats"), dict)]
        if any(b < a for a, b in zip(values, values[1:])):
            problems.append(f"{path}: counter {name!r} decreases across "
                            f"samples")
    return problems


def check_chrome_trace(path) -> List[str]:
    """Problems found in a Chrome Trace Event JSON file (empty = ok)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON: {exc.msg}"]
    problems: List[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return [f"{path}: not a Chrome trace object (missing traceEvents)"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return [f"{path}: traceEvents is not a list"]
    slices = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"{path}: event {i} is not an object")
            break
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{path}: event {i} has invalid phase {phase!r}")
            break
        if "name" not in event or "pid" not in event:
            problems.append(f"{path}: event {i} missing name/pid")
            break
        if phase == "X":
            slices += 1
            if not _is_number(event.get("ts")) or not _is_number(event.get("dur")):
                problems.append(f"{path}: slice {i} has non-numeric ts/dur")
                break
            if event["dur"] < 0 or event["ts"] < 0:
                problems.append(f"{path}: slice {i} has negative ts/dur")
                break
            if not isinstance(event.get("tid"), int):
                problems.append(f"{path}: slice {i} has non-integer tid")
                break
    if not problems and slices == 0:
        problems.append(f"{path}: trace contains no complete ('X') slices")
    return problems


def check_run_bundle(path) -> List[str]:
    """Problems found in a ``.run.json`` telemetry bundle (empty = ok)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON: {exc.msg}"]
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"{path}: bundle is not an object"]
    telemetry = payload.get("telemetry")
    if not isinstance(telemetry, dict):
        return [f"{path}: missing telemetry section"]
    metrics = telemetry.get("metrics", {})
    histograms = {name: entry for name, entry in metrics.items()
                  if isinstance(entry, dict) and entry.get("type") == "histogram"}
    for name, entry in histograms.items():
        quantiles = [entry.get("p50"), entry.get("p95"), entry.get("p99")]
        if any(not _is_number(q) for q in quantiles):
            problems.append(f"{path}: histogram {name!r} missing p50/p95/p99")
        elif not quantiles[0] <= quantiles[1] <= quantiles[2]:
            problems.append(f"{path}: histogram {name!r} quantiles are not "
                            f"ordered (p50 <= p95 <= p99)")
    result = payload.get("result")
    if result is not None and not isinstance(result, dict):
        problems.append(f"{path}: result is not an object")
    return problems


def check_bundle_dir(directory) -> Dict[str, List[str]]:
    """Validate every telemetry artifact under ``directory``.

    Returns ``{filename: problems}`` for all files checked; an empty
    problem list means the file passed.  Raises ``FileNotFoundError`` if no
    telemetry artifacts are present at all (a smoke job that produced
    nothing should fail loudly, not vacuously pass).
    """
    directory = Path(directory)
    checks = {
        "*.intervals.jsonl": check_interval_jsonl,
        "*.trace.json": check_chrome_trace,
        "*.run.json": check_run_bundle,
    }
    results: Dict[str, List[str]] = {}
    found = 0
    for pattern, check in checks.items():
        for file in sorted(directory.glob(pattern)):
            found += 1
            results[str(file)] = check(file)
    if not found:
        raise FileNotFoundError(
            f"no telemetry artifacts (*.intervals.jsonl / *.trace.json / "
            f"*.run.json) under {directory}")
    return results


def format_problems(results: Dict[str, List[str]],
                    label: Optional[str] = None) -> str:
    total = sum(len(problems) for problems in results.values())
    lines = []
    for file in sorted(results):
        status = "ok" if not results[file] else f"{len(results[file])} problem(s)"
        lines.append(f"telemetry-check {file}: {status}")
        lines.extend(f"  {p}" for p in results[file])
    verdict = "clean" if total == 0 else f"{total} problem(s)"
    lines.append(f"telemetry-check ({label or 'all'}): {len(results)} "
                 f"file(s): {verdict}")
    return "\n".join(lines)
