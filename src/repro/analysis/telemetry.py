"""Schema checks for telemetry artifacts (pure stdlib, like simlint).

Validates the three files a :class:`~repro.obs.telemetry.Telemetry` bundle
writes — the interval time-series JSONL, the Chrome Trace Event JSON, and
the ``.run.json`` summary — plus the frontier run-ledger event stream
(``EVENTS_*.jsonl`` / ``*.events.jsonl``, schema
:data:`repro.obs.events.EVENT_SCHEMA`), so CI can assert that a
telemetry-enabled benchmark produced well-formed, internally consistent
artifacts (monotonic counters, ordered quantiles, loadable trace events,
contiguous event sequencing) without depending on the simulator at all.

Used by ``python -m repro.analysis telemetry <dir-or-files...>``.
"""

import json
import math
from pathlib import Path
from typing import Dict, List, Optional

# The schema table lives with the event producers so the checker can never
# drift from them; repro.obs.events is stdlib-only, keeping this module's
# no-simulator guarantee intact.
from repro.obs.events import ENVELOPE_FIELDS, EVENT_FIELDS, EVENT_SCHEMA

__all__ = [
    "check_interval_jsonl",
    "check_chrome_trace",
    "check_run_bundle",
    "check_events_jsonl",
    "check_bundle_dir",
]

#: Counters that must never decrease across interval records.
_MONOTONIC = (
    "pei.issued",
    "pei.host_executed",
    "pei.mem_executed",
    "dram.reads",
    "dram.writes",
    "offchip.request_bytes",
    "offchip.response_bytes",
)

_VALID_PHASES = {"B", "E", "X", "I", "i", "M", "C", "b", "e", "n",
                 "s", "t", "f", "P", "N", "O", "D"}


def _is_number(value) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value))


def check_interval_jsonl(path) -> List[str]:
    """Problems found in an ``.intervals.jsonl`` time series (empty = ok)."""
    path = Path(path)
    problems: List[str] = []
    records: List[Dict] = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    if not lines:
        return [f"{path}: empty interval series (expected >= 1 record)"]
    for lineno, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{lineno}: invalid JSON: {exc.msg}")
            continue
        if not isinstance(record, dict):
            problems.append(f"{path}:{lineno}: record is not an object")
            continue
        records.append(record)
        for key in ("seq", "t", "final", "stats", "delta", "derived"):
            if key not in record:
                problems.append(f"{path}:{lineno}: missing key {key!r}")
        stats = record.get("stats")
        if isinstance(stats, dict):
            for name, value in stats.items():
                if not isinstance(name, str) or not _is_number(value):
                    problems.append(
                        f"{path}:{lineno}: stats[{name!r}] is not a finite "
                        f"number")
                    break
        elif "stats" in record:
            problems.append(f"{path}:{lineno}: stats is not an object")
    if problems:
        return problems
    # Cross-record invariants.
    for i, record in enumerate(records):
        if record.get("seq") != i:
            problems.append(f"{path}: record {i} has seq {record.get('seq')} "
                            f"(expected {i})")
            break
    times = [r.get("t") for r in records]
    if any(not _is_number(t) for t in times):
        problems.append(f"{path}: non-numeric sample time")
    elif any(b < a for a, b in zip(times, times[1:])):
        problems.append(f"{path}: sample times are not non-decreasing")
    finals = [r for r in records if r.get("final")]
    if len(finals) != 1 or not records[-1].get("final"):
        problems.append(f"{path}: expected exactly one final record, at the "
                        f"end (found {len(finals)})")
    for name in _MONOTONIC:
        values = [r["stats"].get(name, 0.0) for r in records
                  if isinstance(r.get("stats"), dict)]
        if any(b < a for a, b in zip(values, values[1:])):
            problems.append(f"{path}: counter {name!r} decreases across "
                            f"samples")
    return problems


def check_chrome_trace(path) -> List[str]:
    """Problems found in a Chrome Trace Event JSON file (empty = ok)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON: {exc.msg}"]
    problems: List[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return [f"{path}: not a Chrome trace object (missing traceEvents)"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return [f"{path}: traceEvents is not a list"]
    slices = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"{path}: event {i} is not an object")
            break
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{path}: event {i} has invalid phase {phase!r}")
            break
        if "name" not in event or "pid" not in event:
            problems.append(f"{path}: event {i} missing name/pid")
            break
        if phase == "X":
            slices += 1
            if not _is_number(event.get("ts")) or not _is_number(event.get("dur")):
                problems.append(f"{path}: slice {i} has non-numeric ts/dur")
                break
            if event["dur"] < 0 or event["ts"] < 0:
                problems.append(f"{path}: slice {i} has negative ts/dur")
                break
            if not isinstance(event.get("tid"), int):
                problems.append(f"{path}: slice {i} has non-integer tid")
                break
    if not problems and slices == 0:
        problems.append(f"{path}: trace contains no complete ('X') slices")
    return problems


def check_run_bundle(path) -> List[str]:
    """Problems found in a ``.run.json`` telemetry bundle (empty = ok)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON: {exc.msg}"]
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"{path}: bundle is not an object"]
    telemetry = payload.get("telemetry")
    if not isinstance(telemetry, dict):
        return [f"{path}: missing telemetry section"]
    metrics = telemetry.get("metrics", {})
    histograms = {name: entry for name, entry in metrics.items()
                  if isinstance(entry, dict) and entry.get("type") == "histogram"}
    for name, entry in histograms.items():
        quantiles = [entry.get("p50"), entry.get("p95"), entry.get("p99")]
        if any(not _is_number(q) for q in quantiles):
            problems.append(f"{path}: histogram {name!r} missing p50/p95/p99")
        elif not quantiles[0] <= quantiles[1] <= quantiles[2]:
            problems.append(f"{path}: histogram {name!r} quantiles are not "
                            f"ordered (p50 <= p95 <= p99)")
    result = payload.get("result")
    if result is not None and not isinstance(result, dict):
        problems.append(f"{path}: result is not an object")
    return problems


def check_events_jsonl(path) -> List[str]:
    """Problems found in a run-ledger event stream (empty = ok).

    Checks line-level JSON validity (a torn line anywhere is a problem —
    the lenient loader in :mod:`repro.obs.events` is for consumers, not for
    CI), the ``ledger_start`` header and its schema version, contiguous
    ``seq``, non-decreasing ``t``, known event kinds, the required fields
    of :data:`~repro.obs.events.EVENT_FIELDS`, and finite non-negative
    simulate durations.
    """
    path = Path(path)
    problems: List[str] = []
    events: List[Dict] = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    if not lines:
        return [f"{path}: empty event stream (expected a ledger_start "
                f"header)"]
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{lineno}: torn or invalid JSONL line: "
                            f"{exc.msg}")
            continue
        if not isinstance(event, dict):
            problems.append(f"{path}:{lineno}: event is not an object")
            continue
        events.append(event)
        for key in ENVELOPE_FIELDS:
            if key not in event:
                problems.append(f"{path}:{lineno}: missing envelope field "
                                f"{key!r}")
        kind = event.get("kind")
        if not isinstance(kind, str):
            continue
        if kind not in EVENT_FIELDS:
            problems.append(f"{path}:{lineno}: unknown event kind {kind!r} "
                            f"(schema {EVENT_SCHEMA})")
            continue
        for field in EVENT_FIELDS[kind]:
            if field not in event:
                problems.append(f"{path}:{lineno}: {kind} event missing "
                                f"required field {field!r}")
        if kind == "simulate_end":
            dur = event.get("dur_s")
            if dur is not None and (not _is_number(dur) or dur < 0):
                problems.append(f"{path}:{lineno}: simulate_end dur_s must "
                                f"be a finite number >= 0, got {dur!r}")
    if not events:
        return problems or [f"{path}: no events decoded"]
    head = events[0]
    if head.get("kind") != "ledger_start":
        problems.append(f"{path}: first record is {head.get('kind')!r} "
                        f"(expected the ledger_start header)")
    elif head.get("schema") != EVENT_SCHEMA:
        problems.append(f"{path}: unknown ledger schema "
                        f"{head.get('schema')!r} (this checker knows "
                        f"{EVENT_SCHEMA})")
    for i, event in enumerate(events):
        if event.get("seq") != i:
            problems.append(f"{path}: record {i} has seq {event.get('seq')} "
                            f"(expected contiguous from 0)")
            break
    times = [e.get("t") for e in events]
    if any(not _is_number(t) for t in times):
        problems.append(f"{path}: non-numeric event time")
    elif any(b < a for a, b in zip(times, times[1:])):
        problems.append(f"{path}: event times are not non-decreasing")
    return problems


def check_bundle_dir(directory) -> Dict[str, List[str]]:
    """Validate every telemetry artifact under ``directory``.

    Returns ``{filename: problems}`` for all files checked; an empty
    problem list means the file passed.  Raises ``FileNotFoundError`` if no
    telemetry artifacts are present at all (a smoke job that produced
    nothing should fail loudly, not vacuously pass).
    """
    directory = Path(directory)
    checks = {
        "*.intervals.jsonl": check_interval_jsonl,
        "*.trace.json": check_chrome_trace,
        "*.run.json": check_run_bundle,
        "EVENTS_*.jsonl": check_events_jsonl,
        "*.events.jsonl": check_events_jsonl,
    }
    results: Dict[str, List[str]] = {}
    found = 0
    for pattern, check in checks.items():
        for file in sorted(directory.glob(pattern)):
            if str(file) in results:
                continue   # a file can match both event patterns
            found += 1
            results[str(file)] = check(file)
    if not found:
        raise FileNotFoundError(
            f"no telemetry artifacts (*.intervals.jsonl / *.trace.json / "
            f"*.run.json / *events*.jsonl) under {directory}")
    return results


def format_problems(results: Dict[str, List[str]],
                    label: Optional[str] = None) -> str:
    total = sum(len(problems) for problems in results.values())
    lines = []
    for file in sorted(results):
        status = "ok" if not results[file] else f"{len(results[file])} problem(s)"
        lines.append(f"telemetry-check {file}: {status}")
        lines.extend(f"  {p}" for p in results[file])
    verdict = "clean" if total == 0 else f"{total} problem(s)"
    lines.append(f"telemetry-check ({label or 'all'}): {len(results)} "
                 f"file(s): {verdict}")
    return "\n".join(lines)
