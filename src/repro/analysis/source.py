"""Shared source model for the static-analysis tools (simlint + simflow).

Both analyzers consume the same parsed view of the tree: a :class:`Module`
per file (source text, AST, waiver pragmas) collected into a
:class:`Project`.  This module owns that data model plus the two pieces of
machinery the tools must agree on exactly:

* **Waiver parsing** — ``# <tool>: ignore[CODE, ...] -- justification``
  pragmas extracted through :mod:`tokenize`, so pragma-shaped text inside
  strings and docstrings is never mistaken for a live waiver.  The tool
  name is a parameter: ``simlint`` and ``simflow`` pragmas are independent
  namespaces.
* **Waiver application** — a violation is suppressed when a justified
  pragma names its code and sits on the same *logical statement*.  A
  pragma matches not only the exact violation line but any line of the
  statement's header span (its decorators, a multi-line signature, or the
  continuation lines of a multi-line call), because rules anchor their
  report at the statement's first line while the human naturally writes
  the pragma next to the offending token.  Unjustified pragmas and pragmas
  that suppress nothing are themselves reported, so the tree can never
  silently accumulate unexplained or dead exemptions.
"""

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Module",
    "Project",
    "Violation",
    "Waiver",
    "apply_waivers",
    "collect_files",
    "dotted_name",
    "is_set_expr",
    "parse_project",
    "parse_waivers",
    "set_typed_locals",
    "statement_spans",
    "terminal_identifier",
]


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class Waiver:
    """An inline ``# <tool>: ignore[...]`` pragma."""

    line: int           # line the waiver applies to
    codes: Tuple[str, ...]
    justification: str  # text after the code list; empty = unjustified
    pragma_line: int    # line the comment physically sits on


@dataclass
class Module:
    """One parsed source file plus its waiver pragmas."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    waivers: List[Waiver] = field(default_factory=list)
    _spans: Optional[Dict[int, Tuple[int, int]]] = None

    def statement_span(self, line: int) -> Optional[Tuple[int, int]]:
        """The header span of the innermost statement containing ``line``."""
        if self._spans is None:
            self._spans = statement_spans(self.tree)
        return self._spans.get(line)


class Project:
    """All modules of one analysis invocation (rules may check across files)."""

    def __init__(self, modules: Sequence[Module]):
        self.modules = list(modules)

    def find(self, rel_suffix: str) -> Optional[Module]:
        for module in self.modules:
            if module.rel.endswith(rel_suffix):
                return module
        return None


# ----------------------------------------------------------------------
# Waiver parsing
# ----------------------------------------------------------------------

_WAIVER_RES: Dict[str, "re.Pattern"] = {}


def _waiver_re(tool: str) -> "re.Pattern":
    try:
        return _WAIVER_RES[tool]
    except KeyError:
        pattern = re.compile(
            r"#\s*" + re.escape(tool)
            + r":\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(?:(?:--|—|–|-|:)?\s*(\S.*))?$"
        )
        _WAIVER_RES[tool] = pattern
        return pattern


def _waiver_from_match(match: "re.Match", lineno: int, own_line: bool,
                       lines: Sequence[str]) -> Waiver:
    codes = tuple(c.strip().upper() for c in match.group(1).split(",") if c.strip())
    justification = (match.group(2) or "").strip()
    # A bare comment line waives the next *code* line — a justification
    # that wraps onto following comment lines still targets the statement.
    target = lineno
    if own_line:
        target = lineno + 1
        while target <= len(lines):
            stripped = lines[target - 1].strip()
            if stripped and not stripped.startswith("#"):
                break
            target += 1
    return Waiver(line=target, codes=codes,
                  justification=justification, pragma_line=lineno)


def parse_waivers(source: str, tool: str = "simlint") -> List[Waiver]:
    """Extract ``tool``'s waiver pragmas from real ``#`` comments only.

    Tokenizing (rather than scanning raw lines) keeps pragma *text inside
    strings and docstrings* from being mistaken for a live waiver, which
    matters because unused waivers are themselves a diagnostic.  Sources
    that fail to tokenize fall back to the raw line scan so a syntax error
    still gets best-effort waiver handling.
    """
    pattern = _waiver_re(tool)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return _parse_waivers_raw(source, pattern)
    waivers = []
    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = pattern.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        own_line = not token.line[: token.start[1]].strip()
        waivers.append(_waiver_from_match(match, lineno, own_line, lines))
    return waivers


def _parse_waivers_raw(source: str, pattern: "re.Pattern") -> List[Waiver]:
    """Line-scanning fallback for sources the tokenizer rejects."""
    waivers = []
    lines = source.splitlines()
    for lineno, line in enumerate(lines, start=1):
        match = pattern.search(line)
        if match is None:
            continue
        own_line = not line[: match.start()].strip()
        waivers.append(_waiver_from_match(match, lineno, own_line, lines))
    return waivers


# ----------------------------------------------------------------------
# Statement spans (the waiver-matching granularity)
# ----------------------------------------------------------------------


def statement_spans(tree: ast.Module) -> Dict[int, Tuple[int, int]]:
    """Map each source line to the header span of its innermost statement.

    A *header span* is the run of lines a statement's report line speaks
    for: a simple statement spans all its physical lines (a multi-line
    call's continuation lines belong to the statement reported at its
    first line), while a compound statement spans only its header — its
    decorators and signature for a ``def``, the test line(s) for an
    ``if``/``while`` — not its body, whose lines belong to the inner
    statements.  ``ast.walk`` yields parents before children, so inner
    statements overwrite the lines they share with an enclosing one.
    """
    spans: Dict[int, Tuple[int, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        decorators = getattr(node, "decorator_list", None)
        if decorators:
            start = min([start] + [d.lineno for d in decorators])
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            # Compound statement: the span covers the header only.
            end = max(start, body[0].lineno - 1)
        else:
            end = node.end_lineno if node.end_lineno is not None else node.lineno
        span = (start, end)
        for line in range(start, end + 1):
            spans[line] = span
    return spans


# ----------------------------------------------------------------------
# Project loading
# ----------------------------------------------------------------------


def collect_files(paths: Iterable[Path]) -> List[Tuple[Path, str]]:
    """(file, rel) pairs for every .py under the given roots."""
    out: List[Tuple[Path, str]] = []
    for root in paths:
        root = Path(root)
        if root.is_file():
            out.append((root, root.name))
        else:
            for file in sorted(root.rglob("*.py")):
                out.append((file, file.relative_to(root).as_posix()))
    return out


def parse_project(
    paths: Iterable[Path],
    tool: str = "simlint",
    syntax_error_code: str = "SIM999",
    overrides: Optional[Dict[str, str]] = None,
) -> Tuple[Project, List[Violation]]:
    """Parse every file under ``paths`` into a Project.

    ``overrides`` maps a relative-path suffix to replacement source text —
    the in-memory mutation hook the seeded-defect self-validation uses to
    analyze a patched tree without copying files.
    """
    modules = []
    errors = []
    for file, rel in collect_files([Path(p) for p in paths]):
        source = file.read_text(encoding="utf-8")
        if overrides:
            for suffix, text in overrides.items():
                if rel.endswith(suffix):
                    source = text
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            errors.append(Violation(
                code=syntax_error_code, message=f"syntax error: {exc.msg}",
                path=str(file), line=exc.lineno or 1, col=exc.offset or 0))
            continue
        modules.append(Module(path=file, rel=rel, source=source, tree=tree,
                              waivers=parse_waivers(source, tool)))
    return Project(modules), errors


# ----------------------------------------------------------------------
# Waiver application
# ----------------------------------------------------------------------


def _waiver_matches(module: Module, waiver: Waiver, violation: Violation) -> bool:
    """Does ``waiver`` target ``violation``'s line?

    Exact-line matches always count.  Otherwise the pragma still applies
    when its target line and the violation line belong to the same logical
    statement — a pragma on a decorator suppresses the finding reported on
    the ``def`` line, and a pragma on any line of a multi-line call
    suppresses the finding reported at the call's first line.
    """
    if violation.line == waiver.line:
        return True
    span = module.statement_span(waiver.line)
    return span is not None and span == module.statement_span(violation.line)


def apply_waivers(
    project: Project,
    raw: Sequence[Violation],
    active_codes: Set[str],
    unjustified_code: str,
    stale_code: str,
) -> List[Violation]:
    """Suppress waived violations; report waiver-hygiene problems.

    A violation is dropped when a *justified* pragma names its code and
    matches its statement.  An unjustified pragma is reported under
    ``unjustified_code`` and suppresses nothing; a justified pragma that
    matched no violation is reported under ``stale_code`` — but only when
    every code it names was actually checked (``active_codes``), since a
    selective run says nothing about the other rules' waivers.  The result
    is sorted by location.
    """
    modules_by_path: Dict[str, Module] = {str(m.path): m for m in project.modules}
    # A waiver is "used" if any raw violation matched its line and codes,
    # justified or not — an unjustified match already reports its own
    # hygiene code and should not also read as stale.
    used: Set[int] = set()
    kept: List[Violation] = []
    for violation in raw:
        module = modules_by_path.get(violation.path)
        waived = False
        if module is not None:
            for waiver in module.waivers:
                if (violation.code in waiver.codes
                        and _waiver_matches(module, waiver, violation)):
                    used.add(id(waiver))
                    if waiver.justification:
                        waived = True
                        break
        if not waived:
            kept.append(violation)

    for module in project.modules:
        for waiver in module.waivers:
            if not waiver.justification:
                kept.append(Violation(
                    code=unjustified_code,
                    message=("waiver without justification — write "
                             "`# <tool>: ignore[CODE] -- <reason>`"),
                    path=str(module.path),
                    line=waiver.pragma_line))
            elif (id(waiver) not in used
                    and set(waiver.codes) <= active_codes):
                codes = ", ".join(waiver.codes)
                kept.append(Violation(
                    code=stale_code,
                    message=(f"waiver for {codes} suppresses nothing — "
                             f"delete the stale pragma"),
                    path=str(module.path),
                    line=waiver.pragma_line))
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return kept


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Return ``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_set_expr(node: ast.AST) -> bool:
    """Is ``node`` an expression that evaluates to a ``set``?

    Covers set displays/comprehensions, ``set()``/``frozenset()``
    constructor calls, and binary operations (``|``, ``&``, ``-``, ``^``)
    where either operand is itself a set expression — the shape of
    ``set(a) | set(b)`` unions whose iteration order is hash-seed-dependent.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and \
            terminal_identifier(node.func) in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp):
        return is_set_expr(node.left) or is_set_expr(node.right)
    return False


def set_typed_locals(func: ast.AST) -> Set[str]:
    """Local names bound to set expressions anywhere in ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif (isinstance(node, ast.AnnAssign) and node.value is not None
                and is_set_expr(node.value)
                and isinstance(node.target, ast.Name)):
            names.add(node.target.id)
    return names
