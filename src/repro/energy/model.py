"""Energy model: multiplies event counts by per-event energies.

Produces the Figure 12 breakdown — on-chip caches, DRAM, off-chip links,
PCUs, and the PMU structures — from the statistics a run accumulates.
"""

from dataclasses import dataclass, fields
from typing import Optional

from repro.energy.params import EnergyParams
from repro.sim.stats import Stats


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per memory-hierarchy component, in picojoules."""

    caches_pj: float
    dram_pj: float
    offchip_pj: float
    onchip_network_pj: float
    host_pcu_pj: float
    mem_pcu_pj: float
    pmu_pj: float

    @property
    def total_pj(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))

    @property
    def hmc_pj(self) -> float:
        """Energy spent inside the cubes (DRAM + memory-side PCUs).

        The paper reports memory-side PCUs contribute only ~1.4% of HMC
        energy (Section 7.7); this property is what that ratio is taken
        against.
        """
        return self.dram_pj + self.mem_pcu_pj

    @property
    def mem_pcu_fraction_of_hmc(self) -> float:
        hmc = self.hmc_pj
        return self.mem_pcu_pj / hmc if hmc > 0 else 0.0

    def to_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["total_pj"] = self.total_pj
        return out


class EnergyModel:
    """Computes an EnergyBreakdown from a run's statistics."""

    def __init__(self, params: Optional[EnergyParams] = None):
        self.params = params if params is not None else EnergyParams()

    def compute(self, stats: Stats) -> EnergyBreakdown:
        p = self.params
        caches = (
            stats["l1.accesses"] * p.l1_access_pj
            + stats["l2.accesses"] * p.l2_access_pj
            + stats["l3.accesses"] * p.l3_access_pj
        )
        dram_accesses = (
            stats["dram.reads"]
            + stats["dram.writes"]
            + stats["dram.pim_reads"]
            + stats["dram.pim_writes"]
        )
        dram = dram_accesses * p.dram_access_pj + stats["tsv.bytes"] * p.tsv_per_byte_pj
        offchip = (
            stats["offchip.request_bytes"] + stats["offchip.response_bytes"]
        ) * p.offchip_per_byte_pj
        onchip = stats["xbar.bytes"] * p.xbar_per_byte_pj
        host_pcu = stats["pei.host_executed"] * p.host_pcu_op_pj
        mem_pcu = stats["pei.mem_executed"] * p.mem_pcu_op_pj
        pmu = (
            stats["pim_directory.accesses"] * p.pim_directory_access_pj
            + stats["locality_monitor.accesses"] * p.locality_monitor_access_pj
        )
        return EnergyBreakdown(
            caches_pj=caches,
            dram_pj=dram,
            offchip_pj=offchip,
            onchip_network_pj=onchip,
            host_pcu_pj=host_pcu,
            mem_pcu_pj=mem_pcu,
            pmu_pj=pmu,
        )
