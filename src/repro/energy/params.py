"""Per-event energy parameters.

The paper modelled energy with CACTI 6.5 (caches, PMU structures),
CACTI-3DD (3D-stacked DRAM), McPAT (DRAM controllers), a published HMC link
model, and RTL synthesis for the PCUs.  None of those tools are available
offline, so we substitute a fixed per-event parameter table with values in
the ranges those tools report for the paper's technology assumptions.
Figure 12 compares *relative* energy of configurations, which depends on
event counts, not on the absolute picojoule scale.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParams:
    """Energy per event, in picojoules (per byte where noted)."""

    l1_access_pj: float = 5.0
    l2_access_pj: float = 15.0
    l3_access_pj: float = 40.0
    # One 64 B access inside the cube, incl. amortized activation: HMC-class
    # stacks run near ~4 pJ/bit (CACTI-3DD territory), i.e. ~2 nJ per block.
    dram_access_pj: float = 2000.0
    tsv_per_byte_pj: float = 1.0
    # Off-chip SerDes + channel: ~5 pJ/bit per direction -> 40 pJ/byte.
    offchip_per_byte_pj: float = 40.0
    xbar_per_byte_pj: float = 2.0
    # Synthesized PCU datapath + operand buffer per operation.
    host_pcu_op_pj: float = 60.0
    mem_pcu_op_pj: float = 50.0
    pim_directory_access_pj: float = 2.0
    locality_monitor_access_pj: float = 3.0
