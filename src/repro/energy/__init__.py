"""Memory-hierarchy energy accounting (Figure 12)."""

from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.params import EnergyParams

__all__ = ["EnergyBreakdown", "EnergyModel", "EnergyParams"]
