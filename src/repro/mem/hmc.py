"""The full HMC-based main-memory system.

Exposes the two primitives the cache hierarchy needs (block read, posted
block write) and the vault-level access points the memory-side PEI executor
composes.  Off-chip traffic accounting follows the paper's packet cost model:
a 64-byte block read is a 16-byte request plus an 80-byte response; a block
write is an 80-byte posted request.
"""

from typing import List

from repro.mem.address_map import AddressMap
from repro.mem.dram import DramTimings
from repro.mem.link import OffChipChannel
from repro.mem.vault import Vault
from repro.obs.hooks import NULL_OBS
from repro.sim.stat_keys import (
    SLOT_DRAM_PIM_READS,
    SLOT_DRAM_PIM_WRITES,
    SLOT_DRAM_READS,
    SLOT_DRAM_WRITES,
    SLOT_OFFCHIP_PIM_REQUESTS,
    SLOT_OFFCHIP_PIM_RESPONSES,
    SLOT_OFFCHIP_READ_PACKETS,
    SLOT_OFFCHIP_WRITE_PACKETS,
)
from repro.sim.stats import Stats


class HmcSystem:
    """8 HMCs x 16 vaults of 3D-stacked DRAM behind a shared off-chip chain."""

    def __init__(
        self,
        address_map: AddressMap,
        timings: DramTimings,
        channel: OffChipChannel,
        tsv_bytes_per_cycle: float,
        stats: Stats,
        controller_latency: float = 8.0,
    ):
        self.address_map = address_map
        self.channel = channel
        self.stats = stats
        self._slots = stats.slots  # batched counter fast path
        # Address-map geometry, flattened for the inlined locate()
        # arithmetic below (one decomposition per DRAM access).
        self._block_bits = address_map._block_bits
        self._vault_mask = address_map.total_vaults - 1
        self._vault_bits = address_map._vault_bits
        self._bank_mask = address_map.banks_per_vault - 1
        self._bank_bits = address_map._bank_bits
        self._blocks_per_row = address_map._blocks_per_row
        self._vaults_per_hmc = address_map.vaults_per_hmc
        # Telemetry sink (null object unless a Telemetry is attached).
        self.obs = NULL_OBS
        self.vaults: List[Vault] = [
            Vault(i, address_map.banks_per_vault, timings, tsv_bytes_per_cycle,
                  controller_latency)
            for i in range(address_map.total_vaults)
        ]

    def vault_for(self, addr: int) -> Vault:
        """Return the vault that owns the block containing ``addr``."""
        return self.vaults[self.address_map.vault_of(addr)]

    # ------------------------------------------------------------------
    # Normal (cache-hierarchy-initiated) accesses
    # ------------------------------------------------------------------

    def read_block(self, arrival: float, addr: int) -> float:
        """Fetch one cache block; return the time it reaches the host.

        Request: header only (16 B).  Response: header + 64 B of data.
        """
        # AddressMap.locate, inlined (hot path: every LLC miss lands here).
        block = addr >> self._block_bits
        vault = block & self._vault_mask
        rest = block >> self._vault_bits
        hop = vault // self._vaults_per_hmc
        block_size = self.address_map.block_size
        t = self.channel.send_request_to(arrival, 0, hop)
        t = self.vaults[vault].read_block(
            t, rest & self._bank_mask,
            (rest >> self._bank_bits) // self._blocks_per_row, block_size)
        t = self.channel.send_response_from(t, block_size, hop)
        slots = self._slots
        slots[SLOT_DRAM_READS] += 1.0
        slots[SLOT_OFFCHIP_READ_PACKETS] += 1.0
        if self.obs.enabled:
            self.obs.observe("dram.read_latency", t - arrival)
        return t

    def write_block(self, arrival: float, addr: int) -> float:
        """Write back one cache block (posted; header + 64 B request).

        Returns the completion time inside the cube, but callers normally do
        not wait on it — writebacks are fire-and-forget.
        """
        # AddressMap.locate, inlined (hot path: every writeback lands here).
        block = addr >> self._block_bits
        vault = block & self._vault_mask
        rest = block >> self._vault_bits
        block_size = self.address_map.block_size
        t = self.channel.send_request_to(arrival, block_size,
                                         vault // self._vaults_per_hmc)
        t = self.vaults[vault].write_block(
            t, rest & self._bank_mask,
            (rest >> self._bank_bits) // self._blocks_per_row, block_size)
        slots = self._slots
        slots[SLOT_DRAM_WRITES] += 1.0
        slots[SLOT_OFFCHIP_WRITE_PACKETS] += 1.0
        if self.obs.enabled:
            self.obs.observe("dram.write_latency", t - arrival)
        return t

    # ------------------------------------------------------------------
    # Memory-side PEI primitives (composed by repro.core.executor)
    # ------------------------------------------------------------------

    def pim_send_request(self, arrival: float, input_bytes: int,
                         addr: int = 0) -> float:
        """Ship a PIM-operation packet (type + address + inputs) to its cube."""
        self._slots[SLOT_OFFCHIP_PIM_REQUESTS] += 1.0
        hop = ((addr >> self._block_bits) & self._vault_mask) \
            // self._vaults_per_hmc
        return self.channel.send_request_to(arrival, input_bytes, hop)

    def pim_send_response(self, arrival: float, output_bytes: int,
                          addr: int = 0) -> float:
        """Return a PIM operation's outputs (possibly empty) to the host."""
        self._slots[SLOT_OFFCHIP_PIM_RESPONSES] += 1.0
        hop = ((addr >> self._block_bits) & self._vault_mask) \
            // self._vaults_per_hmc
        return self.channel.send_response_from(arrival, output_bytes, hop)

    def pim_read_block(self, arrival: float, addr: int) -> float:
        """Vault-local block read feeding the memory-side PCU (no off-chip)."""
        block = addr >> self._block_bits
        vault = block & self._vault_mask
        rest = block >> self._vault_bits
        self._slots[SLOT_DRAM_PIM_READS] += 1.0
        t = self.vaults[vault].read_block(
            arrival, rest & self._bank_mask,
            (rest >> self._bank_bits) // self._blocks_per_row,
            self.address_map.block_size)
        if self.obs.enabled:
            self.obs.observe("dram.pim_read_latency", t - arrival)
        return t

    def pim_write_block(self, arrival: float, addr: int) -> float:
        """Vault-local block write from the memory-side PCU (no off-chip)."""
        block = addr >> self._block_bits
        vault = block & self._vault_mask
        rest = block >> self._vault_bits
        self._slots[SLOT_DRAM_PIM_WRITES] += 1.0
        return self.vaults[vault].write_block(
            arrival, rest & self._bank_mask,
            (rest >> self._bank_bits) // self._blocks_per_row,
            self.address_map.block_size)

    # ------------------------------------------------------------------

    @property
    def dram_accesses(self) -> int:
        return sum(vault.dram_accesses for vault in self.vaults)

    def reset(self) -> None:
        self.channel.reset()
        for vault in self.vaults:
            vault.reset()
