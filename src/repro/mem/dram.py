"""DRAM bank timing with an open-row policy.

The paper's DRAM controllers are FR-FCFS; our occupancy model approximates
them with per-bank FCFS plus an open-row policy, which preserves the
first-order effect (row hits are cheap, row conflicts pay precharge +
activate) without per-cycle scheduling.
"""

from dataclasses import dataclass

from repro.sim.clock import ClockDomain
from repro.sim.resource import Resource


@dataclass(frozen=True)
class DramTimings:
    """Bank timing parameters in host-core cycles.

    Defaults follow Table 2: tCL = tRCD = tRP = 13.75 ns at a 4 GHz host
    clock (55 cycles each).  ``burst`` is the data-transfer occupancy of a
    64-byte access on the bank's internal bus.
    """

    t_cl: float
    t_rcd: float
    t_rp: float
    burst: float

    @classmethod
    def from_ns(
        cls,
        t_cl_ns: float,
        t_rcd_ns: float,
        t_rp_ns: float,
        burst_ns: float,
        host_freq_ghz: float,
    ) -> "DramTimings":
        """Convert nanosecond timings into host cycles.

        Values intentionally have no defaults: physical-unit constants live
        in :class:`repro.system.config.SystemConfig` (simlint SIM005), so
        callers must pass them from there (see ``from_config``).
        """
        clock = ClockDomain(1.0, host_freq_ghz)
        return cls(
            t_cl=clock.from_ns(t_cl_ns),
            t_rcd=clock.from_ns(t_rcd_ns),
            t_rp=clock.from_ns(t_rp_ns),
            burst=clock.from_ns(burst_ns),
        )

    @classmethod
    def from_config(cls, config) -> "DramTimings":
        """Build from a :class:`~repro.system.config.SystemConfig`'s DRAM
        fields (duck-typed to keep this layer independent of the system
        layer)."""
        return cls.from_ns(
            t_cl_ns=config.dram_t_cl_ns,
            t_rcd_ns=config.dram_t_rcd_ns,
            t_rp_ns=config.dram_t_rp_ns,
            burst_ns=config.dram_burst_ns,
            host_freq_ghz=config.core_freq_ghz,
        )


class DramBank:
    """One DRAM bank: a serialized resource with an open row register."""

    __slots__ = ("timings", "resource", "open_row", "row_hits", "row_misses", "row_conflicts")

    def __init__(self, name: str, timings: DramTimings):
        self.timings = timings
        self.resource = Resource(name)
        self.open_row = None
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0

    def access(self, arrival: float, row: int, is_write: bool = False) -> float:
        """Access ``row``; return the completion time of the data transfer.

        Row hit: tCL.  Closed bank: tRCD + tCL.  Row conflict: tRP + tRCD +
        tCL.  Writes are modelled with the same latency (tCWL ~= tCL); the
        distinction that matters to the experiments is the traffic and
        occupancy, not the exact write latency.
        """
        t = self.timings
        if self.open_row == row:
            latency = t.t_cl
            self.row_hits += 1
        elif self.open_row is None:
            latency = t.t_rcd + t.t_cl
            self.row_misses += 1
        else:
            latency = t.t_rp + t.t_rcd + t.t_cl
            self.row_conflicts += 1
        self.open_row = row
        # Resource.acquire inlined: every DRAM access serializes here.
        occupancy = latency + t.burst
        r = self.resource
        if arrival > r.clock:
            gap = arrival - r.clock
            r.backlog = r.backlog - gap if r.backlog > gap else 0.0
            r.clock = arrival
        start = arrival + r.backlog
        r.backlog += occupancy
        r.busy_cycles += occupancy
        r.served += 1
        return start + occupancy

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_misses + self.row_conflicts

    def reset(self) -> None:
        self.resource.reset()
        self.open_row = None
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
