"""Physical-address to HMC/vault/bank/row interleaving.

Cache blocks are interleaved across all vaults of all cubes at block
granularity (consecutive blocks land in different vaults), then across the
banks within a vault, with the remaining bits selecting the DRAM row.  This
is the layout that maximizes vault-level parallelism for the streaming and
random-access workloads the paper studies, and it is also what makes the
single-cache-block restriction (Section 3.1) meaningful: one PIM operation
touches exactly one vault.
"""

from typing import NamedTuple

from repro.util.bitops import ilog2


class BlockLocation(NamedTuple):
    """Where a physical cache block lives inside the memory system.

    A NamedTuple: one is built per DRAM access, so construction cost is a
    hot-path concern (frozen dataclasses cost over twice as much).
    """

    hmc: int
    vault: int  # global vault index across all HMCs
    bank: int  # bank index within the vault
    row: int  # DRAM row within the bank


class AddressMap:
    """Decomposes physical block addresses into memory-system coordinates."""

    def __init__(
        self,
        block_size: int = 64,
        n_hmcs: int = 8,
        vaults_per_hmc: int = 16,
        banks_per_vault: int = 2,
        row_bytes: int = 2048,
    ):
        self.block_size = block_size
        self.n_hmcs = n_hmcs
        self.vaults_per_hmc = vaults_per_hmc
        self.banks_per_vault = banks_per_vault
        self.row_bytes = row_bytes
        self.total_vaults = n_hmcs * vaults_per_hmc
        self.total_banks = self.total_vaults * banks_per_vault
        self._block_bits = ilog2(block_size)
        self._vault_bits = ilog2(self.total_vaults)
        self._bank_bits = ilog2(banks_per_vault)
        self._blocks_per_row = max(1, row_bytes // block_size)
        self._row_bits_shift = self._vault_bits + self._bank_bits

    def block_number(self, addr: int) -> int:
        return addr >> self._block_bits

    def locate(self, addr: int) -> BlockLocation:
        """Map a physical address to its (hmc, vault, bank, row) coordinates."""
        block = addr >> self._block_bits
        vault = block & (self.total_vaults - 1)
        block >>= self._vault_bits
        bank = block & (self.banks_per_vault - 1)
        block >>= self._bank_bits
        row = block // self._blocks_per_row
        return BlockLocation(
            hmc=vault // self.vaults_per_hmc, vault=vault, bank=bank, row=row
        )

    def vault_of(self, addr: int) -> int:
        """Fast path: only the global vault index of ``addr``."""
        return (addr >> self._block_bits) & (self.total_vaults - 1)
