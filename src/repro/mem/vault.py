"""An HMC vault: DRAM banks behind a TSV vertical link.

Each vault owns its DRAM controller (on the logic die) and, in the PEI
architecture, one memory-side PCU.  The PCU object itself lives in
``repro.core.pcu`` and is attached by the system builder; the vault only
provides the raw read/write timing primitives that both normal memory
accesses and in-memory PEI execution compose.
"""

from typing import List, Optional

from repro.mem.dram import DramBank, DramTimings
from repro.obs.hooks import NULL_OBS
from repro.sim.resource import BandwidthLink


class Vault:
    """One vertical DRAM partition with its own controller and TSV bundle."""

    def __init__(
        self,
        index: int,
        banks_per_vault: int,
        timings: DramTimings,
        tsv_bytes_per_cycle: float,
        controller_latency: float = 8.0,
    ):
        self.index = index
        self.banks: List[DramBank] = [
            DramBank(f"vault{index}.bank{b}", timings) for b in range(banks_per_vault)
        ]
        self.tsv = BandwidthLink(f"vault{index}.tsv", tsv_bytes_per_cycle)
        self.controller_latency = controller_latency
        # Attached by the system builder when PEIs are enabled; the vault's
        # memory-side PCU (Section 4.2).
        self.pcu: Optional[object] = None
        # Telemetry sink (null object unless a Telemetry is attached).
        self.obs = NULL_OBS

    def read_block(self, arrival: float, bank: int, row: int, nbytes: int = 64) -> float:
        """Read ``nbytes`` from DRAM and move them across the TSVs.

        Returns the time the data is available on the logic die.
        """
        t = arrival + self.controller_latency
        t = self.banks[bank].access(t, row, is_write=False)
        if self.obs.enabled:
            self.obs.observe("queue.vault_tsv_backlog", self.tsv.backlog)
        return self.tsv.transfer(t, nbytes)

    def write_block(self, arrival: float, bank: int, row: int, nbytes: int = 64) -> float:
        """Move ``nbytes`` across the TSVs and write them into DRAM."""
        if self.obs.enabled:
            self.obs.observe("queue.vault_tsv_backlog", self.tsv.backlog)
        t = self.tsv.transfer(arrival + self.controller_latency, nbytes)
        return self.banks[bank].access(t, row, is_write=True)

    @property
    def dram_accesses(self) -> int:
        return sum(bank.accesses for bank in self.banks)

    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
        self.tsv.reset()
