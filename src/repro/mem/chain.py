"""Per-cube daisy-chain modeling (opt-in).

By default the 8-cube chain of Table 2 is modelled as its bottleneck
host-side hop (one request + one response link shared by all cubes).  With
``SystemConfig.model_chain_hops=True`` the chain is modelled hop by hop: a
packet to cube *k* traverses k+1 request hops and its response k+1 response
hops, each hop being its own fluid-queue link — so nearer cubes enjoy lower
latency and the first hop still carries all traffic (it remains the
bandwidth bottleneck, preserving the default model's aggregate behaviour).
"""

from typing import List

from repro.mem.link import OffChipChannel
from repro.sim.resource import BandwidthLink


class DaisyChainChannel(OffChipChannel):
    """An OffChipChannel whose packets pay position-dependent hop costs.

    The base class's ``request``/``response`` links are the host-side hop
    (hop 0), keeping every aggregate counter (bytes, EMA flits) and the
    balanced-dispatch interface identical to the single-hop model; deeper
    hops add their own queueing and serialization latency on top.
    """

    def __init__(
        self,
        n_hops: int,
        request_bytes_per_cycle: float,
        response_bytes_per_cycle: float,
        header_bytes: int = 16,
        flit_bytes: int = 16,
        serdes_latency: float = 16.0,
        ema_period: float = 40000.0,
        hop_latency: float = 4.0,
    ):
        super().__init__(request_bytes_per_cycle, response_bytes_per_cycle,
                         header_bytes, flit_bytes, serdes_latency, ema_period)
        if n_hops <= 0:
            raise ValueError(f"chain needs at least one hop, got {n_hops}")
        self.n_hops = n_hops
        self.hop_latency = hop_latency
        # Hop 0 is the base class's links; deeper hops are extra.
        self._request_hops: List[BandwidthLink] = [
            BandwidthLink(f"chain.req[{i}]", request_bytes_per_cycle)
            for i in range(1, n_hops)
        ]
        self._response_hops: List[BandwidthLink] = [
            BandwidthLink(f"chain.res[{i}]", response_bytes_per_cycle)
            for i in range(1, n_hops)
        ]

    # ------------------------------------------------------------------

    def send_request_to(self, arrival: float, payload_bytes: int,
                        hop: int) -> float:
        """Send a request packet to the cube ``hop`` positions down-chain."""
        # Hop 0 (the bottleneck) is the base implementation, called
        # explicitly: self.send_request would dispatch back to this
        # override via the base class's delegation.
        t = OffChipChannel.send_request_to(self, arrival, payload_bytes, 0)
        nbytes = self.packet_bytes(payload_bytes)
        for link in self._request_hops[:hop]:
            t = link.transfer(t, nbytes) + self.hop_latency
        return t

    def send_response_from(self, arrival: float, payload_bytes: int,
                           hop: int) -> float:
        """Return a response from the cube ``hop`` positions down-chain."""
        nbytes = self.packet_bytes(payload_bytes)
        t = arrival
        for link in reversed(self._response_hops[:hop]):
            t = link.transfer(t, nbytes) + self.hop_latency
        return OffChipChannel.send_response_from(self, t, payload_bytes, 0)

    def reset(self) -> None:
        super().reset()
        for link in self._request_hops:
            link.reset()
        for link in self._response_hops:
            link.reset()
