"""Hybrid Memory Cube (HMC) main-memory substrate.

Models the paper's Table 2 memory system: 8 HMCs on a daisy chain with
80 GB/s full-duplex off-chip links, 16 vaults per cube, 256 DRAM banks in
total, FR-FCFS-approximate open-row bank timing with
tCL = tRCD = tRP = 13.75 ns, and 64-TSV vertical links per vault.
"""

from repro.mem.address_map import AddressMap, BlockLocation
from repro.mem.dram import DramBank, DramTimings
from repro.mem.hmc import HmcSystem
from repro.mem.link import EmaFlitCounter, OffChipChannel
from repro.mem.vault import Vault

__all__ = [
    "AddressMap",
    "BlockLocation",
    "DramBank",
    "DramTimings",
    "EmaFlitCounter",
    "HmcSystem",
    "OffChipChannel",
    "Vault",
]
