"""Off-chip HMC links: separate request and response directions.

The paper's bandwidth asymmetry argument (Section 7.4) rests on the packet
cost model: a read consumes 16 bytes of request bandwidth and 80 bytes of
response bandwidth; a write consumes 80 bytes of request bandwidth.  We model
each direction as an independent BandwidthLink and pad payloads to the flit
granularity.  The channel also maintains the two exponentially-averaged flit
counters (C_req, C_res) that balanced dispatch reads.
"""

from repro.obs.hooks import NULL_OBS
from repro.sim.resource import BandwidthLink
from repro.util.bitops import align_up


class EmaFlitCounter:
    """An accumulator halved every ``period`` cycles (Section 7.4).

    The paper halves the counters every 10 microseconds to compute an
    exponential moving average of off-chip traffic; we decay lazily when the
    counter is touched.
    """

    __slots__ = ("period", "value", "_epoch")

    def __init__(self, period: float):
        if period <= 0:
            raise ValueError(f"EMA period must be positive, got {period}")
        self.period = period
        self.value = 0.0
        self._epoch = 0.0

    def _decay(self, now: float) -> None:
        if now <= self._epoch:
            return
        steps = int((now - self._epoch) / self.period)
        if steps > 0:
            self.value *= 0.5 ** min(steps, 64)
            self._epoch += steps * self.period

    def add(self, now: float, amount: float) -> None:
        # _decay inlined: add runs once per off-chip packet.
        epoch = self._epoch
        if now > epoch:
            steps = int((now - epoch) / self.period)
            if steps > 0:
                self.value *= 0.5 ** min(steps, 64)
                self._epoch = epoch + steps * self.period
        self.value += amount

    def read(self, now: float) -> float:
        self._decay(now)
        return self.value


class OffChipChannel:
    """The daisy-chained host<->HMC channel (one shared hop).

    The eight cubes of Table 2 share one 80 GB/s full-duplex chain whose
    host-side hop is the bottleneck, so we model a single request link and a
    single response link.  All payloads are padded to ``flit_bytes`` and
    carry a ``header_bytes`` packet header.
    """

    def __init__(
        self,
        request_bytes_per_cycle: float,
        response_bytes_per_cycle: float,
        header_bytes: int = 16,
        flit_bytes: int = 16,
        serdes_latency: float = 16.0,
        ema_period: float = 40000.0,
    ):
        self.request = BandwidthLink("offchip.request", request_bytes_per_cycle)
        self.response = BandwidthLink("offchip.response", response_bytes_per_cycle)
        self.header_bytes = header_bytes
        self.flit_bytes = flit_bytes
        # Power-of-two flit sizes let the per-packet padding in the send
        # bodies be a mask operation instead of an align_up call.
        self._flit_mask = (flit_bytes - 1
                           if flit_bytes & (flit_bytes - 1) == 0 else None)
        self.serdes_latency = serdes_latency
        self.req_flits = EmaFlitCounter(ema_period)
        self.res_flits = EmaFlitCounter(ema_period)
        # Telemetry sink (null object unless a Telemetry is attached).
        self.obs = NULL_OBS

    def packet_bytes(self, payload_bytes: int) -> int:
        """Total wire bytes of a packet with ``payload_bytes`` of payload."""
        return align_up(self.header_bytes + payload_bytes, self.flit_bytes)

    def send_request(self, arrival: float, payload_bytes: int) -> float:
        """Transfer a request packet; return its arrival time at the cube."""
        return self.send_request_to(arrival, payload_bytes, 0)

    def send_response(self, arrival: float, payload_bytes: int) -> float:
        """Transfer a response packet; return its arrival time at the host."""
        return self.send_response_from(arrival, payload_bytes, 0)

    # The hop-aware variants are the implementation: every memory-system
    # packet travels through them, so making them the real bodies spares
    # that traffic a delegation call.  The base channel models the chain
    # as its bottleneck hop (cube position ignored); the opt-in
    # DaisyChainChannel (repro.mem.chain) overrides these with per-hop
    # costs.

    def send_request_to(self, arrival: float, payload_bytes: int,
                        hop: int) -> float:
        # packet_bytes inlined (mask padding) — once per request packet.
        mask = self._flit_mask
        nbytes = (((self.header_bytes + payload_bytes + mask) & ~mask)
                  if mask is not None
                  else self.packet_bytes(payload_bytes))
        if self.obs.enabled:
            # Backlog *before* this packet joined = its queueing delay.
            self.obs.observe("queue.offchip_request_backlog",
                             self.request.peek(arrival) - arrival)
        finish = self.request.transfer(arrival, nbytes)
        self.req_flits.add(finish, nbytes / self.flit_bytes)
        return finish + self.serdes_latency

    def send_response_from(self, arrival: float, payload_bytes: int,
                           hop: int) -> float:
        mask = self._flit_mask
        nbytes = (((self.header_bytes + payload_bytes + mask) & ~mask)
                  if mask is not None
                  else self.packet_bytes(payload_bytes))
        if self.obs.enabled:
            self.obs.observe("queue.offchip_response_backlog",
                             self.response.peek(arrival) - arrival)
        finish = self.response.transfer(arrival, nbytes)
        self.res_flits.add(finish, nbytes / self.flit_bytes)
        return finish + self.serdes_latency

    @property
    def request_bytes(self) -> int:
        return self.request.bytes_transferred

    @property
    def response_bytes(self) -> int:
        return self.response.bytes_transferred

    @property
    def total_bytes(self) -> int:
        return self.request_bytes + self.response_bytes

    def reset(self) -> None:
        self.request.reset()
        self.response.reset()
        self.req_flits = EmaFlitCounter(self.req_flits.period)
        self.res_flits = EmaFlitCounter(self.res_flits.period)
