"""Optional per-PEI tracing: where did each PEI go and why, and where did
its latency come from.

A :class:`PeiTracer` can be attached to a :class:`~repro.core.executor.
PeiExecutor`; the executor then records one :class:`PeiTrace` per executed
PEI and one :class:`FenceTrace` per pfence.  This is a debugging/analysis
aid for users of the library — the simulator equivalent of a processor's
performance-monitoring trace — and is off by default (tracing every PEI of
a long run costs memory).

The combined :attr:`PeiTracer.events` stream (PEIs and fences interleaved
in record order, which equals PIM-directory acquire order because the
executor is synchronous) is what :mod:`repro.analysis.simsan` consumes to
check the Section 4.3 atomicity/coherence protocol post-hoc.
"""

from dataclasses import dataclass
from typing import Callable, List, Optional, Union


@dataclass(frozen=True)
class PeiTrace:
    """Everything observable about one PEI's execution.

    The protocol-relevant extras default to ``None`` so hand-built traces
    stay terse: ``decision_time`` is when the PMU fixed the execution
    location, ``clean_time``/``clean_invalidate`` record the back-
    invalidation (writer) or back-writeback (reader) performed before a
    memory-side PEI (``None`` for host-side execution).
    """

    core: int
    op: str
    block: int
    on_host: bool
    issue_time: float
    grant_time: float
    completion: float
    decision_time: Optional[float] = None
    clean_time: Optional[float] = None
    clean_invalidate: Optional[bool] = None

    @property
    def latency(self) -> float:
        return self.completion - self.issue_time

    @property
    def lock_wait(self) -> float:
        return max(0.0, self.grant_time - self.issue_time)


@dataclass(frozen=True)
class FenceTrace:
    """One pfence: issued by ``core`` and released once writers drained."""

    core: int
    issue_time: float
    release_time: float

    @property
    def stall(self) -> float:
        return max(0.0, self.release_time - self.issue_time)


TraceEvent = Union[PeiTrace, FenceTrace]


class PeiTracer:
    """Collects PeiTrace/FenceTrace records, with an optional live callback.

    ``capacity`` bounds the total number of retained events; excess events
    are counted in :attr:`dropped` (a truncated trace is flagged by the
    sanitizer, because protocol checks on it would be unsound).
    """

    def __init__(self, callback: Optional[Callable[[PeiTrace], None]] = None,
                 capacity: Optional[int] = None):
        self.records: List[PeiTrace] = []
        self.fences: List[FenceTrace] = []
        self.events: List[TraceEvent] = []
        self.callback = callback
        self.capacity = capacity
        self.dropped = 0

    def _has_room(self) -> bool:
        return self.capacity is None or len(self.events) < self.capacity

    def record(self, trace: PeiTrace) -> None:
        if self._has_room():
            self.records.append(trace)
            self.events.append(trace)
        else:
            self.dropped += 1
        if self.callback is not None:
            self.callback(trace)

    def record_fence(self, fence: FenceTrace) -> None:
        if self._has_room():
            self.fences.append(fence)
            self.events.append(fence)
        else:
            self.dropped += 1

    # Analysis helpers --------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def host_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(t.on_host for t in self.records) / len(self.records)

    def mean_latency(self, on_host: Optional[bool] = None) -> float:
        selected = [t.latency for t in self.records
                    if on_host is None or t.on_host == on_host]
        return sum(selected) / len(selected) if selected else 0.0

    def hottest_blocks(self, top: int = 10):
        """(block, count) pairs for the most frequently targeted blocks."""
        counts = {}
        for t in self.records:
            counts[t.block] = counts.get(t.block, 0) + 1
        return sorted(counts.items(), key=lambda kv: -kv[1])[:top]
