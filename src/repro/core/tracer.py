"""Optional per-PEI tracing: where did each PEI go and why, and where did
its latency come from.

A :class:`PeiTracer` can be attached to a :class:`~repro.core.executor.
PeiExecutor`; the executor then records one :class:`PeiTrace` per executed
PEI.  This is a debugging/analysis aid for users of the library — the
simulator equivalent of a processor's performance-monitoring trace — and is
off by default (tracing every PEI of a long run costs memory).
"""

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class PeiTrace:
    """Everything observable about one PEI's execution."""

    core: int
    op: str
    block: int
    on_host: bool
    issue_time: float
    grant_time: float
    completion: float

    @property
    def latency(self) -> float:
        return self.completion - self.issue_time

    @property
    def lock_wait(self) -> float:
        return max(0.0, self.grant_time - self.issue_time)


class PeiTracer:
    """Collects PeiTrace records, with an optional live callback."""

    def __init__(self, callback: Optional[Callable[[PeiTrace], None]] = None,
                 capacity: Optional[int] = None):
        self.records: List[PeiTrace] = []
        self.callback = callback
        self.capacity = capacity
        self.dropped = 0

    def record(self, trace: PeiTrace) -> None:
        if self.capacity is None or len(self.records) < self.capacity:
            self.records.append(trace)
        else:
            self.dropped += 1
        if self.callback is not None:
            self.callback(trace)

    # Analysis helpers --------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def host_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(t.on_host for t in self.records) / len(self.records)

    def mean_latency(self, on_host: Optional[bool] = None) -> float:
        selected = [t.latency for t in self.records
                    if on_host is None or t.on_host == on_host]
        return sum(selected) / len(selected) if selected else 0.0

    def hottest_blocks(self, top: int = 10):
        """(block, count) pairs for the most frequently targeted blocks."""
        counts = {}
        for t in self.records:
            counts[t.block] = counts.get(t.block, 0) + 1
        return sorted(counts.items(), key=lambda kv: -kv[1])[:top]
