"""The paper's primary contribution: PIM-enabled instructions.

This package implements the PEI abstraction (Section 3) and the hardware
that realizes it (Section 4):

* :mod:`repro.core.isa` — the seven PIM operations of Table 1;
* :mod:`repro.core.pcu` — PEI Computation Units with operand buffers;
* :mod:`repro.core.pim_directory` — the tag-less reader-writer lock table;
* :mod:`repro.core.locality_monitor` — the L3-mirrored locality tag array;
* :mod:`repro.core.dispatch` — host/memory execution-location policies,
  including locality-aware and balanced dispatch;
* :mod:`repro.core.pmu` — the PEI Management Unit tying the above together;
* :mod:`repro.core.executor` — the host-side (Fig. 4) and memory-side
  (Fig. 5) execution sequences.
"""

from repro.core.dispatch import DispatchPolicy
from repro.core.executor import PeiExecutor
from repro.core.isa import (
    DOT_PRODUCT,
    EUCLIDEAN_DIST,
    FP_ADD,
    HASH_PROBE,
    HISTOGRAM_BIN,
    INT_INCREMENT,
    INT_MIN,
    PIM_OPS,
    PimOp,
)
from repro.core.locality_monitor import LocalityMonitor
from repro.core.pcu import OperandBuffer, Pcu
from repro.core.pim_directory import PimDirectory
from repro.core.pmu import Pmu

__all__ = [
    "DOT_PRODUCT",
    "DispatchPolicy",
    "EUCLIDEAN_DIST",
    "FP_ADD",
    "HASH_PROBE",
    "HISTOGRAM_BIN",
    "INT_INCREMENT",
    "INT_MIN",
    "LocalityMonitor",
    "OperandBuffer",
    "PIM_OPS",
    "Pcu",
    "PeiExecutor",
    "PimDirectory",
    "PimOp",
    "Pmu",
]
