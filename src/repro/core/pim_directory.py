"""The PIM directory: cost-effective atomicity for in-flight PEIs.

Section 4.3.  A direct-mapped, *tag-less* table of reader-writer locks
indexed by the XOR-folded target block address.  Because it is tag-less, two
different blocks can map to the same entry and be needlessly serialized
(a false positive) — that is safe and, per Section 7.6, rare; what can never
happen is two simultaneous writers of the *same* block (a false negative),
because same block implies same entry.

Timing realization: each entry keeps two timestamps, when the last writer
completes (``writer_free``) and when the last reader completes
(``readers_max``).  A reader may start once the current writer is done
(readers overlap each other); a writer must wait for both previous writers
and all in-flight readers.  This reproduces the blocking rules of the paper's
readable/writeable bits + reader/writer counters in a timestamp world.

With ``ideal=True`` the directory models the Ideal-Host configuration: an
infinite zero-latency table, i.e. per-block entries and no access cost.
"""

from typing import Dict, Optional

from repro.sim.stat_keys import (
    SLOT_PIM_DIRECTORY_ACCESSES,
    SLOT_PIM_DIRECTORY_CONFLICTS,
    SLOT_PIM_DIRECTORY_WAIT_CYCLES,
)
from repro.sim.stats import Stats
from repro.util.bitops import ilog2, is_power_of_two, xor_fold

#: Hardware widths of one directory entry (Section 6.1): a 10-bit reader
#: counter and a 1-bit writer counter, next to the readable/writeable bits.
#: The golden verification model (repro.verify.golden) and the trace
#: sanitizer (SAN010) bound admissible concurrency by these widths.
READER_COUNTER_BITS = 10
WRITER_COUNTER_BITS = 1

#: Most concurrent readers of one entry the hardware can represent.
MAX_CONCURRENT_READERS = (1 << READER_COUNTER_BITS) - 1


class PimDirectory:
    """Direct-mapped reader-writer lock table for PEI atomicity."""

    def __init__(
        self,
        entries: int = 2048,
        latency: float = 2.0,
        stats: Optional[Stats] = None,
        ideal: bool = False,
        handoff_penalty: float = 10.0,
    ):
        if not ideal and not is_power_of_two(entries):
            raise ValueError(f"entry count must be a power of two, got {entries}")
        self.entries = entries
        self.latency = 0.0 if ideal else latency
        self.ideal = ideal
        # Cost of passing a contended lock (and, physically, the cache-line
        # ownership) to the next PEI.  Applied only when the acquirer
        # actually had to wait; even the ideal directory keeps it, because
        # it models coherence, not directory storage.
        self.handoff_penalty = handoff_penalty
        self.stats = stats if stats is not None else Stats()
        self._slots = self.stats.slots  # batched counter fast path
        self._index_bits = ilog2(entries) if not ideal else 0
        self._index_mask = (1 << self._index_bits) - 1
        self._writer_free: Dict[int, float] = {}
        self._readers_max: Dict[int, float] = {}
        # Global completion horizon of all in-flight/completed writer PEIs —
        # the time a pfence issued now would return (Section 3.2).
        self._fence_horizon = 0.0
        self._pei_horizon = 0.0

    def index_of(self, block: int) -> int:
        """Directory entry of a target block (XOR-folded; shared if ideal)."""
        if self.ideal:
            return block
        return xor_fold(block, self._index_bits)

    # ------------------------------------------------------------------
    # Lock protocol
    # ------------------------------------------------------------------

    def acquire(self, block: int, is_writer: bool, time: float) -> "tuple[int, float]":
        """Acquire the entry for ``block``; return (entry, grant_time).

        ``grant_time`` already includes the directory access latency.  The
        caller must later pass ``entry`` to :meth:`release`.
        """
        bits = self._index_bits
        if self.ideal:
            entry = block
        elif bits:
            # Inlined xor_fold (per-PEI hot path).
            entry = 0
            index_mask = self._index_mask
            value = block
            while value:
                entry ^= value & index_mask
                value >>= bits
        else:
            entry = xor_fold(block, bits)  # single-entry table: raises
        t = time + self.latency
        slots = self._slots
        slots[SLOT_PIM_DIRECTORY_ACCESSES] += 1.0
        writer_free = self._writer_free.get(entry, 0.0)
        if is_writer:
            readers_max = self._readers_max.get(entry, 0.0)
            busy_until = writer_free if writer_free > readers_max else readers_max
        else:
            busy_until = writer_free
        if busy_until > t:
            grant = busy_until + self.handoff_penalty
            slots[SLOT_PIM_DIRECTORY_CONFLICTS] += 1.0
            slots[SLOT_PIM_DIRECTORY_WAIT_CYCLES] += grant - t
        else:
            grant = t
        return entry, grant

    def release(self, entry: int, is_writer: bool, completion: float) -> None:
        """Record the completion of the PEI holding ``entry``."""
        if is_writer:
            if completion > self._writer_free.get(entry, 0.0):
                self._writer_free[entry] = completion
            if completion > self._fence_horizon:
                self._fence_horizon = completion
        else:
            if completion > self._readers_max.get(entry, 0.0):
                self._readers_max[entry] = completion
        if completion > self._pei_horizon:
            self._pei_horizon = completion

    # ------------------------------------------------------------------
    # pfence support
    # ------------------------------------------------------------------

    def fence_time(self, time: float) -> float:
        """When a pfence issued at ``time`` unblocks.

        The pfence waits for every directory entry to become readable, i.e.
        for all writer PEIs issued before it to complete.
        """
        horizon = max(self._fence_horizon, time)
        return horizon + (0.0 if self.ideal else self.latency)

    def quiesce_time(self, time: float) -> float:
        """When *all* in-flight PEIs (readers included) have completed."""
        return max(self._pei_horizon, time)

    # ------------------------------------------------------------------

    @property
    def storage_bits(self) -> int:
        """Storage cost: 13 bits per entry (Section 6.1).

        Unlike the locality monitor's LRU field, nothing here scales with a
        geometry knob: the directory is direct-mapped and tag-less, and the
        counter widths are the paper-fixed hardware widths above, so the
        per-entry cost is a constant regardless of the entry count.
        """
        if self.ideal:
            return 0
        # readable + writeable + reader counter + writer counter
        per_entry = 2 + READER_COUNTER_BITS + WRITER_COUNTER_BITS
        return self.entries * per_entry
