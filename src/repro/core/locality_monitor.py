"""The locality monitor: per-block data-locality profiling (Section 4.3).

A tag array with the same sets/ways as the last-level cache, but storing only
a valid bit, a 10-bit partial tag (XOR-folded from the full tag), LRU
replacement information, and a 1-bit *ignore* flag.  Two update sources:

* every **last-level cache access** promotes/allocates the corresponding
  entry (allocation does *not* set the ignore flag);
* every **PIM operation sent to memory** updates the monitor as if it were an
  LLC access, but an entry *allocated* this way sets its ignore flag, so the
  first monitor hit of a block that has only ever been touched by in-memory
  PEIs is not yet taken as evidence of locality.

A PEI's advice is then a simple tag probe: hit (and not ignored) => execute
on the host; miss => execute in memory.  Partial tags can alias, causing
false locality reports — the Section 7.6 ablation quantifies that cost.
"""

from collections import OrderedDict
from typing import List, Optional

from repro.sim.stat_keys import (
    SLOT_LOCALITY_MONITOR_ACCESSES,
    SLOT_LOCALITY_MONITOR_EVICTIONS,
    SLOT_LOCALITY_MONITOR_HOST_ADVICE,
    SLOT_LOCALITY_MONITOR_IGNORED_FIRST_HITS,
    SLOT_LOCALITY_MONITOR_MISS_ADVICE,
)
from repro.sim.stats import Stats
from repro.util.bitops import ilog2, is_power_of_two


class _PartialTagCache(dict):
    """Self-populating ``block -> partial tag`` memo.

    The partial tag is a pure XOR-fold of the block number, so memoized
    values can never go stale.  A dict hit is a single C-level lookup where
    the fold is a Python loop; the columnar replay engine pre-populates the
    cache for a whole trace's blocks with one vectorized fold
    (:func:`repro.system.columnar` install path), and any block outside
    that set falls through to :meth:`__missing__`.
    """

    __slots__ = ("set_bits", "tag_bits", "tag_mask")

    def __init__(self, set_bits: int, tag_bits: int, tag_mask: int):
        super().__init__()
        self.set_bits = set_bits
        self.tag_bits = tag_bits
        self.tag_mask = tag_mask

    def __missing__(self, block: int) -> int:
        value = block >> self.set_bits
        bits = self.tag_bits
        tag_mask = self.tag_mask
        tag = 0
        while value:
            tag ^= value & tag_mask
            value >>= bits
        self[block] = tag
        return tag


class LocalityMonitor:
    """L3-mirrored partial-tag array advising PEI execution location."""

    def __init__(
        self,
        n_sets: int,
        n_ways: int,
        partial_tag_bits: int = 10,
        latency: float = 3.0,
        use_ignore_flag: bool = True,
        stats: Optional[Stats] = None,
    ):
        if not is_power_of_two(n_sets):
            raise ValueError(f"set count must be a power of two, got {n_sets}")
        if n_ways <= 0:
            raise ValueError(f"way count must be positive, got {n_ways}")
        if partial_tag_bits <= 0:
            raise ValueError("partial tags need at least one bit")
        self.n_sets = n_sets
        self.n_ways = n_ways
        self.partial_tag_bits = partial_tag_bits
        self.latency = latency
        self.use_ignore_flag = use_ignore_flag
        self.stats = stats if stats is not None else Stats()
        self._slots = self.stats.slots  # batched counter fast path
        self._set_bits = ilog2(n_sets)
        self._tag_mask = (1 << partial_tag_bits) - 1
        # Per set: partial_tag -> ignore flag, in LRU order.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(n_sets)]
        #: block -> partial-tag memo shared by the three hot paths below.
        self._tags = _PartialTagCache(self._set_bits, partial_tag_bits,
                                      self._tag_mask)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def set_index(self, block: int) -> int:
        return block & (self.n_sets - 1)

    def partial_tag(self, block: int) -> int:
        """Fold the full tag into ``partial_tag_bits`` bits.

        The XOR-fold of :func:`repro.util.bitops.xor_fold`, inlined: this
        runs on every L3 access via :meth:`observe_llc_access`, so the
        call/validation overhead of the shared helper is measurable.
        """
        value = block >> self._set_bits
        bits = self.partial_tag_bits
        tag_mask = self._tag_mask
        folded = 0
        while value:
            folded ^= value & tag_mask
            value >>= bits
        return folded

    # ------------------------------------------------------------------
    # Update sources
    # ------------------------------------------------------------------

    def observe_llc_access(self, block: int) -> None:
        """Mirror one last-level cache access (hook on the L3)."""
        line_set = self._sets[block & (self.n_sets - 1)]
        # Memoized partial tag: this hook runs on every L3 access.
        tag = self._tags[block]
        if tag in line_set:
            # Hit promotion; a real LLC access is direct locality evidence,
            # so any PIM-allocated ignore flag is cleared.
            line_set[tag] = False
            line_set.move_to_end(tag)
        else:
            if len(line_set) >= self.n_ways:
                line_set.popitem(last=False)
                self._slots[SLOT_LOCALITY_MONITOR_EVICTIONS] += 1.0
            line_set[tag] = False

    def note_pim_issue(self, block: int) -> None:
        """Update for a PIM operation sent to memory.

        The paper's key rule: the monitor is updated *as if* there were an
        LLC access to the target block, except that a fresh allocation sets
        the ignore flag.
        """
        line_set = self._sets[block & (self.n_sets - 1)]
        # Memoized partial tag (one update per memory-dispatched PEI).
        tag = self._tags[block]
        if tag in line_set:
            line_set.move_to_end(tag)
        else:
            if len(line_set) >= self.n_ways:
                line_set.popitem(last=False)
                self._slots[SLOT_LOCALITY_MONITOR_EVICTIONS] += 1.0
            line_set[tag] = self.use_ignore_flag

    # ------------------------------------------------------------------
    # Advice
    # ------------------------------------------------------------------

    def advise_host(self, block: int) -> bool:
        """Return True if the PEI should run on the host-side PCU.

        A hit on an ignore-flagged entry is treated as a miss once: the flag
        is cleared so the block's *second* consecutive monitor hit does count
        as locality.
        """
        line_set = self._sets[block & (self.n_sets - 1)]
        # Memoized partial tag (advice runs on every monitored PEI).
        tag = self._tags[block]
        slots = self._slots
        slots[SLOT_LOCALITY_MONITOR_ACCESSES] += 1.0
        if tag not in line_set:
            slots[SLOT_LOCALITY_MONITOR_MISS_ADVICE] += 1.0
            return False
        if line_set[tag]:
            # First hit of a PIM-allocated entry: ignored.
            line_set[tag] = False
            line_set.move_to_end(tag)
            slots[SLOT_LOCALITY_MONITOR_IGNORED_FIRST_HITS] += 1.0
            return False
        line_set.move_to_end(tag)
        slots[SLOT_LOCALITY_MONITOR_HOST_ADVICE] += 1.0
        return True

    def contains(self, block: int) -> bool:
        """Presence probe without statistics or LRU effects (for tests)."""
        return self.partial_tag(block) in self._sets[self.set_index(block)]

    # ------------------------------------------------------------------

    @property
    def storage_bits(self) -> int:
        """1 valid + partial tag + ceil(log2(ways))-bit LRU + 1 ignore bit.

        The LRU rank needs log2(associativity) bits per entry — 4 at the
        paper's 16-way LLC geometry, 2 for a 4-way monitor.  (``(n-1).
        bit_length()`` equals ``ilog2(n)`` for powers of two and rounds up
        for the non-power-of-two associativities the monitor also accepts.)
        """
        lru_bits = (self.n_ways - 1).bit_length()
        per_entry = 1 + self.partial_tag_bits + lru_bits + 1
        return self.n_sets * self.n_ways * per_entry
