"""The PIM-enabled instruction set: the seven operations of Table 1.

Every operation obeys the single-cache-block restriction (Section 3.1): it
reads, and optionally writes, exactly one last-level cache block, and its
input/output operands are at most one block in size.  The same operation can
execute on a host-side or a memory-side PCU; the numerical result is
identical either way, which is what lets the hardware choose the location
transparently.

Besides the architectural metadata, this module provides the *reference
semantics* of the read-modify-write operations (``apply_rmw``) used by the
workloads' functional execution and by the test suite.
"""

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class PimOp:
    """Metadata of one PIM operation (a row of Table 1).

    Attributes:
        name: long human-readable name as printed in the paper's table.
        mnemonic: short assembly-style mnemonic (``pim.<x>``).
        reads: operation reads its target cache block ('R' column).
        writes: operation modifies its target cache block ('W' column).
        input_bytes: size of the input operand shipped with the PEI.
        output_bytes: size of the output operand returned to the core.
        compute_cycles: computation-logic occupancy on a PCU (host cycles
            at the host PCU's 4 GHz clock; memory-side PCUs run at 2 GHz and
            scale this through their clock domain).
        applications: workloads of the case study using this operation.
    """

    name: str
    mnemonic: str
    reads: bool
    writes: bool
    input_bytes: int
    output_bytes: int
    compute_cycles: float
    applications: Tuple[str, ...]

    def __post_init__(self):
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise ValueError("operand sizes must be non-negative")
        if self.input_bytes > 64 or self.output_bytes > 64:
            # Section 3.1: operands larger than one last-level cache block
            # would make memory-side execution strictly worse than host-side.
            raise ValueError("operands are limited to one cache block (64 B)")
        if self.writes and not self.reads:
            raise ValueError("all Table 1 writer operations also read")

    @property
    def is_writer(self) -> bool:
        """Writer PEIs take the PIM directory's writer lock."""
        return self.writes

    def __str__(self) -> str:
        return self.mnemonic


INT_INCREMENT = PimOp(
    name="8-byte integer increment",
    mnemonic="pim.inc",
    reads=True,
    writes=True,
    input_bytes=0,
    output_bytes=0,
    compute_cycles=1.0,
    applications=("ATF",),
)

INT_MIN = PimOp(
    name="8-byte integer min",
    mnemonic="pim.min",
    reads=True,
    writes=True,
    input_bytes=8,
    output_bytes=0,
    compute_cycles=1.0,
    applications=("BFS", "SP", "WCC"),
)

FP_ADD = PimOp(
    name="Floating-point add",
    mnemonic="pim.fadd",
    reads=True,
    writes=True,
    input_bytes=8,
    output_bytes=0,
    compute_cycles=4.0,
    applications=("PR",),
)

HASH_PROBE = PimOp(
    name="Hash table probing",
    mnemonic="pim.probe",
    reads=True,
    writes=False,
    input_bytes=8,
    output_bytes=9,
    compute_cycles=6.0,
    applications=("HJ",),
)

HISTOGRAM_BIN = PimOp(
    name="Histogram bin index",
    mnemonic="pim.hist",
    reads=True,
    writes=False,
    input_bytes=1,
    output_bytes=16,
    compute_cycles=8.0,
    applications=("HG", "RP"),
)

EUCLIDEAN_DIST = PimOp(
    name="Euclidean distance",
    mnemonic="pim.dist",
    reads=True,
    writes=False,
    input_bytes=64,
    output_bytes=4,
    compute_cycles=16.0,
    applications=("SC",),
)

DOT_PRODUCT = PimOp(
    name="Dot product",
    mnemonic="pim.dot",
    reads=True,
    writes=False,
    input_bytes=32,
    output_bytes=8,
    compute_cycles=8.0,
    applications=("SVM",),
)

#: Table 1, keyed by mnemonic.
PIM_OPS: Dict[str, PimOp] = {
    op.mnemonic: op
    for op in (
        INT_INCREMENT,
        INT_MIN,
        FP_ADD,
        HASH_PROBE,
        HISTOGRAM_BIN,
        EUCLIDEAN_DIST,
        DOT_PRODUCT,
    )
}


def apply_rmw(op: PimOp, current, operand):
    """Reference semantics of the read-modify-write operations.

    Returns the new value of the targeted word.  Used by workloads for
    functional execution and by tests as the golden model; the location of
    execution never changes this result.
    """
    if op is INT_INCREMENT:
        return current + 1
    if op is INT_MIN:
        return operand if operand < current else current
    if op is FP_ADD:
        return current + operand
    raise ValueError(f"{op.mnemonic} is not a read-modify-write operation")
