"""PEI Computation Units (Section 4.2).

A PCU is computation logic plus a small operand buffer.  The operand buffer
is what exposes memory-level parallelism across PEIs: a PEI claims an entry
and immediately issues its block fetch even while the computation logic is
busy, so up to ``entries`` PEIs overlap their memory accesses per PCU.  When
the buffer is full, the next PEI stalls until the oldest in-flight PEI
completes — exactly the serialization the Fig. 11a sweep measures.
"""

import heapq
from typing import List

from repro.core.isa import PimOp
from repro.sim.clock import ClockDomain
from repro.sim.resource import Resource


class OperandBuffer:
    """A fixed set of in-flight PEI slots tracked by completion time."""

    __slots__ = ("entries", "_inflight", "stalls")

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError(f"operand buffer needs at least one entry, got {entries}")
        self.entries = entries
        self._inflight: List[float] = []
        self.stalls = 0

    def allocate(self, time: float) -> float:
        """Claim an entry; return the time the claim succeeds.

        If all entries hold in-flight PEIs, the caller waits for the one
        finishing earliest.
        """
        if len(self._inflight) < self.entries:
            return time
        earliest = heapq.heappop(self._inflight)
        if earliest > time:
            self.stalls += 1
            return earliest
        return time

    def release(self, completion: float) -> None:
        """Record the completion time of the PEI occupying the claimed entry."""
        heapq.heappush(self._inflight, completion)

    @property
    def in_flight(self) -> int:
        return len(self._inflight)

    def drain_time(self, time: float) -> float:
        """Time when every in-flight PEI has completed."""
        if not self._inflight:
            return time
        return max(time, max(self._inflight))


class Pcu:
    """One PEI Computation Unit (host-side per core, memory-side per vault)."""

    __slots__ = ("name", "clock", "issue_width", "operand_buffer",
                 "compute_logic", "executed", "_compute_scale")

    def __init__(
        self,
        name: str,
        clock: ClockDomain,
        operand_buffer_entries: int = 4,
        issue_width: int = 1,
    ):
        if issue_width <= 0:
            raise ValueError(f"issue width must be positive, got {issue_width}")
        self.name = name
        self.clock = clock
        self.issue_width = issue_width
        self.operand_buffer = OperandBuffer(operand_buffer_entries)
        self.compute_logic = Resource(f"{name}.alu")
        # Host-cycles-per-device-cycle over the issue width, precomputed:
        # compute() runs once per PEI.
        self._compute_scale = clock.cycles(1.0) / issue_width
        self.executed = 0

    def compute(self, arrival: float, op: PimOp) -> float:
        """Run ``op`` on the computation logic; return the completion time.

        The occupancy is the operation's compute cycles converted into this
        PCU's clock domain and divided by the issue width (Fig. 11b's knob).
        """
        occupancy = op.compute_cycles * self._compute_scale
        start = self.compute_logic.acquire(arrival, occupancy)
        self.executed += 1
        return start + occupancy
