"""Programmer-facing PEI intrinsics (Section 3.3).

The paper envisions PEIs being used like Intel SSE/AVX intrinsics: the
programmer replaces a plain update with an intrinsic call and the hardware
takes care of where it executes.  These helpers bundle the *functional*
effect (applied to the program's own data, so results can never drift from
what was simulated) with the *timing* record the engine replays:

    yield pim_fadd(ranks, w, layout.prop_addr("rank", w), delta)

Read-only operations (probe, histogram, distance, dot product) return their
functional result to the caller out-of-band, so their intrinsics only wrap
the timing record; pass ``chain`` to overlap dependent sequences.
"""

from repro.core.isa import (
    DOT_PRODUCT,
    EUCLIDEAN_DIST,
    FP_ADD,
    HASH_PROBE,
    HISTOGRAM_BIN,
    INT_INCREMENT,
    INT_MIN,
)
from repro.cpu.trace import Pei, PFence


def pim_inc(values, index, addr: int) -> Pei:
    """8-byte atomic integer increment of ``values[index]`` (ATF)."""
    values[index] += 1
    return Pei(INT_INCREMENT, addr)


def pim_int_min(values, index, addr: int, operand: int) -> Pei:
    """8-byte atomic integer min into ``values[index]`` (BFS, SP, WCC)."""
    if operand < values[index]:
        values[index] = operand
    return Pei(INT_MIN, addr)


def pim_fadd(values, index, addr: int, delta: float) -> Pei:
    """Double-precision atomic add into ``values[index]`` (PR)."""
    values[index] += delta
    return Pei(FP_ADD, addr)


def pim_hash_probe(addr: int, chain=None) -> Pei:
    """Probe one hash-bucket node; returns match + next pointer (HJ)."""
    return Pei(HASH_PROBE, addr, chain=chain)


def pim_hist_bin(addr: int, chain=None) -> Pei:
    """Bin indexes of the 16 words in the target block (HG, RP)."""
    return Pei(HISTOGRAM_BIN, addr, chain=chain)


def pim_euclidean_dist(addr: int, chain=None) -> Pei:
    """Distance of the target 16-dim float chunk to the operand chunk (SC)."""
    return Pei(EUCLIDEAN_DIST, addr, chain=chain)


def pim_dot_product(addr: int, chain=None) -> Pei:
    """Dot product of the target 4-dim double chunk with the operand (SVM)."""
    return Pei(DOT_PRODUCT, addr, chain=chain)


def pfence() -> PFence:
    """Memory fence ordering normal instructions after in-flight PEIs."""
    return PFence()
