"""Execution-location policies for PEIs.

The evaluated configurations of Section 7 map onto these policies:

* ``HOST_ONLY`` — every PEI runs on the issuing core's host-side PCU.
* ``PIM_ONLY`` — every PEI is offloaded to its target vault's PCU.
* ``IDEAL_HOST`` — PEIs run as normal host instructions with a free,
  infinite PIM directory (the idealized conventional machine all results
  are normalized to).
* ``LOCALITY_AWARE`` — the locality monitor decides per PEI.
* ``LOCALITY_BALANCED`` — locality-aware plus Section 7.4's balanced
  dispatch: on a monitor miss, pick the side that relieves whichever
  off-chip direction (request vs. response) is currently the busier.
"""

import enum

from repro.core.isa import PimOp
from repro.mem.link import OffChipChannel
from repro.obs.hooks import NULL_OBS, NullObs


class DispatchPolicy(enum.Enum):
    HOST_ONLY = "host-only"
    PIM_ONLY = "pim-only"
    IDEAL_HOST = "ideal-host"
    LOCALITY_AWARE = "locality-aware"
    LOCALITY_BALANCED = "locality-balanced"

    @property
    def uses_monitor(self) -> bool:
        return self in (DispatchPolicy.LOCALITY_AWARE, DispatchPolicy.LOCALITY_BALANCED)

    @property
    def is_balanced(self) -> bool:
        return self is DispatchPolicy.LOCALITY_BALANCED


def balanced_choice(op: PimOp, channel: OffChipChannel, time: float,
                    block_size: int = 64, obs: NullObs = NULL_OBS) -> bool:
    """Section 7.4's balanced dispatch decision on a locality-monitor miss.

    Returns True to execute on the host.  Compares the exponentially-averaged
    request (C_req) and response (C_res) flit counters of the HMC controller
    and picks the execution side that adds less traffic to the busier
    direction.  Off-chip byte costs per side:

    * host-side execution of a monitor-missing PEI fetches the block:
      a header-only request, header + one cache block of response (a later
      dirty writeback is not charged here, matching the counter-driven
      greedy heuristic) — ``block_size`` must be the *configured* block
      size, not an assumed 64 B, or non-64 B ablations mis-decide;
    * memory-side execution ships the operands: header+input request,
      header+output response.
    """
    c_req = channel.req_flits.read(time)
    c_res = channel.res_flits.read(time)
    host_req = channel.packet_bytes(0)
    host_res = channel.packet_bytes(block_size)
    mem_req = channel.packet_bytes(op.input_bytes)
    mem_res = channel.packet_bytes(op.output_bytes)
    if obs.enabled:
        # The momentary traffic picture the decision is reacting to — the
        # Section 7.4 dynamics the interval time-series makes visible.
        obs.observe("dispatch.ema_request_flits", c_req)
        obs.observe("dispatch.ema_response_flits", c_res)
    if c_res > c_req:
        # Response direction is the busier one: minimize response bytes.
        obs.count("dispatch.response_direction_busier")
        return host_res < mem_res
    # Request direction is the busier (or tied) one: minimize request bytes.
    obs.count("dispatch.request_direction_busier")
    return host_req < mem_req
