"""The PEI Management Unit (Section 4.3).

One PMU sits next to the shared L3 and coordinates every PCU in the system.
For each PEI it (1) takes the reader/writer lock in the PIM directory,
(2) decides the execution location via the locality monitor and the active
dispatch policy, and (3) for memory-side execution, cleans the target block
out of the cache hierarchy (back-invalidation for writers, back-writeback
for readers).  It also implements pfence.
"""

from dataclasses import dataclass

from repro.cache.hierarchy import CacheHierarchy
from repro.core.dispatch import DispatchPolicy, balanced_choice
from repro.core.isa import PimOp
from repro.core.locality_monitor import LocalityMonitor
from repro.core.pim_directory import PimDirectory
from repro.mem.link import OffChipChannel
from repro.obs.hooks import NULL_OBS
from repro.sim.stats import Stats
from repro.xbar.crossbar import Crossbar


@dataclass(frozen=True)
class PmuGrant:
    """Outcome of a PEI's PMU visit.

    ``decision_time`` is when the PMU has decided the execution location
    (directory + monitor access latency paid, but no lock waiting) —
    the host-side PCU may start fetching the target block speculatively at
    this point.  ``grant_time`` additionally includes waiting for the
    reader-writer lock; computation that mutates or reads the block
    atomically must not start before it.
    """

    entry: int
    decision_time: float
    grant_time: float
    on_host: bool


class Pmu:
    """Atomicity, coherence, and locality management for all PEIs."""

    def __init__(
        self,
        directory: PimDirectory,
        monitor: LocalityMonitor,
        hierarchy: CacheHierarchy,
        channel: OffChipChannel,
        crossbar: Crossbar,
        pmu_port: int,
        policy: DispatchPolicy,
        stats: Stats,
    ):
        self.directory = directory
        self.monitor = monitor
        self.hierarchy = hierarchy
        self.channel = channel
        self.crossbar = crossbar
        self.pmu_port = pmu_port
        self.policy = policy
        self.stats = stats
        # Telemetry sink (null object unless a Telemetry is attached).
        self.obs = NULL_OBS

    # ------------------------------------------------------------------
    # PEI admission (steps 2 of Figs. 4 and 5)
    # ------------------------------------------------------------------

    def begin_pei(self, core_port: int, block: int, op: PimOp, time: float) -> PmuGrant:
        """Admit a PEI: control message to the PMU, lock, location decision.

        Under the Ideal-Host configuration the PMU visit is free (Section 7:
        an infinitely large, zero-cycle PIM directory and no monitor), so the
        control-packet hop is skipped as well.
        """
        with self.obs.span("pmu.directory"):
            return self._begin_pei(core_port, block, op, time)

    def _begin_pei(self, core_port: int, block: int, op: PimOp, time: float) -> PmuGrant:
        if self.policy is DispatchPolicy.IDEAL_HOST:
            entry, grant = self.directory.acquire(block, op.is_writer, time)
            return PmuGrant(entry=entry, decision_time=time, grant_time=grant,
                            on_host=True)
        # The host-side PCU reaches the PMU over the on-chip network with a
        # small control packet (operation type + target block address).
        t = self.crossbar.traverse(core_port, time, 16)
        entry, grant = self.directory.acquire(block, op.is_writer, t)
        decision = t + self.directory.latency
        on_host = self._decide_location(block, op, decision)
        if self.policy.uses_monitor:
            decision += self.monitor.latency
        if grant < decision:
            grant = decision
        if on_host:
            self.stats.add("pei.host_dispatched")
        else:
            self.stats.add("pei.mem_dispatched")
            if self.policy.uses_monitor:
                self.monitor.note_pim_issue(block)
        return PmuGrant(entry=entry, decision_time=decision, grant_time=grant,
                        on_host=on_host)

    def _decide_location(self, block: int, op: PimOp, time: float) -> bool:
        policy = self.policy
        if policy is DispatchPolicy.PIM_ONLY:
            return False
        if policy in (DispatchPolicy.HOST_ONLY, DispatchPolicy.IDEAL_HOST):
            return True
        if self.monitor.advise_host(block):
            return True
        if policy.is_balanced:
            host = balanced_choice(op, self.channel, time,
                                   block_size=self.hierarchy.block_size,
                                   obs=self.obs)
            if host:
                self.stats.add("pei.balanced_host_overrides")
            return host
        return False

    # ------------------------------------------------------------------
    # Coherence management for memory-side execution (step 3 of Fig. 5)
    # ------------------------------------------------------------------

    def clean_block_for_memory(self, block: int, op: PimOp, time: float) -> float:
        """Back-invalidate (writer) / back-writeback (reader) the block.

        Returns the time main memory is guaranteed to hold the latest data.
        """
        ready, _ = self.hierarchy.flush_block(block, invalidate=op.is_writer, time=time)
        if self.obs.enabled:
            self.obs.observe("pmu.clean_latency", ready - time)
        return ready

    # ------------------------------------------------------------------
    # Completion and fencing
    # ------------------------------------------------------------------

    def finish_pei(self, entry: int, op: PimOp, completion: float) -> None:
        self.directory.release(entry, op.is_writer, completion)

    def fence(self, time: float) -> float:
        """pfence: block until all previously issued writer PEIs complete."""
        self.stats.add("pei.pfences")
        return self.directory.fence_time(time)
