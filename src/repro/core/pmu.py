"""The PEI Management Unit (Section 4.3).

One PMU sits next to the shared L3 and coordinates every PCU in the system.
For each PEI it (1) takes the reader/writer lock in the PIM directory,
(2) decides the execution location via the locality monitor and the active
dispatch policy, and (3) for memory-side execution, cleans the target block
out of the cache hierarchy (back-invalidation for writers, back-writeback
for readers).  It also implements pfence.
"""

from typing import NamedTuple

from repro.cache.hierarchy import CacheHierarchy
from repro.core.dispatch import DispatchPolicy, balanced_choice
from repro.core.isa import PimOp
from repro.core.locality_monitor import LocalityMonitor
from repro.core.pim_directory import PimDirectory
from repro.mem.link import OffChipChannel
from repro.obs.hooks import NULL_OBS
from repro.sim.stat_keys import (
    SLOT_PEI_BALANCED_HOST_OVERRIDES,
    SLOT_PEI_HOST_DISPATCHED,
    SLOT_PEI_MEM_DISPATCHED,
    SLOT_PEI_PFENCES,
)
from repro.sim.stats import Stats
from repro.xbar.crossbar import Crossbar


class PmuGrant(NamedTuple):
    """Outcome of a PEI's PMU visit.

    A NamedTuple, not a dataclass: one is built per PEI, and NamedTuple
    construction costs less than half of a frozen dataclass's.

    ``decision_time`` is when the PMU has decided the execution location
    (directory + monitor access latency paid, but no lock waiting) —
    the host-side PCU may start fetching the target block speculatively at
    this point.  ``grant_time`` additionally includes waiting for the
    reader-writer lock; computation that mutates or reads the block
    atomically must not start before it.
    """

    entry: int
    decision_time: float
    grant_time: float
    on_host: bool


class Pmu:
    """Atomicity, coherence, and locality management for all PEIs."""

    def __init__(
        self,
        directory: PimDirectory,
        monitor: LocalityMonitor,
        hierarchy: CacheHierarchy,
        channel: OffChipChannel,
        crossbar: Crossbar,
        pmu_port: int,
        policy: DispatchPolicy,
        stats: Stats,
    ):
        self.directory = directory
        self.monitor = monitor
        self.hierarchy = hierarchy
        self.channel = channel
        self.crossbar = crossbar
        # Crossbar geometry flattened for the inlined control-packet
        # traversal in _begin_pei (once per non-ideal PEI).
        self._xbar_ports = crossbar.ports
        self._n_xbar_ports = len(crossbar.ports)
        self._xbar_latency = crossbar.latency
        self.pmu_port = pmu_port
        self.policy = policy  # property: also derives the dispatch flags
        self.stats = stats
        self._slots = stats.slots  # batched counter fast path
        # Telemetry sink (null object unless a Telemetry is attached).
        self.obs = NULL_OBS

    @property
    def policy(self) -> DispatchPolicy:
        return self._policy

    @policy.setter
    def policy(self, policy: DispatchPolicy) -> None:
        # Enum member and enum-property reads cost hundreds of nanoseconds
        # each on CPython, and the admission path consults the policy
        # several times per PEI — so every policy-derived predicate is
        # precomputed here.  The differential verifier reassigns ``policy``
        # mid-replay, which is why this is a setter and not __init__ code.
        self._policy = policy
        self._ideal_host = policy is DispatchPolicy.IDEAL_HOST
        self._uses_monitor = policy.uses_monitor
        self._pim_only = policy is DispatchPolicy.PIM_ONLY
        self._always_host = policy in (DispatchPolicy.HOST_ONLY,
                                       DispatchPolicy.IDEAL_HOST)
        self._balanced = policy.is_balanced

    # ------------------------------------------------------------------
    # PEI admission (steps 2 of Figs. 4 and 5)
    # ------------------------------------------------------------------

    def begin_pei(self, core_port: int, block: int, op: PimOp, time: float) -> PmuGrant:
        """Admit a PEI: control message to the PMU, lock, location decision.

        Under the Ideal-Host configuration the PMU visit is free (Section 7:
        an infinitely large, zero-cycle PIM directory and no monitor), so the
        control-packet hop is skipped as well.
        """
        if not self.obs.enabled:
            # Hot path: skip the null-object context manager entirely.
            return self._begin_pei(core_port, block, op, time)
        with self.obs.span("pmu.directory"):
            return self._begin_pei(core_port, block, op, time)

    def _begin_pei(self, core_port: int, block: int, op: PimOp, time: float) -> PmuGrant:
        if self._ideal_host:
            entry, grant = self.directory.acquire(block, op.writes, time)
            return PmuGrant(entry=entry, decision_time=time, grant_time=grant,
                            on_host=True)
        # The host-side PCU reaches the PMU over the on-chip network with a
        # small control packet (operation type + target block address).
        # Crossbar.traverse inlined.
        link = self._xbar_ports[core_port % self._n_xbar_ports]
        occupancy = 16 / link.bytes_per_cycle
        if time > link.clock:
            gap = time - link.clock
            link.backlog = link.backlog - gap if link.backlog > gap else 0.0
            link.clock = time
        t = time + link.backlog + occupancy + self._xbar_latency
        link.backlog += occupancy
        link.busy_cycles += occupancy
        link.served += 1
        link.bytes_transferred += 16
        entry, grant = self.directory.acquire(block, op.writes, t)
        decision = t + self.directory.latency
        on_host = self._decide_location(block, op, decision)
        if self._uses_monitor:
            decision += self.monitor.latency
        if grant < decision:
            grant = decision
        if on_host:
            self._slots[SLOT_PEI_HOST_DISPATCHED] += 1.0
        else:
            self._slots[SLOT_PEI_MEM_DISPATCHED] += 1.0
            if self._uses_monitor:
                self.monitor.note_pim_issue(block)
        return PmuGrant(entry=entry, decision_time=decision, grant_time=grant,
                        on_host=on_host)

    def _decide_location(self, block: int, op: PimOp, time: float) -> bool:
        if self._pim_only:
            return False
        if self._always_host:
            return True
        if self.monitor.advise_host(block):
            return True
        if self._balanced:
            host = balanced_choice(op, self.channel, time,
                                   block_size=self.hierarchy.block_size,
                                   obs=self.obs)
            if host:
                self._slots[SLOT_PEI_BALANCED_HOST_OVERRIDES] += 1.0
            return host
        return False

    # ------------------------------------------------------------------
    # Coherence management for memory-side execution (step 3 of Fig. 5)
    # ------------------------------------------------------------------

    def clean_block_for_memory(self, block: int, op: PimOp, time: float) -> float:
        """Back-invalidate (writer) / back-writeback (reader) the block.

        Returns the time main memory is guaranteed to hold the latest data.
        """
        ready, _ = self.hierarchy.flush_block(block, invalidate=op.writes, time=time)
        if self.obs.enabled:
            self.obs.observe("pmu.clean_latency", ready - time)
        return ready

    # ------------------------------------------------------------------
    # Completion and fencing
    # ------------------------------------------------------------------

    def finish_pei(self, entry: int, op: PimOp, completion: float) -> None:
        self.directory.release(entry, op.writes, completion)

    def fence(self, time: float) -> float:
        """pfence: block until all previously issued writer PEIs complete."""
        self._slots[SLOT_PEI_PFENCES] += 1.0
        return self.directory.fence_time(time)
