"""End-to-end PEI execution: the sequences of Figures 4 and 5.

The executor owns the host-side PCUs (one per core) and reaches the
memory-side PCUs through their vaults.  For every PEI it composes:

* **host-side** (Fig. 4): operand-buffer allocation -> PMU (lock + locality
  advice) -> cache-block load through the core's own L1 path -> computation
  logic -> store back into the L1 (for writers) -> completion notification;
* **memory-side** (Fig. 5): operand-buffer allocation -> PMU -> back-
  invalidation/back-writeback -> operand shipping -> off-chip request packet
  -> vault DRAM read over TSVs -> memory-side PCU compute -> optional DRAM
  write -> off-chip response packet -> completion.

In the Ideal-Host configuration PEIs retire as if they were ordinary host
instructions: no operand buffers, a free infinite directory, and the core's
own MLP window provides the overlap.
"""

from typing import List, Optional, Tuple

from repro.cache.hierarchy import CacheHierarchy
from repro.core.isa import PimOp
from repro.core.pcu import Pcu
from repro.core.pmu import Pmu
from repro.core.tracer import FenceTrace, PeiTrace, PeiTracer
from repro.cpu.core import CoreModel
from repro.mem.hmc import HmcSystem
from repro.obs.hooks import NULL_OBS
from repro.sim.stat_keys import (
    SLOT_PEI_HOST_EXECUTED,
    SLOT_PEI_ISSUED,
    SLOT_PEI_MEM_EXECUTED,
    SLOT_PEI_OPERAND_BUFFER_STALL_CYCLES,
)
from repro.sim.stats import Stats


class PeiExecutor:
    """Executes PEIs on host-side or memory-side PCUs."""

    def __init__(
        self,
        host_pcus: List[Pcu],
        hmc: HmcSystem,
        pmu: Pmu,
        hierarchy: CacheHierarchy,
        stats: Stats,
        mmio_cost: float = 2.0,
    ):
        self.host_pcus = host_pcus
        self.hmc = hmc
        self.pmu = pmu
        self.hierarchy = hierarchy
        # Crossbar geometry flattened for the two inlined traversals in
        # _execute_memory_side (operand shipping and output return).
        self._xbar_ports = pmu.crossbar.ports
        self._n_xbar_ports = len(pmu.crossbar.ports)
        self._xbar_latency = pmu.crossbar.latency
        self.stats = stats
        self._slots = stats.slots  # batched counter fast path
        self.mmio_cost = mmio_cost
        # Optional tracer for per-PEI debugging and protocol sanitizing.
        self.tracer: Optional[PeiTracer] = None
        # Telemetry sink (null object unless a Telemetry is attached).
        self.obs = NULL_OBS

    # ------------------------------------------------------------------

    def execute(
        self, core: CoreModel, op: PimOp, vaddr: int, wait_output: bool, chain=None
    ) -> float:
        """Run one PEI issued by ``core``; returns the PEI's completion time.

        Advances ``core.time`` to the point where the core may continue:
        after the issue (fire-and-forget) or after reading the output
        operands (``wait_output``).  A ``chain`` id serializes this PEI
        behind the previous PEI of the same chain (its input depends on that
        output) without blocking the core, modelling unrolled dependent
        probe sequences overlapped by the out-of-order window.
        """
        if not self.obs.enabled:
            # Hot path: skip the null-object context manager entirely.
            return self._execute(core, op, vaddr, wait_output, chain)
        with self.obs.span("executor.pei"):
            return self._execute(core, op, vaddr, wait_output, chain)

    def _execute(
        self, core: CoreModel, op: PimOp, vaddr: int, wait_output: bool, chain=None
    ) -> float:
        # core.translate inlined (runs once per PEI).
        paddr, tlb_latency = core.tlb.translate(vaddr)
        return self._execute_pei(core, op, paddr, tlb_latency, wait_output, chain)

    def execute_pei(
        self, core: CoreModel, op: PimOp, paddr: int, tlb_latency: float,
        wait_output: bool, chain=None
    ) -> float:
        """Obs-wrapped entry point for a PEI whose translation is precomputed.

        The columnar replay engine resolves TLB outcomes at plan-compile
        time (per-thread address streams are deterministic); it hands the
        physical address and the page-walk latency in directly instead of
        consulting the core's TLB.
        """
        if not self.obs.enabled:
            return self._execute_pei(core, op, paddr, tlb_latency,
                                     wait_output, chain)
        with self.obs.span("executor.pei"):
            return self._execute_pei(core, op, paddr, tlb_latency,
                                     wait_output, chain)

    def _execute_pei(
        self, core: CoreModel, op: PimOp, paddr: int, tlb_latency: float,
        wait_output: bool, chain=None
    ) -> float:
        self._slots[SLOT_PEI_ISSUED] += 1.0
        core.time += tlb_latency
        block = paddr >> self.hierarchy.block_bits
        if chain is not None:
            ready = core.chain_completions.get(chain, 0.0)
            if ready > core.time:
                core.time = ready

        # Step 1: the host processor writes the input operands into the
        # PCU's memory-mapped registers and issues the PEI.  Ideal-Host
        # retires PEIs as ordinary instructions: the issue costs one issue
        # slot and the PMU visit below is free (Section 7's idealization),
        # making it Host-Only minus every PEI-management overhead.
        ideal = self.pmu._ideal_host
        core.time += (1.0 / core.issue_width) if ideal else self.mmio_cost
        core.instructions += 1
        pcu = self.host_pcus[core.core_id]
        issue_time = pcu.operand_buffer.allocate(core.time)
        if issue_time > core.time:
            # Operand buffer full: the host processor stalls (Section 4.2).
            self._slots[SLOT_PEI_OPERAND_BUFFER_STALL_CYCLES] += (
                issue_time - core.time)
            core.time = issue_time

        # Step 2: PMU — reader/writer lock and execution-location decision.
        # The begin_pei obs wrapper is bypassed when telemetry is off.
        pmu = self.pmu
        grant = (pmu._begin_pei(core.core_id, block, op, issue_time)
                 if not pmu.obs.enabled
                 else pmu.begin_pei(core.core_id, block, op, issue_time))
        # One tuple unpack instead of repeated NamedTuple attribute reads.
        entry, decision_time, grant_time, on_host = grant

        clean_time: Optional[float] = None
        if on_host:
            completion = self._execute_host_side(
                core, pcu, op, paddr, decision_time, grant_time
            )
            self._slots[SLOT_PEI_HOST_EXECUTED] += 1.0
            pcu.operand_buffer.release(completion)
        else:
            completion, clean_time = self._execute_memory_side(
                core, op, paddr, block, grant_time
            )
            self._slots[SLOT_PEI_MEM_EXECUTED] += 1.0
            if op.output_bytes > 0:
                # The entry's memory-mapped registers receive the output
                # operands (Fig. 5 step 8): held until completion.
                pcu.operand_buffer.release(completion)
            else:
                # An offloaded no-output PEI is tracked by its vault PCU's
                # operand buffer from hand-off onward (the 576-entry
                # in-flight budget of Section 6.1 counts host and vault
                # entries together); the host entry frees at dispatch.
                pcu.operand_buffer.release(grant_time)

        pmu.directory.release(entry, op.writes, completion)

        obs = self.obs
        if obs.enabled:
            side = "host" if on_host else "mem"
            obs.observe("pei.latency", completion - issue_time)
            obs.observe(f"pei.latency.{side}", completion - issue_time)
            obs.observe("pei.lock_wait", grant_time - issue_time)
            obs.observe("pei.decision_to_completion",
                        completion - decision_time)
            obs.observe("queue.host_operand_buffer",
                        pcu.operand_buffer.in_flight)
        if self.tracer is not None:
            self.tracer.record(PeiTrace(
                core=core.core_id, op=op.mnemonic, block=block,
                on_host=on_host, issue_time=issue_time,
                grant_time=grant_time, completion=completion,
                decision_time=decision_time, clean_time=clean_time,
                clean_invalidate=None if clean_time is None else op.is_writer,
            ))
        if chain is not None:
            core.chain_completions[chain] = completion
        if wait_output:
            # Step 7/8: the host reads the output operands through the
            # memory-mapped registers once the PEI completes.
            if completion > core.time:
                core.time = completion
            if not ideal:
                core.time += self.mmio_cost
        return completion

    # ------------------------------------------------------------------
    # Fig. 4: host-side PEI execution
    # ------------------------------------------------------------------

    def _execute_host_side(
        self,
        core: CoreModel,
        pcu: Pcu,
        op: PimOp,
        paddr: int,
        fetch_time: float,
        grant_time: float,
    ) -> float:
        # Steps 3-5: the PCU loads the target block through the core's own
        # L1 (it shares the cache port, the MSHRs, and the hierarchy), runs
        # the computation logic, and stores back if the PEI is a writer.
        # The line fetch starts as soon as the PMU has decided on host-side
        # execution and overlaps any reader-writer-lock wait; only the
        # atomic read-modify-write itself is serialized under the lock.
        # Sharing the L1 means the access also occupies one of the core's
        # MSHR-bounded outstanding-miss slots.
        core.window_acquire()
        if core.time > fetch_time:
            fetch_time = core.time
        result = self.hierarchy.access(core.core_id, paddr, op.writes, fetch_time)
        start = result.finish if result.finish > grant_time else grant_time
        # pcu.compute inlined (once per host-side PEI).
        occupancy = op.compute_cycles * pcu._compute_scale
        completion = pcu.compute_logic.acquire(start, occupancy) + occupancy
        pcu.executed += 1
        core.window_release(completion)
        return completion

    # ------------------------------------------------------------------
    # Fig. 5: memory-side PEI execution
    # ------------------------------------------------------------------

    def _execute_memory_side(
        self, core: CoreModel, op: PimOp, paddr: int, block: int, time: float
    ) -> Tuple[float, float]:
        """Returns ``(completion, clean_time)`` — the latter is when main
        memory is guaranteed to hold the latest data (Fig. 5 step 3)."""
        # Step 3: clean any on-chip copy (back-invalidation / back-writeback)
        ready = self.pmu.clean_block_for_memory(block, op, time)
        # Step 4: input operands travel from the host-side PCU to the PMU
        # over the on-chip network (overlapped with step 3 — take the max).
        # Crossbar.traverse inlined.
        nbytes = 16 + op.input_bytes
        link = self._xbar_ports[core.core_id % self._n_xbar_ports]
        occupancy = nbytes / link.bytes_per_cycle
        if time > link.clock:
            gap = time - link.clock
            link.backlog = link.backlog - gap if link.backlog > gap else 0.0
            link.clock = time
        operands_ready = (time + link.backlog + occupancy
                          + self._xbar_latency)
        link.backlog += occupancy
        link.busy_cycles += occupancy
        link.served += 1
        link.bytes_transferred += nbytes
        t = ready if ready > operands_ready else operands_ready
        # Step 5: the PMU packetizes the PIM operation and ships it.
        t = self.hmc.pim_send_request(t, op.input_bytes, paddr)
        # In the vault: claim a memory-side operand-buffer entry, fetch the
        # block over the TSVs, compute, and write back if needed.
        vault = self.hmc.vault_for(paddr)
        vpcu = vault.pcu
        if self.obs.enabled:
            self.obs.observe("queue.vault_operand_buffer",
                             vpcu.operand_buffer.in_flight)
        t = vpcu.operand_buffer.allocate(t)
        t = self.hmc.pim_read_block(t, paddr)
        # vpcu.compute inlined (once per memory-side PEI).
        occupancy = op.compute_cycles * vpcu._compute_scale
        t = vpcu.compute_logic.acquire(t, occupancy) + occupancy
        vpcu.executed += 1
        if op.writes:
            # The write back into DRAM is posted: the vault's controller
            # schedules a PEI's accesses as an inseparable group (Section
            # 4.3), so later accesses to the block observe the write without
            # the response having to wait for it.
            write_done = self.hmc.pim_write_block(t, paddr)
            vpcu.operand_buffer.release(write_done)
        else:
            vpcu.operand_buffer.release(t)
        # Step 6/7: response packet back to the PMU, outputs to the PCU.
        t = self.hmc.pim_send_response(t, op.output_bytes, paddr)
        # Crossbar.traverse inlined (PMU port back to the core).
        nbytes = 16 + op.output_bytes
        link = self._xbar_ports[self.pmu.pmu_port % self._n_xbar_ports]
        occupancy = nbytes / link.bytes_per_cycle
        if t > link.clock:
            gap = t - link.clock
            link.backlog = link.backlog - gap if link.backlog > gap else 0.0
            link.clock = t
        completion = t + link.backlog + occupancy + self._xbar_latency
        link.backlog += occupancy
        link.busy_cycles += occupancy
        link.served += 1
        link.bytes_transferred += nbytes
        return completion, ready

    # ------------------------------------------------------------------

    def fence(self, core: CoreModel) -> None:
        """pfence semantics: drain the core and wait for in-flight PEIs."""
        core.drain()
        issue_time = core.time
        t = self.pmu.fence(core.time)
        if t > core.time:
            core.time = t
        core.instructions += 1
        if self.tracer is not None:
            self.tracer.record_fence(FenceTrace(
                core=core.core_id, issue_time=issue_time, release_time=t,
            ))
