"""A set-associative tag array with pluggable replacement.

Stores block numbers (addresses already divided by the block size) and a
dirty bit per block.  Used for the L1/L2/L3 tag arrays; the locality monitor
has its own structure because it stores partial tags and ignore flags.

Replacement policies: ``"lru"`` (true LRU, the default and what Table 2's
caches and the locality monitor use), ``"fifo"`` (insertion order, no hit
promotion), and ``"random"`` (deterministic pseudo-random victims).
"""

from collections import OrderedDict
from itertools import islice
from typing import List, Optional, Tuple

from repro.util.bitops import is_power_of_two

REPLACEMENT_POLICIES = ("lru", "fifo", "random")


class SetAssocArray:
    """Tags-only set-associative cache model."""

    __slots__ = ("n_sets", "n_ways", "sets", "hits", "misses", "evictions",
                 "policy", "_victim_seed", "_set_mask")

    def __init__(self, n_sets: int, n_ways: int, policy: str = "lru"):
        if not is_power_of_two(n_sets):
            raise ValueError(f"set count must be a power of two, got {n_sets}")
        if n_ways <= 0:
            raise ValueError(f"way count must be positive, got {n_ways}")
        if policy not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"unknown replacement policy '{policy}'; "
                f"choose from {REPLACEMENT_POLICIES}")
        self.n_sets = n_sets
        self.n_ways = n_ways
        self._set_mask = n_sets - 1
        self.policy = policy
        self.sets: List[OrderedDict] = [OrderedDict() for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # xorshift state for deterministic "random" victim selection.
        self._victim_seed = 0x9E3779B9

    @classmethod
    def from_geometry(cls, size_bytes: int, n_ways: int, block_size: int = 64) -> "SetAssocArray":
        n_sets = size_bytes // (n_ways * block_size)
        return cls(n_sets, n_ways)

    def _set_of(self, block: int) -> OrderedDict:
        return self.sets[block & self._set_mask]

    def lookup(self, block: int, promote: bool = True) -> bool:
        """Return True on hit; promotes the block to MRU unless disabled
        (promotion only affects the LRU policy)."""
        # The set probe is inlined in every hot method: _set_of as a call
        # showed up with six-digit call counts in engine profiles.
        line_set = self.sets[block & self._set_mask]
        if block in line_set:
            self.hits += 1
            if promote and self.policy == "lru":
                line_set.move_to_end(block)
            return True
        self.misses += 1
        return False

    def _next_victim_index(self, n_valid: int) -> int:
        """Deterministic xorshift index for the 'random' policy."""
        x = self._victim_seed
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._victim_seed = x
        return x % n_valid

    def contains(self, block: int) -> bool:
        """Presence probe with no LRU or statistics side effects."""
        return block in self._set_of(block)

    def insert(self, block: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert ``block``; return the evicted (block, dirty) if any."""
        line_set = self.sets[block & self._set_mask]
        prior = line_set.get(block)
        if prior is not None:
            if dirty and not prior:
                line_set[block] = dirty
            if self.policy == "lru":
                line_set.move_to_end(block)
            return None
        # Install path, shared verbatim with lookup_insert below.  Kept
        # inline rather than factored into a helper: insertion runs on
        # every fill at every level, and the helper call showed up with
        # five-digit counts in engine profiles.
        victim = None
        if len(line_set) >= self.n_ways:
            if self.policy == "random":
                index = self._next_victim_index(len(line_set))
                victim_block = next(islice(line_set, index, None))
                victim = (victim_block, line_set.pop(victim_block))
            else:  # lru and fifo both evict the oldest entry
                victim = line_set.popitem(last=False)
            self.evictions += 1
        line_set[block] = dirty
        return victim

    def lookup_insert(self, block: int, dirty: bool = False
                      ) -> Tuple[bool, Optional[Tuple[int, bool]]]:
        """Combined lookup-or-install with a single set resolution.

        On hit: counts the hit, promotes (LRU), folds in ``dirty``, and
        returns ``(True, None)``.  On miss: counts the miss, installs the
        block (evicting if the set is full) and returns ``(False, victim)``.
        Equivalent to ``lookup(block)`` followed by ``insert(block, dirty)``
        but with one ``_set_of`` resolution and no double membership probe.
        """
        line_set = self.sets[block & self._set_mask]
        prior = line_set.get(block)
        if prior is not None:
            self.hits += 1
            if dirty and not prior:
                line_set[block] = dirty
            if self.policy == "lru":
                line_set.move_to_end(block)
            return True, None
        self.misses += 1
        victim = None
        if len(line_set) >= self.n_ways:
            if self.policy == "random":
                index = self._next_victim_index(len(line_set))
                victim_block = next(islice(line_set, index, None))
                victim = (victim_block, line_set.pop(victim_block))
            else:
                victim = line_set.popitem(last=False)
            self.evictions += 1
        line_set[block] = dirty
        return False, victim

    def remove(self, block: int) -> Optional[bool]:
        """Remove ``block``; return its dirty bit, or None if absent."""
        return self._set_of(block).pop(block, None)

    def mark_dirty(self, block: int) -> None:
        line_set = self._set_of(block)
        if block in line_set:
            line_set[block] = True

    def mark_clean(self, block: int) -> None:
        line_set = self._set_of(block)
        if block in line_set:
            line_set[block] = False

    def is_dirty(self, block: int) -> bool:
        return self._set_of(block).get(block, False)

    def occupancy(self) -> int:
        """Total number of valid blocks currently cached."""
        return sum(len(s) for s in self.sets)

    def clear(self) -> None:
        for line_set in self.sets:
            line_set.clear()
