"""Inclusive three-level cache hierarchy with MESI-lite coherence.

The hierarchy is functional on tags: it tracks presence, dirtiness, sharers
and the modified owner of every block, produces latencies by composing
crossbar / L3-bank / memory occupancies, and supports the two operations the
PMU needs for memory-side PEI coherence — back-invalidation and
back-writeback of a single block (Section 4.3).
"""

from repro.cache.array import SetAssocArray
from repro.cache.hierarchy import AccessResult, CacheHierarchy

__all__ = ["AccessResult", "CacheHierarchy", "SetAssocArray"]
